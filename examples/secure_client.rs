//! Byzantine node tolerance: what does it cost to stop trusting a single
//! node?
//!
//! Blockchain SDKs connect applications to one node and trust it — one
//! Byzantine node can then lie to every client it serves. The paper's
//! remedy (§7) is a *secure client* that submits each transaction to
//! `t + 1` nodes and accepts a result only when all of them report it.
//! This example measures what that redundancy does to latency on every
//! chain: deduplication makes it nearly free on Algorand and Solana,
//! Aptos pays for redundant speculative execution, and Avalanche (and
//! marginally Redbelly) actually get *faster*.
//!
//! ```sh
//! cargo run --release --example secure_client
//! ```

use stabl_suite::stabl::{Chain, PaperSetup, ScenarioKind};

fn main() {
    let setup = PaperSetup::quick(120, 11);
    println!("Secure client: every transaction to 4 nodes, commit = all 4 observed it\n");
    println!(
        "{:<10} {:>16} {:>16} {:>18}",
        "chain", "1-node mean (s)", "4-node mean (s)", "sensitivity"
    );
    for chain in Chain::ALL {
        let baseline = setup.run_baseline(chain, ScenarioKind::SecureClient);
        let secure = setup.run(chain, ScenarioKind::SecureClient);
        let report = stabl_suite::stabl::report_from_runs(
            chain,
            ScenarioKind::SecureClient,
            &baseline,
            &secure,
        );
        println!(
            "{:<10} {:>16} {:>16} {:>18}",
            chain.name(),
            report
                .baseline
                .mean_latency
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "—".into()),
            report
                .altered
                .mean_latency
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "—".into()),
            report.sensitivity.to_string(),
        );
    }
    println!(
        "\n\"(improved)\" marks chains where redundancy sped commits up: on\n\
         Avalanche the duplicate copies bypass its randomised, nonce-blind\n\
         transaction gossip and land in every proposer's pool immediately."
    );
}
