//! Quickstart: measure the sensitivity of one blockchain to crashes.
//!
//! Runs a scaled-down (90 s) version of the paper's resilience
//! experiment on Redbelly: a baseline run and a run where `f = t` nodes
//! crash a third of the way in, then prints the sensitivity score.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stabl_suite::stabl::{Chain, PaperSetup, ScenarioKind};

fn main() {
    let setup = PaperSetup::quick(90, 42);
    println!(
        "10 validators, 200 TPS, {}s run, {} crashes at {}s\n",
        setup.horizon.as_secs_f64(),
        Chain::Redbelly.tolerated_faults(setup.n),
        setup.fault_at.as_secs_f64(),
    );

    let report = setup.sensitivity(Chain::Redbelly, ScenarioKind::Crash);
    println!("{report}\n");

    match report.sensitivity.score() {
        Some(score) => println!(
            "Redbelly's leaderless DBFT barely notices f = t crashes: \
             the latency distribution moved by only {score:.3} s."
        ),
        None => println!("liveness was lost — unexpected for Redbelly under f = t crashes"),
    }
}
