//! Plugging your own blockchain into Stabl.
//!
//! The paper closes by inviting the community to measure the sensitivity
//! of other blockchains. This example shows the full path: implement the
//! kernel's `Protocol` trait for a toy chain (a primary-backup "chain"
//! with no fault tolerance at all), then drive it through the same
//! harness, fault plans and sensitivity metric as the five studied
//! systems — and watch it fail the crash test the BFT chains pass.
//!
//! ```sh
//! cargo run --release --example custom_protocol
//! ```

use stabl_suite::stabl::metrics::Sensitivity;
use stabl_suite::stabl::{run_protocol, FaultSchedule, RunConfig};
use stabl_suite::stabl_sim::{Ctx, NodeId, Protocol, SimTime};
use stabl_suite::stabl_types::{Ledger, Transaction, TxId};

/// A primary-backup toy chain: node 0 orders everything and replicas
/// apply blindly. Fast — and exactly as fragile as it sounds.
struct PrimaryBackup {
    id: NodeId,
    ledger: Ledger,
}

#[derive(Clone, Debug)]
enum Msg {
    /// Primary → replicas: apply this transaction.
    Apply(Transaction),
    /// Anyone → primary: please order this transaction.
    Order(Transaction),
}

impl Protocol for PrimaryBackup {
    type Msg = Msg;
    type Request = Transaction;
    type Commit = TxId;
    type Timer = ();
    type Config = ();

    fn new(id: NodeId, _n: usize, _config: &(), _ctx: &mut Ctx<'_, Self>) -> Self {
        PrimaryBackup {
            id,
            ledger: Ledger::with_uniform_balance(256, u64::MAX / 512),
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Self>) {
        match msg {
            Msg::Order(tx) => {
                // Only meaningful at the primary: order and disseminate.
                if self.id == NodeId::new(0) {
                    ctx.broadcast(Msg::Apply(tx));
                    if let Ok(id) = self.ledger.apply(&tx) {
                        ctx.commit(id);
                    }
                }
            }
            Msg::Apply(tx) => {
                if let Ok(id) = self.ledger.apply(&tx) {
                    ctx.commit(id);
                }
            }
        }
    }

    fn on_timer(&mut self, _: (), _: &mut Ctx<'_, Self>) {}

    fn on_request(&mut self, tx: Transaction, ctx: &mut Ctx<'_, Self>) {
        if self.id == NodeId::new(0) {
            ctx.broadcast(Msg::Apply(tx));
            if let Ok(id) = self.ledger.apply(&tx) {
                ctx.commit(id);
            }
        } else {
            ctx.send(NodeId::new(0), Msg::Order(tx));
        }
    }

    fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
}

fn main() {
    // Baseline: impressive numbers, as one-node ordering always has.
    let config = RunConfig::quick(13);
    let baseline = run_protocol::<PrimaryBackup>(&config, ());
    let baseline_ecdf = baseline.ecdf().expect("baseline commits");
    println!(
        "primary-backup baseline: {} txs, mean latency {:.1} ms — looks great!",
        baseline.latencies.len(),
        baseline_ecdf.mean() * 1000.0
    );

    // Now the same test every chain in the paper takes: crash one node.
    // We crash the primary, of course.
    let mut altered_config = RunConfig::quick(13);
    altered_config.faults = FaultSchedule::crash(vec![NodeId::new(0)], SimTime::from_secs(10));
    let altered = run_protocol::<PrimaryBackup>(&altered_config, ());
    let sensitivity = match altered.ecdf() {
        Ok(ecdf) if !altered.lost_liveness => Sensitivity::from_ecdfs(&baseline_ecdf, &ecdf),
        _ => Sensitivity::Infinite,
    };
    println!(
        "crash of 1 node (the primary): sensitivity = {sensitivity}, {} of {} txs lost",
        altered.unresolved, altered.submitted
    );
    println!(
        "\nOne crashed node, infinite sensitivity: the metric separates actual\n\
         fault tolerance from fair-weather performance. Implement `Protocol`\n\
         for your chain and put it through the same scenarios."
    );
    assert!(
        sensitivity.is_infinite(),
        "a primary-backup chain cannot pass the crash test"
    );
}
