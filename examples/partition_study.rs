//! Partition study: compare how the chains that survive a network
//! partition recover from it — and how much slower that is than
//! recovering from process restarts (the paper's §6).
//!
//! Recovery from a *transient node failure* is active: a restarted node
//! dials its peers immediately. Recovery from a *partition* is passive:
//! nobody knows connectivity is back until the next reconnection
//! attempt, whose schedule (idle timeouts, dial backoff) differs per
//! chain — Aptos probes every 5 s, Algorand and Redbelly wait much
//! longer.
//!
//! ```sh
//! cargo run --release --example partition_study
//! ```

use stabl_suite::stabl::{Chain, PaperSetup, ScenarioKind};

fn recovery_seconds(setup: &PaperSetup, chain: Chain, kind: ScenarioKind) -> Option<usize> {
    let result = setup.run(chain, kind);
    if result.lost_liveness {
        return None;
    }
    let recover_s = (setup.recover_at.as_micros() / 1_000_000) as usize;
    result
        .throughput()
        .first_at_least(recover_s, 100)
        .map(|s| s - recover_s)
}

fn main() {
    let setup = PaperSetup::quick(180, 9);
    println!(
        "Partition vs transient recovery, f = t+1 nodes, outage {}s → {}s\n",
        setup.fault_at.as_secs_f64(),
        setup.recover_at.as_secs_f64(),
    );
    println!(
        "{:<10} {:>22} {:>22}",
        "chain", "transient recovery", "partition recovery"
    );
    for chain in [
        Chain::Algorand,
        Chain::Aptos,
        Chain::Redbelly,
        Chain::Avalanche,
        Chain::Solana,
    ] {
        let fmt = |r: Option<usize>| match r {
            Some(s) => format!("{s} s after heal"),
            None => "never (liveness lost)".to_owned(),
        };
        println!(
            "{:<10} {:>22} {:>22}",
            chain.name(),
            fmt(recovery_seconds(&setup, chain, ScenarioKind::Transient)),
            fmt(recovery_seconds(&setup, chain, ScenarioKind::Partition)),
        );
    }
    println!(
        "\nActive reconnection (restarted nodes dial immediately) beats passive\n\
         detection (idle timeouts + dial backoff) — except on Aptos, whose 5 s\n\
         connectivity probes make both paths equally fast, and on Avalanche and\n\
         Solana, which do not come back at all."
    );
}
