//! Outage drill: how does a chain behave when more nodes fail than it
//! tolerates, and how fast does it recover once they return?
//!
//! This is the paper's recoverability experiment (§5) as an operator
//! would run it before adopting a chain: halt `f = t + 1` validators
//! mid-run, restart them later, and watch the throughput timeline — the
//! downtime window, the catch-up burst, and whether the backlog ever
//! clears.
//!
//! ```sh
//! cargo run --release --example outage_drill [algorand|aptos|avalanche|redbelly|solana]
//! ```

use stabl_suite::stabl::{Chain, PaperSetup, ScenarioKind};

fn main() {
    let chain = match std::env::args().nth(1).as_deref() {
        None | Some("redbelly") => Chain::Redbelly,
        Some("algorand") => Chain::Algorand,
        Some("aptos") => Chain::Aptos,
        Some("avalanche") => Chain::Avalanche,
        Some("solana") => Chain::Solana,
        Some(other) => {
            eprintln!("unknown chain {other}");
            std::process::exit(2);
        }
    };
    // 180 s keeps the outage overlapping Solana's Epoch-Accounts-Hash
    // windows like the paper's 400 s timeline does (the EAH panic needs
    // rooting to stall across an epoch's start; a 150 s drill would let
    // Solana slip through between two warmup epochs).
    let setup = PaperSetup::quick(180, 7);
    let f = chain.tolerated_faults(setup.n) + 1;
    println!(
        "Outage drill on {chain}: halting {f} of {} validators at {}s, restarting at {}s\n",
        setup.n,
        setup.fault_at.as_secs_f64(),
        setup.recover_at.as_secs_f64(),
    );

    let result = setup.run(chain, ScenarioKind::Transient);
    let series = result.throughput();
    let fault_s = (setup.fault_at.as_micros() / 1_000_000) as usize;
    let recover_s = (setup.recover_at.as_micros() / 1_000_000) as usize;
    let end_s = series.bins().len();

    println!("throughput timeline (10 s buckets, * = 100 TPS):");
    for (i, chunk) in series.bins().chunks(10).enumerate() {
        let sum: u32 = chunk.iter().sum();
        let bars = (sum / 1000) as usize;
        println!("{:>4}s {:>6} tx {}", i * 10, sum, "*".repeat(bars));
    }

    println!();
    if result.lost_liveness {
        println!(
            "VERDICT: {chain} never recovered — {} of {} transactions lost, {} node panics.",
            result.unresolved,
            result.submitted,
            result.panics.len()
        );
        if !result.panics.is_empty() {
            println!("first panic: {}", result.panics[0].reason);
        }
    } else {
        let recovery = series.first_at_least(recover_s, 100).map(|s| s - recover_s);
        println!(
            "VERDICT: recovered{}; catch-up peak {} TPS; {} of {} transactions committed.",
            recovery
                .map(|r| format!(" {r} s after the restart"))
                .unwrap_or_default(),
            series.peak_over(recover_s, end_s),
            result.submitted - result.unresolved,
            result.submitted,
        );
        let during = series.zero_seconds(fault_s + 2, recover_s);
        println!("(throughput was zero for {during} s of the outage window)");
    }
}
