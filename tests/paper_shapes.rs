//! Integration tests asserting the qualitative results of the paper —
//! the shape table of DESIGN.md §3 — at a reduced (180 s) scale.
//!
//! These run every chain through the four adversarial scenarios and
//! check who wins, who loses liveness and in what order, not absolute
//! numbers.

use stabl_suite::stabl::{Chain, PaperSetup, ScenarioKind};

fn setup() -> PaperSetup {
    // 180 s keeps Solana's EAH windows overlapping the outage like the
    // paper's 400 s timeline does.
    PaperSetup::quick(180, 0xD15C_0ACE)
}

fn score(chain: Chain, kind: ScenarioKind) -> Option<f64> {
    setup().sensitivity(chain, kind).sensitivity.score()
}

#[test]
fn every_chain_commits_the_baseline_load() {
    for chain in Chain::ALL {
        let result = setup().run(chain, ScenarioKind::Baseline);
        assert_eq!(
            result.unresolved, 0,
            "{chain} dropped transactions at 200 TPS"
        );
        assert!(result.panics.is_empty(), "{chain} panicked in the baseline");
    }
}

#[test]
fn redbelly_is_the_least_crash_sensitive() {
    let redbelly =
        score(Chain::Redbelly, ScenarioKind::Crash).expect("Redbelly crash run must stay live");
    for chain in [Chain::Algorand, Chain::Aptos, Chain::Solana] {
        let other = score(chain, ScenarioKind::Crash).unwrap_or(f64::INFINITY);
        assert!(
            redbelly < other,
            "{chain} crash score {other} should exceed Redbelly's {redbelly}"
        );
    }
    assert!(
        redbelly < 0.5,
        "Redbelly should barely notice f = t crashes: {redbelly}"
    );
}

#[test]
fn crashes_do_not_kill_any_chain() {
    for chain in Chain::ALL {
        let result = setup().run(chain, ScenarioKind::Crash);
        assert!(
            !result.lost_liveness,
            "{chain} lost liveness under f = t crashes"
        );
    }
}

#[test]
fn solana_transient_failure_panics_the_whole_cluster() {
    let result = setup().run(Chain::Solana, ScenarioKind::Transient);
    assert!(result.lost_liveness, "Solana must lose liveness");
    let panicked: std::collections::HashSet<u32> =
        result.panics.iter().map(|p| p.node.as_u32()).collect();
    assert_eq!(panicked.len(), 10, "the EAH bug must abort every validator");
    assert!(
        result
            .panics
            .iter()
            .all(|p| p.reason.contains("wait_get_epoch_accounts_hash")),
        "panics must come from the EAH precondition"
    );
}

#[test]
fn avalanche_cannot_recover_from_transient_failures() {
    let result = setup().run(Chain::Avalanche, ScenarioKind::Transient);
    assert!(result.lost_liveness, "throttling congestion must persist");
    assert!(
        result.panics.is_empty(),
        "Avalanche degrades without panicking"
    );
}

#[test]
fn algorand_and_redbelly_recover_quickly_from_transient_failures() {
    let setup = setup();
    let recover_s = (setup.recover_at.as_micros() / 1_000_000) as usize;
    for chain in [Chain::Algorand, Chain::Redbelly] {
        let result = setup.run(chain, ScenarioKind::Transient);
        assert!(!result.lost_liveness, "{chain} must recover");
        assert_eq!(result.unresolved, 0, "{chain} must clear the whole backlog");
        let series = result.throughput();
        let recovery = series
            .first_at_least(recover_s, 100)
            .unwrap_or(usize::MAX)
            .saturating_sub(recover_s);
        assert!(
            recovery <= 15,
            "{chain} recovery took {recovery}s, expected ≈7–9 s"
        );
        // Catch-up burst: the backlog commits in a visible peak.
        let end = series.bins().len();
        assert!(
            series.peak_over(recover_s, end) > 400,
            "{chain} should show a catch-up peak"
        );
    }
}

#[test]
fn aptos_is_the_most_impacted_recovering_chain() {
    let aptos = score(Chain::Aptos, ScenarioKind::Transient).expect("Aptos recovers");
    let algorand = score(Chain::Algorand, ScenarioKind::Transient).expect("Algorand recovers");
    let redbelly = score(Chain::Redbelly, ScenarioKind::Transient).expect("Redbelly recovers");
    assert!(
        aptos > algorand && aptos > redbelly,
        "Aptos ({aptos}) must exceed Algorand ({algorand}) and Redbelly ({redbelly})"
    );
    assert!(
        redbelly < algorand * 1.5,
        "Redbelly recovers at least as well as Algorand"
    );
}

#[test]
fn partitions_kill_the_same_chains_as_transient_failures() {
    for chain in [Chain::Avalanche, Chain::Solana] {
        let result = setup().run(chain, ScenarioKind::Partition);
        assert!(
            result.lost_liveness,
            "{chain} must not survive the partition"
        );
    }
}

#[test]
fn partition_recovery_is_slower_than_transient_recovery() {
    // Algorand and Redbelly reconnect passively after a partition
    // (idle timeouts + dial backoff) — visibly slower than the active
    // redial after a restart.
    for chain in [Chain::Algorand, Chain::Redbelly] {
        let transient = score(chain, ScenarioKind::Transient).expect("recovers");
        let partition = score(chain, ScenarioKind::Partition).expect("recovers");
        assert!(
            partition > transient * 1.3,
            "{chain}: partition {partition} should clearly exceed transient {transient}"
        );
    }
}

#[test]
fn aptos_partition_score_matches_its_transient_score() {
    let transient = score(Chain::Aptos, ScenarioKind::Transient).expect("recovers");
    let partition = score(Chain::Aptos, ScenarioKind::Partition).expect("recovers");
    let ratio = partition / transient;
    assert!(
        (0.7..1.4).contains(&ratio),
        "Aptos probes connectivity every 5 s: partition ({partition}) should track \
         transient ({transient})"
    );
}

#[test]
fn secure_client_shapes() {
    let setup = setup();
    // Algorand and Solana: essentially unchanged.
    for chain in [Chain::Algorand, Chain::Solana] {
        let report = setup.sensitivity(chain, ScenarioKind::SecureClient);
        let score = report.sensitivity.score().expect("live");
        assert!(
            score < 0.1,
            "{chain} should be insensitive to redundancy: {score}"
        );
    }
    // Aptos: degraded by redundant speculative execution.
    let aptos = setup.sensitivity(Chain::Aptos, ScenarioKind::SecureClient);
    match aptos.sensitivity {
        stabl_suite::stabl::metrics::Sensitivity::Finite { score, improved } => {
            assert!(!improved, "Aptos must be degraded by the secure client");
            assert!(score > 0.03, "Aptos degradation should be visible: {score}");
        }
        other => panic!("Aptos secure client must stay live: {other:?}"),
    }
    // Avalanche: improved, and by the largest magnitude of all chains.
    let avalanche = setup.sensitivity(Chain::Avalanche, ScenarioKind::SecureClient);
    match avalanche.sensitivity {
        stabl_suite::stabl::metrics::Sensitivity::Finite { score, improved } => {
            assert!(improved, "redundancy must bypass Avalanche's gossip delays");
            assert!(
                score > aptos.sensitivity.score().unwrap_or(0.0),
                "Avalanche must show the largest secure-client sensitivity"
            );
        }
        other => panic!("Avalanche secure client must stay live: {other:?}"),
    }
}

#[test]
fn campaign_is_deterministic() {
    let a = setup().sensitivity(Chain::Redbelly, ScenarioKind::Crash);
    let b = setup().sensitivity(Chain::Redbelly, ScenarioKind::Crash);
    assert_eq!(a.sensitivity, b.sensitivity);
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.altered, b.altered);
}

mod ablations {
    //! Causal checks: remove the blamed mechanism, the failure vanishes.
    use super::*;
    use stabl_suite::stabl::run_protocol;
    use stabl_suite::stabl_avalanche::{AvalancheConfig, AvalancheNode};
    use stabl_suite::stabl_solana::{EpochSchedule, SolanaConfig, SolanaNode};

    #[test]
    fn solana_without_warmup_epochs_survives_the_transient_outage() {
        let setup = setup();
        let config = SolanaConfig {
            schedule: EpochSchedule::constant(8192),
            ..SolanaConfig::default()
        };
        let cfg = setup.run_config(Chain::Solana, ScenarioKind::Transient);
        let result = run_protocol::<SolanaNode>(&cfg, config);
        assert!(result.panics.is_empty(), "no warmup epochs, no EAH panic");
        assert!(!result.lost_liveness, "the cluster keeps committing");
    }

    #[test]
    fn avalanche_without_throttling_recovers_from_the_transient_outage() {
        let setup = setup();
        let config = AvalancheConfig {
            cpu_quota: f64::INFINITY,
            ..AvalancheConfig::default()
        };
        let cfg = setup.run_config(Chain::Avalanche, ScenarioKind::Transient);
        let result = run_protocol::<AvalancheNode>(&cfg, config);
        assert!(
            !result.lost_liveness,
            "without the throttler the congestion is not metastable"
        );
    }
}
