//! Cross-crate integration tests of the public API: harness accounting,
//! fault plans, client modes and metric plumbing working together.

use stabl_suite::stabl::metrics::{Ecdf, Sensitivity};
use stabl_suite::stabl::{Chain, ClientMode, FaultSchedule, PaperSetup, RunConfig, ScenarioKind};
use stabl_suite::stabl_sim::{NodeId, SimDuration, SimTime};

#[test]
fn quick_config_commits_on_every_chain() {
    for chain in Chain::ALL {
        let result = chain.run(&RunConfig::quick(21));
        assert_eq!(
            result.submitted,
            result.latencies.len() + result.unresolved,
            "{chain}: accounting must balance"
        );
        assert!(result.commit_ratio() > 0.95, "{chain} commit ratio");
        let series = result.throughput();
        let total: u64 = series.bins().iter().map(|b| *b as u64).sum();
        assert_eq!(
            total as usize,
            result.latencies.len(),
            "{chain}: series vs commits"
        );
    }
}

#[test]
fn latency_profiles_are_chain_specific_but_sane() {
    // Every chain has its own latency profile; all commit the quick
    // workload within single-digit seconds at the median.
    for chain in Chain::ALL {
        let result = chain.run(&RunConfig::quick(22));
        let ecdf = result.ecdf().expect("commits");
        assert!(
            ecdf.min() > 0.0,
            "{chain}: latency includes the client link"
        );
        assert!(
            ecdf.quantile(0.5) < 8.0,
            "{chain}: median latency {:.2}s out of range",
            ecdf.quantile(0.5)
        );
        assert!(ecdf.quantile(0.5) <= ecdf.quantile(0.95));
    }
}

#[test]
fn secure_client_waits_for_the_slowest_replica() {
    let mut config = RunConfig::quick(23);
    config.client_mode = ClientMode::paper_secure();
    for chain in [Chain::Redbelly, Chain::Algorand] {
        let single = chain.run(&RunConfig::quick(23));
        let secure = chain.run(&config);
        let s = single.ecdf().expect("commits").mean();
        let m = secure.ecdf().expect("commits").mean();
        assert!(
            m > s * 0.8,
            "{chain}: secure mean {m} implausibly below single mean {s}"
        );
    }
}

#[test]
fn fault_plan_on_client_nodes_loses_their_transactions() {
    // The paper injects failures only on nodes without clients; this
    // checks the harness handles the opposite case gracefully: requests
    // to a crashed node are dropped and counted unresolved.
    let mut config = RunConfig::quick(24);
    config.faults = FaultSchedule::crash(vec![NodeId::new(0)], SimTime::from_secs(5));
    let result = Chain::Redbelly.run(&config);
    assert!(
        result.unresolved > 0,
        "client 0's submissions after 5 s are lost"
    );
    assert!(
        !result.lost_liveness,
        "the chain itself keeps committing the other clients' load"
    );
}

#[test]
fn paper_setup_runs_are_reproducible_and_seeded() {
    let a = PaperSetup::quick(60, 1).run(Chain::Aptos, ScenarioKind::Crash);
    let b = PaperSetup::quick(60, 1).run(Chain::Aptos, ScenarioKind::Crash);
    let c = PaperSetup::quick(60, 2).run(Chain::Aptos, ScenarioKind::Crash);
    assert_eq!(a.latencies, b.latencies, "same seed, same run");
    assert_ne!(a.latencies, c.latencies, "different seed, different run");
}

#[test]
fn sensitivity_of_identical_runs_is_zero() {
    let result = Chain::Solana.run(&RunConfig::quick(25));
    let ecdf = result.ecdf().expect("commits");
    let s = Sensitivity::from_ecdfs(&ecdf, &ecdf.clone());
    assert_eq!(s.score(), Some(0.0));
}

#[test]
fn ecdf_matches_run_statistics() {
    let result = Chain::Algorand.run(&RunConfig::quick(26));
    let ecdf = result.ecdf().expect("commits");
    assert_eq!(ecdf.len(), result.latencies.len());
    let mean: f64 = result.latencies.iter().sum::<f64>() / result.latencies.len() as f64;
    assert!((ecdf.mean() - mean).abs() < 1e-9);
    let rebuilt = Ecdf::new(result.latencies.clone()).expect("valid");
    assert_eq!(rebuilt.max(), ecdf.max());
}

#[test]
fn geo_topology_slows_cross_region_consensus() {
    use stabl_suite::stabl_sim::LatencyTopology;
    let mut geo = RunConfig::quick(28);
    geo.topology = Some(LatencyTopology::geo(5, 10));
    let local = Chain::Redbelly.run(&RunConfig::quick(28));
    let remote = Chain::Redbelly.run(&geo);
    assert_eq!(remote.unresolved, 0, "geo deployment still commits");
    let mean = |r: &stabl_suite::stabl::RunResult| r.ecdf().expect("commits").mean();
    assert!(
        mean(&remote) > mean(&local) * 1.3,
        "cross-region links must slow consensus: {} vs {}",
        mean(&remote),
        mean(&local)
    );
}

#[test]
fn longer_partitions_delay_more_transactions() {
    let run = |heal_secs: u64| {
        let mut config = RunConfig::quick(27);
        config.horizon = SimTime::from_secs(220);
        config.workload.end = SimTime::from_secs(200);
        config.stall_grace = SimDuration::from_secs(15);
        config.faults = FaultSchedule::partition(
            (6..10).map(NodeId::new).collect(),
            SimTime::from_secs(20),
            SimTime::from_secs(heal_secs),
        );
        Chain::Redbelly.run(&config)
    };
    let short = run(30);
    let long = run(60);
    assert!(!short.lost_liveness && !long.lost_liveness);
    let mean = |r: &stabl_suite::stabl::RunResult| r.ecdf().expect("commits").mean();
    assert!(
        mean(&long) > mean(&short),
        "a longer partition must delay more transactions: {} vs {}",
        mean(&long),
        mean(&short)
    );
}
