//! Hashing primitives: a from-scratch SHA-256 and the [`Hash32`] digest
//! newtype used for transaction and block identities.
//!
//! The Stabl study never stresses cryptographic CPU cost (the workload is a
//! constant 200 TPS, far below saturation), so signatures are modelled as
//! unforgeable tags elsewhere; hashing however is implemented for real so
//! that identities behave exactly like in production chains (collision
//! resistance, avalanche effect, stable across platforms).

use std::fmt;

/// A 256-bit digest.
///
/// # Examples
///
/// ```
/// use stabl_types::Hash32;
///
/// let h = Hash32::digest(b"abc");
/// assert_eq!(
///     h.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash32([u8; 32]);

impl Hash32 {
    /// The all-zero digest (used as the genesis parent).
    pub const ZERO: Hash32 = Hash32([0u8; 32]);

    /// Hashes `data` with SHA-256.
    pub fn digest(data: &[u8]) -> Hash32 {
        let mut hasher = Sha256::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// Combines two digests into one (Merkle-style inner node).
    pub fn combine(self, other: Hash32) -> Hash32 {
        let mut hasher = Sha256::new();
        hasher.update(&self.0);
        hasher.update(&other.0);
        hasher.finalize()
    }

    /// The raw digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Creates a digest from raw bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Hash32 {
        Hash32(bytes)
    }

    /// The first 8 bytes as a big-endian integer — handy as a
    /// deterministic pseudo-random value derived from the digest (the
    /// VRF-output trick used by the sortition module).
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Display for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Short form: first 4 bytes, like git abbreviations.
        write!(
            f,
            "Hash32({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl AsRef<[u8]> for Hash32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher (FIPS 180-4).
///
/// # Examples
///
/// ```
/// use stabl_types::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let once = {
///     let mut h = Sha256::new();
///     h.update(b"hello world");
///     h.finalize()
/// };
/// assert_eq!(hasher.finalize(), once);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Produces the digest, consuming the hasher.
    pub fn finalize(mut self) -> Hash32 {
        let bit_len = self.length.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buffered != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash32(out)
    }

    /// `update` without advancing the message length (padding bytes).
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: Hash32) -> String {
        h.to_string()
    }

    /// NIST FIPS 180-4 / RFC 6234 test vectors.
    #[test]
    fn nist_vectors() {
        assert_eq!(
            hex(Hash32::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(Hash32::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(Hash32::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        assert_eq!(
            hex(Hash32::digest(b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Hash32::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn lengths_around_block_boundary() {
        // Every length near the 64-byte boundary exercises a distinct
        // padding path; compare against the combine-based property that
        // distinct inputs give distinct digests.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=130 {
            let data = vec![0xAB; len];
            assert!(seen.insert(Hash32::digest(&data)), "collision at {len}");
        }
    }

    #[test]
    fn combine_is_ordered() {
        let a = Hash32::digest(b"a");
        let b = Hash32::digest(b"b");
        assert_ne!(a.combine(b), b.combine(a));
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let h = Hash32::from_bytes([
            0, 0, 0, 0, 0, 0, 0, 1, //
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(h.prefix_u64(), 1);
    }

    #[test]
    fn debug_is_abbreviated() {
        let h = Hash32::digest(b"abc");
        let dbg = format!("{h:?}");
        assert!(dbg.starts_with("Hash32(ba7816bf"), "{dbg}");
    }
}
