//! Blocks: the unit of agreement of every simulated chain.

use std::fmt;

use stabl_sim::NodeId;

use crate::{Hash32, Sha256, Transaction};

/// A proposed or committed block.
///
/// # Examples
///
/// ```
/// use stabl_sim::NodeId;
/// use stabl_types::{AccountId, Block, Hash32, Transaction};
///
/// let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 1);
/// let genesis = Block::genesis();
/// let block = Block::new(genesis.hash(), 1, NodeId::new(0), vec![tx]);
/// assert_eq!(block.parent(), genesis.hash());
/// assert_eq!(block.height(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    hash: Hash32,
    parent: Hash32,
    height: u64,
    proposer: NodeId,
    txs: Vec<Transaction>,
}

impl Block {
    /// The genesis block: height 0, no transactions, zero parent.
    pub fn genesis() -> Block {
        Block::new(Hash32::ZERO, 0, NodeId::new(0), Vec::new())
    }

    /// Creates a block and computes its content hash.
    pub fn new(parent: Hash32, height: u64, proposer: NodeId, txs: Vec<Transaction>) -> Block {
        let mut hasher = Sha256::new();
        hasher.update(b"stabl-block-v1");
        hasher.update(parent.as_bytes());
        hasher.update(&height.to_be_bytes());
        hasher.update(&proposer.as_u32().to_be_bytes());
        hasher.update(&(txs.len() as u64).to_be_bytes());
        for tx in &txs {
            hasher.update(tx.id().hash().as_bytes());
        }
        Block {
            hash: hasher.finalize(),
            parent,
            height,
            proposer,
            txs,
        }
    }

    /// The block's content hash.
    pub fn hash(&self) -> Hash32 {
        self.hash
    }

    /// The parent block's hash.
    pub fn parent(&self) -> Hash32 {
        self.parent
    }

    /// The chain height (genesis is 0).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The node that proposed this block.
    pub fn proposer(&self) -> NodeId {
        self.proposer
    }

    /// The transactions carried by the block.
    pub fn txs(&self) -> &[Transaction] {
        &self.txs
    }

    /// Number of transactions in the block.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// `true` if the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block h={} by {} ({} txs)",
            self.height,
            self.proposer,
            self.txs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccountId;

    fn tx(nonce: u64) -> Transaction {
        Transaction::transfer(AccountId::new(0), nonce, AccountId::new(1), 1)
    }

    #[test]
    fn hash_covers_content() {
        let parent = Hash32::digest(b"p");
        let a = Block::new(parent, 1, NodeId::new(0), vec![tx(0)]);
        let b = Block::new(parent, 1, NodeId::new(0), vec![tx(1)]);
        let c = Block::new(parent, 2, NodeId::new(0), vec![tx(0)]);
        let d = Block::new(parent, 1, NodeId::new(1), vec![tx(0)]);
        assert_ne!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
        assert_ne!(a.hash(), d.hash());
        let a2 = Block::new(parent, 1, NodeId::new(0), vec![tx(0)]);
        assert_eq!(a.hash(), a2.hash(), "hashing is deterministic");
    }

    #[test]
    fn genesis_is_stable() {
        assert_eq!(Block::genesis().hash(), Block::genesis().hash());
        assert_eq!(Block::genesis().height(), 0);
        assert!(Block::genesis().is_empty());
    }

    #[test]
    fn accessors() {
        let b = Block::new(Hash32::ZERO, 3, NodeId::new(2), vec![tx(0), tx(1)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.proposer(), NodeId::new(2));
        assert!(b.to_string().contains("h=3"));
    }
}
