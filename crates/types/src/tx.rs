//! Accounts and native-transfer transactions.
//!
//! The Stabl workload consists exclusively of native transfers at a
//! constant rate (the paper, §8: complex contract calls would exhaust gas
//! on some chains and mask the failure effects), so a transfer is the only
//! transaction kind modelled.

use std::fmt;

use crate::{Hash32, Sha256};

/// Identifies a client account.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccountId(u32);

impl AccountId {
    /// Creates an account id from a dense index.
    pub const fn new(index: u32) -> Self {
        AccountId(index)
    }

    /// The dense index of this account.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32`.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

/// Identifies a transaction: the SHA-256 digest of its signed payload.
///
/// Two submissions of the same logical transfer (same sender and nonce)
/// have the same id — this is what makes the secure client's redundant
/// submissions deduplicable, as in the real chains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(Hash32);

impl TxId {
    /// The digest backing this id.
    pub const fn hash(&self) -> Hash32 {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.0.as_bytes();
        write!(
            f,
            "tx:{:02x}{:02x}{:02x}{:02x}",
            bytes[0], bytes[1], bytes[2], bytes[3]
        )
    }
}

/// A signed native transfer.
///
/// # Examples
///
/// ```
/// use stabl_types::{AccountId, Transaction};
///
/// let tx = Transaction::transfer(AccountId::new(0), 5, AccountId::new(1), 100);
/// assert_eq!(tx.nonce(), 5);
/// assert_eq!(tx, tx.clone());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Transaction {
    id: TxId,
    from: AccountId,
    to: AccountId,
    nonce: u64,
    amount: u64,
}

impl Transaction {
    /// Creates a transfer of `amount` from `from` (at sequence number
    /// `nonce`) to `to`.
    pub fn transfer(from: AccountId, nonce: u64, to: AccountId, amount: u64) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(b"stabl-transfer-v1");
        hasher.update(&from.as_u32().to_be_bytes());
        hasher.update(&nonce.to_be_bytes());
        hasher.update(&to.as_u32().to_be_bytes());
        hasher.update(&amount.to_be_bytes());
        Transaction {
            id: TxId(hasher.finalize()),
            from,
            to,
            nonce,
            amount,
        }
    }

    /// The transaction id (content digest).
    pub fn id(&self) -> TxId {
        self.id
    }

    /// The sending account.
    pub fn from(&self) -> AccountId {
        self.from
    }

    /// The receiving account.
    pub fn to(&self) -> AccountId {
        self.to
    }

    /// The sender's sequence number.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// The transferred amount.
    pub fn amount(&self) -> u64 {
        self.amount
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}→{} #{} ({})",
            self.id, self.from, self.to, self.nonce, self.amount
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_is_content_addressed() {
        let a = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 10);
        let b = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 10);
        assert_eq!(a.id(), b.id(), "resubmission keeps the id");
        let c = Transaction::transfer(AccountId::new(0), 1, AccountId::new(1), 10);
        assert_ne!(a.id(), c.id(), "new nonce, new id");
        let d = Transaction::transfer(AccountId::new(2), 0, AccountId::new(1), 10);
        assert_ne!(a.id(), d.id(), "different sender, new id");
    }

    #[test]
    fn accessors_roundtrip() {
        let tx = Transaction::transfer(AccountId::new(3), 7, AccountId::new(4), 55);
        assert_eq!(tx.from(), AccountId::new(3));
        assert_eq!(tx.to(), AccountId::new(4));
        assert_eq!(tx.nonce(), 7);
        assert_eq!(tx.amount(), 55);
    }

    #[test]
    fn display_formats() {
        let tx = Transaction::transfer(AccountId::new(0), 1, AccountId::new(2), 3);
        let s = tx.to_string();
        assert!(
            s.contains("acct0") && s.contains("acct2") && s.contains("#1"),
            "{s}"
        );
    }
}
