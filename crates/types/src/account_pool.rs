//! A nonce-aware transaction pool.
//!
//! Production mempools (Aptos mempool, go-ethereum/coreth's `legacypool`)
//! track per-account sequence numbers: only *ready* transactions — whose
//! nonce chain is contiguous from the last committed nonce — are eligible
//! for a block proposal, while out-of-order arrivals park until the gap
//! fills. Proposals *copy* ready transactions; entries leave the pool
//! only when an account's committed nonce advances, so a failed proposal
//! needs no restore step.

use std::collections::{BTreeMap, BTreeSet};

use crate::{AccountId, Transaction, TxId};

/// A bounded, nonce-ordered transaction pool with per-account readiness
/// tracking.
///
/// # Examples
///
/// ```
/// use stabl_types::{AccountId, AccountPool, Transaction};
///
/// let mut pool = AccountPool::new(100);
/// let acct = AccountId::new(0);
/// let tx1 = Transaction::transfer(acct, 1, AccountId::new(9), 5);
/// pool.insert(tx1);
/// // Nonce 0 is missing, so nothing is ready yet.
/// assert!(pool.take_ready(10).is_empty());
/// let tx0 = Transaction::transfer(acct, 0, AccountId::new(9), 5);
/// pool.insert(tx0);
/// assert_eq!(pool.take_ready(10).len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AccountPool {
    by_account: BTreeMap<AccountId, BTreeMap<u64, Transaction>>,
    ids: BTreeSet<TxId>,
    committed_next: BTreeMap<AccountId, u64>,
    len: usize,
    capacity: usize,
    rejected_stale: u64,
    rejected_full: u64,
    rejected_conflict: u64,
}

impl AccountPool {
    /// Creates a pool holding at most `capacity` pending transactions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> AccountPool {
        assert!(capacity > 0, "pool capacity must be positive");
        AccountPool {
            capacity,
            ..AccountPool::default()
        }
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `tx`'s nonce is below the account's committed nonce —
    /// i.e. it (or a conflicting transaction) already committed.
    pub fn is_stale(&self, tx: &Transaction) -> bool {
        tx.nonce() < self.committed_nonce(tx.from())
    }

    /// The next nonce the pool believes `account` will commit.
    pub fn committed_nonce(&self, account: AccountId) -> u64 {
        self.committed_next.get(&account).copied().unwrap_or(0)
    }

    /// Inserts `tx`; returns `false` for stale transactions, duplicates
    /// and a full pool.
    pub fn insert(&mut self, tx: Transaction) -> bool {
        if self.is_stale(&tx) || self.ids.contains(&tx.id()) {
            self.rejected_stale += 1;
            return false;
        }
        if self.len >= self.capacity {
            self.rejected_full += 1;
            return false;
        }
        let slots = self.by_account.entry(tx.from()).or_default();
        if slots.contains_key(&tx.nonce()) {
            // A different transaction already occupies this nonce; first
            // arrival wins (like production pools without fee bumping).
            self.rejected_conflict += 1;
            return false;
        }
        slots.insert(tx.nonce(), tx);
        self.ids.insert(tx.id());
        self.len += 1;
        true
    }

    /// Copies up to `max` *ready* transactions: for every account, the
    /// contiguous nonce run starting at its committed nonce, drawn
    /// round-robin across accounts for fairness. The pool is unchanged —
    /// entries leave only through [`AccountPool::mark_committed`].
    pub fn take_ready(&self, max: usize) -> Vec<Transaction> {
        let mut ready: Vec<Vec<Transaction>> = Vec::new();
        for (account, slots) in &self.by_account {
            let mut next = self.committed_nonce(*account);
            let mut run = Vec::new();
            while let Some(tx) = slots.get(&next) {
                run.push(*tx);
                next += 1;
            }
            if !run.is_empty() {
                ready.push(run);
            }
        }
        let mut out = Vec::with_capacity(max.min(self.len));
        let mut depth = 0;
        while out.len() < max {
            let mut any = false;
            for run in &ready {
                if let Some(tx) = run.get(depth) {
                    out.push(*tx);
                    any = true;
                    if out.len() == max {
                        break;
                    }
                }
            }
            if !any {
                break;
            }
            depth += 1;
        }
        out
    }

    /// All ready transactions of one account, up to `max` (used by
    /// protocol-specific selection policies such as Avalanche's
    /// randomised gossip).
    pub fn ready_for(&self, account: AccountId, max: usize) -> Vec<Transaction> {
        let mut out = Vec::new();
        if let Some(slots) = self.by_account.get(&account) {
            let mut next = self.committed_nonce(account);
            while let Some(tx) = slots.get(&next) {
                out.push(*tx);
                next += 1;
                if out.len() == max {
                    break;
                }
            }
        }
        out
    }

    /// The pool's *frontier*: for every account with state, the first
    /// nonce the node does **not** hold contiguously (committed nonce
    /// plus the ready run). Pull-gossip peers use this to compute which
    /// transactions the node is missing.
    pub fn frontier(&self) -> Vec<(AccountId, u64)> {
        let mut out: Vec<(AccountId, u64)> = Vec::new();
        let mut accounts: Vec<AccountId> = self
            .by_account
            .keys()
            .copied()
            .chain(self.committed_next.keys().copied())
            .collect();
        accounts.sort_unstable();
        accounts.dedup();
        for account in accounts {
            let mut next = self.committed_nonce(account);
            if let Some(slots) = self.by_account.get(&account) {
                while slots.contains_key(&next) {
                    next += 1;
                }
            }
            out.push((account, next));
        }
        out
    }

    /// Transactions this pool holds that a peer with `frontier` is
    /// missing (nonce at or above the peer's frontier for that account),
    /// up to `max` — the pull-gossip response.
    pub fn missing_for(&self, frontier: &[(AccountId, u64)], max: usize) -> Vec<Transaction> {
        let mut out = Vec::new();
        for &(account, from_nonce) in frontier {
            if let Some(slots) = self.by_account.get(&account) {
                for (_, tx) in slots.range(from_nonce..) {
                    out.push(*tx);
                    if out.len() == max {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// Accounts with at least one pending transaction, in id order.
    pub fn accounts(&self) -> Vec<AccountId> {
        self.by_account
            .iter()
            .filter(|(_, slots)| !slots.is_empty())
            .map(|(account, _)| *account)
            .collect()
    }

    /// Advances `account`'s committed nonce to at least `next_nonce`,
    /// pruning every entry below it.
    pub fn mark_committed(&mut self, account: AccountId, next_nonce: u64) {
        let entry = self.committed_next.entry(account).or_insert(0);
        if next_nonce <= *entry {
            return;
        }
        *entry = next_nonce;
        if let Some(slots) = self.by_account.get_mut(&account) {
            let keep = slots.split_off(&next_nonce);
            for (_, tx) in std::mem::replace(slots, keep) {
                self.ids.remove(&tx.id());
                self.len -= 1;
            }
        }
    }

    /// Drops all pending transactions (volatile restart) while keeping
    /// the committed-nonce index (derived from durable chain state).
    pub fn clear_pending(&mut self) {
        self.by_account.clear();
        self.ids.clear();
        self.len = 0;
    }

    /// Transactions rejected as stale or duplicate.
    pub fn rejected_stale(&self) -> u64 {
        self.rejected_stale
    }

    /// Transactions rejected because the pool was full.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full
    }

    /// Attempted same-nonce replacements: a different transaction
    /// already held the (account, nonce) slot when this one arrived.
    pub fn rejected_conflict(&self) -> u64 {
        self.rejected_conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(from: u32, nonce: u64) -> Transaction {
        Transaction::transfer(AccountId::new(from), nonce, AccountId::new(99), 1)
    }

    #[test]
    fn contiguous_runs_are_ready() {
        let mut pool = AccountPool::new(100);
        pool.insert(tx(0, 0));
        pool.insert(tx(0, 1));
        pool.insert(tx(0, 3)); // gap at 2
        let ready = pool.take_ready(10);
        assert_eq!(
            ready.iter().map(|t| t.nonce()).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn gap_fill_releases_parked() {
        let mut pool = AccountPool::new(100);
        pool.insert(tx(0, 1));
        assert!(pool.take_ready(10).is_empty());
        pool.insert(tx(0, 0));
        assert_eq!(pool.take_ready(10).len(), 2);
    }

    #[test]
    fn round_robin_across_accounts() {
        let mut pool = AccountPool::new(100);
        for nonce in 0..3 {
            pool.insert(tx(0, nonce));
            pool.insert(tx(1, nonce));
        }
        let ready = pool.take_ready(4);
        let senders: Vec<u32> = ready.iter().map(|t| t.from().as_u32()).collect();
        assert_eq!(senders, vec![0, 1, 0, 1], "fair interleave");
        let nonces: Vec<u64> = ready.iter().map(|t| t.nonce()).collect();
        assert_eq!(nonces, vec![0, 0, 1, 1]);
    }

    #[test]
    fn take_ready_does_not_remove() {
        let mut pool = AccountPool::new(100);
        pool.insert(tx(0, 0));
        assert_eq!(pool.take_ready(10).len(), 1);
        assert_eq!(pool.take_ready(10).len(), 1, "copy semantics");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn mark_committed_prunes_and_blocks_stale() {
        let mut pool = AccountPool::new(100);
        pool.insert(tx(0, 0));
        pool.insert(tx(0, 1));
        pool.insert(tx(0, 2));
        pool.mark_committed(AccountId::new(0), 2);
        assert_eq!(pool.len(), 1);
        assert!(!pool.insert(tx(0, 1)), "stale rejected");
        assert!(pool.is_stale(&tx(0, 1)));
        assert_eq!(
            pool.take_ready(10)
                .iter()
                .map(|t| t.nonce())
                .collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    fn mark_committed_never_regresses() {
        let mut pool = AccountPool::new(100);
        pool.mark_committed(AccountId::new(0), 5);
        pool.mark_committed(AccountId::new(0), 3);
        assert_eq!(pool.committed_nonce(AccountId::new(0)), 5);
    }

    #[test]
    fn capacity_enforced() {
        let mut pool = AccountPool::new(2);
        assert!(pool.insert(tx(0, 0)));
        assert!(pool.insert(tx(0, 1)));
        assert!(!pool.insert(tx(0, 2)));
        assert_eq!(pool.rejected_full(), 1);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut pool = AccountPool::new(10);
        let t = tx(0, 0);
        assert!(pool.insert(t));
        assert!(!pool.insert(t));
        assert_eq!(pool.rejected_stale(), 1);
    }

    #[test]
    fn conflicting_nonce_first_wins() {
        let mut pool = AccountPool::new(10);
        let a = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 1);
        let b = Transaction::transfer(AccountId::new(0), 0, AccountId::new(2), 1);
        assert!(pool.insert(a));
        assert!(!pool.insert(b));
        assert_eq!(pool.rejected_conflict(), 1);
        assert_eq!(pool.rejected_stale(), 0, "conflicts counted separately");
        assert_eq!(pool.take_ready(10)[0].id(), a.id());
    }

    #[test]
    fn clear_pending_keeps_nonce_index() {
        let mut pool = AccountPool::new(10);
        pool.insert(tx(0, 0));
        pool.mark_committed(AccountId::new(0), 1);
        pool.insert(tx(0, 1));
        pool.clear_pending();
        assert!(pool.is_empty());
        assert!(!pool.insert(tx(0, 0)), "stale check survives restart");
        assert!(pool.insert(tx(0, 1)));
    }

    #[test]
    fn frontier_reports_first_missing_nonce() {
        let mut pool = AccountPool::new(64);
        pool.insert(tx(0, 0));
        pool.insert(tx(0, 1));
        pool.insert(tx(0, 3)); // gap at 2
        pool.insert(tx(1, 5)); // gap from 0
        assert_eq!(
            pool.frontier(),
            vec![(AccountId::new(0), 2), (AccountId::new(1), 0)]
        );
        pool.mark_committed(AccountId::new(0), 4);
        assert_eq!(
            pool.frontier(),
            vec![(AccountId::new(0), 4), (AccountId::new(1), 0)]
        );
    }

    #[test]
    fn missing_for_serves_the_peers_gap() {
        let mut pool = AccountPool::new(64);
        for n in 0..5 {
            pool.insert(tx(0, n));
        }
        // Peer already has nonces 0..3.
        let missing = pool.missing_for(&[(AccountId::new(0), 3)], 10);
        assert_eq!(
            missing.iter().map(|t| t.nonce()).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // Cap applies.
        let capped = pool.missing_for(&[(AccountId::new(0), 0)], 2);
        assert_eq!(capped.len(), 2);
        // Unknown accounts yield nothing.
        assert!(pool.missing_for(&[(AccountId::new(7), 0)], 10).is_empty());
    }

    #[test]
    fn ready_for_single_account() {
        let mut pool = AccountPool::new(10);
        pool.insert(tx(0, 0));
        pool.insert(tx(0, 1));
        pool.insert(tx(1, 0));
        let ready = pool.ready_for(AccountId::new(0), 1);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].nonce(), 0);
        assert_eq!(pool.accounts(), vec![AccountId::new(0), AccountId::new(1)]);
    }
}
