//! The replicated account ledger each node executes committed blocks on.

use std::collections::BTreeMap;
use std::fmt;

use crate::{AccountId, Transaction, TxId};

/// Why a transaction was rejected by [`Ledger::apply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// The nonce is lower than the account's next expected sequence
    /// number — the transaction (or a conflicting one) already executed.
    /// This is Aptos' `SEQUENCE_NUMBER_TOO_OLD` and the signal every
    /// chain uses to deduplicate the secure client's redundant copies.
    SequenceNumberTooOld {
        /// The sequence number the account expects next.
        expected: u64,
        /// The stale nonce carried by the transaction.
        got: u64,
    },
    /// The nonce skips ahead of the account's next sequence number; the
    /// transaction must wait for its predecessors.
    SequenceNumberTooNew {
        /// The sequence number the account expects next.
        expected: u64,
        /// The premature nonce carried by the transaction.
        got: u64,
    },
    /// The sender cannot cover the transferred amount.
    InsufficientFunds {
        /// The sender's balance.
        balance: u64,
        /// The amount the transfer needed.
        needed: u64,
    },
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::SequenceNumberTooOld { expected, got } => {
                write!(f, "sequence number too old: expected {expected}, got {got}")
            }
            ApplyError::SequenceNumberTooNew { expected, got } => {
                write!(f, "sequence number too new: expected {expected}, got {got}")
            }
            ApplyError::InsufficientFunds { balance, needed } => {
                write!(f, "insufficient funds: balance {balance}, needed {needed}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// Account balances and sequence numbers, advanced by executing
/// committed transactions in order.
///
/// # Examples
///
/// ```
/// use stabl_types::{AccountId, Ledger, Transaction};
///
/// let mut ledger = Ledger::with_uniform_balance(4, 1_000);
/// let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 10);
/// ledger.apply(&tx)?;
/// assert_eq!(ledger.balance(AccountId::new(1)), 1_010);
/// # Ok::<(), stabl_types::ApplyError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    balances: BTreeMap<AccountId, u64>,
    nonces: BTreeMap<AccountId, u64>,
    executed: u64,
    /// Balance credited lazily to accounts never seen before — the
    /// genesis allocation of a declared-but-unmaterialized population.
    /// Zero for the paper-standard prefunded ledgers, so their behavior
    /// is unchanged.
    default_balance: u64,
}

impl Ledger {
    /// An empty ledger (every balance zero).
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// A ledger where accounts `0..accounts` each hold `balance`.
    pub fn with_uniform_balance(accounts: u32, balance: u64) -> Ledger {
        let mut ledger = Ledger::new();
        for i in 0..accounts {
            ledger.balances.insert(AccountId::new(i), balance);
        }
        ledger
    }

    /// A ledger where *every* account starts at `balance`, materialized
    /// lazily on first touch. This funds populations of millions of
    /// Feistel-scattered accounts in O(active set) memory — the
    /// production-workload counterpart of [`Ledger::with_uniform_balance`].
    pub fn with_lazy_balance(balance: u64) -> Ledger {
        Ledger {
            default_balance: balance,
            ..Ledger::new()
        }
    }

    /// The balance of `account` (the lazy default if never touched).
    pub fn balance(&self, account: AccountId) -> u64 {
        self.balances
            .get(&account)
            .copied()
            .unwrap_or(self.default_balance)
    }

    /// The next sequence number expected from `account`.
    pub fn next_nonce(&self, account: AccountId) -> u64 {
        self.nonces.get(&account).copied().unwrap_or(0)
    }

    /// Number of transactions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Total supply across all *materialized* accounts (conserved by
    /// transfers between them; lazily-funded accounts join the sum when
    /// first touched).
    pub fn total_supply(&self) -> u64 {
        self.balances.values().sum()
    }

    /// Checks whether `tx` would execute without applying it.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Ledger::apply`].
    pub fn check(&self, tx: &Transaction) -> Result<(), ApplyError> {
        let expected = self.next_nonce(tx.from());
        if tx.nonce() < expected {
            return Err(ApplyError::SequenceNumberTooOld {
                expected,
                got: tx.nonce(),
            });
        }
        if tx.nonce() > expected {
            return Err(ApplyError::SequenceNumberTooNew {
                expected,
                got: tx.nonce(),
            });
        }
        let balance = self.balance(tx.from());
        if balance < tx.amount() {
            return Err(ApplyError::InsufficientFunds {
                balance,
                needed: tx.amount(),
            });
        }
        Ok(())
    }

    /// Executes `tx`, returning its id on success.
    ///
    /// # Errors
    ///
    /// Fails with [`ApplyError::SequenceNumberTooOld`] on duplicates,
    /// [`ApplyError::SequenceNumberTooNew`] on nonce gaps, and
    /// [`ApplyError::InsufficientFunds`] on overdrafts; the ledger is
    /// unchanged on failure.
    pub fn apply(&mut self, tx: &Transaction) -> Result<TxId, ApplyError> {
        self.check(tx)?;
        let default = self.default_balance;
        *self.balances.entry(tx.from()).or_insert(default) -= tx.amount();
        *self.balances.entry(tx.to()).or_insert(default) += tx.amount();
        self.nonces.insert(tx.from(), tx.nonce() + 1);
        self.executed += 1;
        Ok(tx.id())
    }

    /// Executes every transaction of a batch in order, skipping failures;
    /// returns the ids of the transactions that executed.
    ///
    /// This is the semantics of every studied chain: a block may carry
    /// stale duplicates (secure client) which execute as no-ops.
    pub fn apply_batch<'a, I>(&mut self, txs: I) -> Vec<TxId>
    where
        I: IntoIterator<Item = &'a Transaction>,
    {
        txs.into_iter()
            .filter_map(|tx| self.apply(tx).ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(from: u32, nonce: u64, to: u32, amount: u64) -> Transaction {
        Transaction::transfer(AccountId::new(from), nonce, AccountId::new(to), amount)
    }

    #[test]
    fn transfer_moves_funds() {
        let mut l = Ledger::with_uniform_balance(2, 100);
        l.apply(&tx(0, 0, 1, 30)).expect("valid transfer");
        assert_eq!(l.balance(AccountId::new(0)), 70);
        assert_eq!(l.balance(AccountId::new(1)), 130);
        assert_eq!(l.next_nonce(AccountId::new(0)), 1);
        assert_eq!(l.executed(), 1);
    }

    #[test]
    fn duplicate_rejected_as_too_old() {
        let mut l = Ledger::with_uniform_balance(2, 100);
        let t = tx(0, 0, 1, 10);
        l.apply(&t).expect("first apply");
        let err = l.apply(&t).expect_err("duplicate");
        assert_eq!(
            err,
            ApplyError::SequenceNumberTooOld {
                expected: 1,
                got: 0
            }
        );
        assert_eq!(l.balance(AccountId::new(1)), 110, "no double spend");
    }

    #[test]
    fn nonce_gap_rejected_as_too_new() {
        let mut l = Ledger::with_uniform_balance(2, 100);
        let err = l.apply(&tx(0, 5, 1, 10)).expect_err("gap");
        assert!(matches!(
            err,
            ApplyError::SequenceNumberTooNew {
                expected: 0,
                got: 5
            }
        ));
    }

    #[test]
    fn overdraft_rejected_and_ledger_unchanged() {
        let mut l = Ledger::with_uniform_balance(2, 5);
        let err = l.apply(&tx(0, 0, 1, 10)).expect_err("overdraft");
        assert!(matches!(
            err,
            ApplyError::InsufficientFunds {
                balance: 5,
                needed: 10
            }
        ));
        assert_eq!(l.next_nonce(AccountId::new(0)), 0, "nonce not consumed");
        assert_eq!(l.total_supply(), 10);
    }

    #[test]
    fn supply_is_conserved() {
        let mut l = Ledger::with_uniform_balance(3, 1000);
        let initial = l.total_supply();
        for nonce in 0..10 {
            l.apply(&tx(0, nonce, 1, 7)).expect("transfer");
            l.apply(&tx(1, nonce, 2, 3)).expect("transfer");
        }
        assert_eq!(l.total_supply(), initial);
    }

    #[test]
    fn apply_batch_skips_failures() {
        let mut l = Ledger::with_uniform_balance(2, 100);
        let good = tx(0, 0, 1, 10);
        let dup = tx(0, 0, 1, 10);
        let next = tx(0, 1, 1, 10);
        let applied = l.apply_batch([&good, &dup, &next]);
        assert_eq!(applied, vec![good.id(), next.id()]);
        assert_eq!(l.executed(), 2);
    }

    #[test]
    fn check_does_not_mutate() {
        let l = Ledger::with_uniform_balance(2, 100);
        let t = tx(0, 0, 1, 10);
        l.check(&t).expect("valid");
        assert_eq!(l.executed(), 0);
        assert_eq!(l.next_nonce(AccountId::new(0)), 0);
    }

    #[test]
    fn lazy_balance_funds_unseen_accounts() {
        let mut l = Ledger::with_lazy_balance(1_000);
        // Account 123456 was never inserted, yet it can spend.
        l.apply(&tx(123_456, 0, 7, 30)).expect("lazily funded");
        assert_eq!(l.balance(AccountId::new(123_456)), 970);
        assert_eq!(l.balance(AccountId::new(7)), 1_030);
        assert_eq!(l.balance(AccountId::new(42)), 1_000, "untouched default");
        // Only the touched accounts are materialized.
        assert_eq!(l.total_supply(), 2_000);
    }

    #[test]
    fn error_display() {
        let e = ApplyError::SequenceNumberTooOld {
            expected: 2,
            got: 1,
        };
        assert_eq!(e.to_string(), "sequence number too old: expected 2, got 1");
    }
}
