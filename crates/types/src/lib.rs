//! # stabl-types — shared blockchain data types
//!
//! Hashing ([`Sha256`], [`Hash32`]), accounts and native transfers
//! ([`Transaction`]), blocks ([`Block`]), the replicated account ledger
//! ([`Ledger`]) and a generic deduplicating [`Mempool`]. These are the
//! building blocks shared by the five protocol crates of the Stabl
//! reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account_pool;
mod block;
mod crypto;
mod ledger;
mod mempool;
mod tx;

pub use account_pool::AccountPool;
pub use block::Block;
pub use crypto::{Hash32, Sha256};
pub use ledger::{ApplyError, Ledger};
pub use mempool::Mempool;
pub use tx::{AccountId, Transaction, TxId};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sha256_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(Hash32::digest(&data), Hash32::digest(&data));
        }

        #[test]
        fn sha256_incremental_any_split(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            split in 0usize..256,
        ) {
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Hash32::digest(&data));
        }

        #[test]
        fn ledger_conserves_supply(
            transfers in proptest::collection::vec((0u32..4, 0u32..4, 1u64..50), 0..64)
        ) {
            let mut ledger = Ledger::with_uniform_balance(4, 10_000);
            let initial = ledger.total_supply();
            let mut nonces = [0u64; 4];
            for (from, to, amount) in transfers {
                let tx = Transaction::transfer(
                    AccountId::new(from),
                    nonces[from as usize],
                    AccountId::new(to),
                    amount,
                );
                if ledger.apply(&tx).is_ok() {
                    nonces[from as usize] += 1;
                }
            }
            prop_assert_eq!(ledger.total_supply(), initial);
        }

        #[test]
        fn ledger_rejects_every_replay(
            transfers in proptest::collection::vec((0u32..3, 0u32..3, 1u64..10), 1..32)
        ) {
            let mut ledger = Ledger::with_uniform_balance(3, 1_000);
            let mut nonces = [0u64; 3];
            let mut applied = Vec::new();
            for (from, to, amount) in transfers {
                let tx = Transaction::transfer(
                    AccountId::new(from),
                    nonces[from as usize],
                    AccountId::new(to),
                    amount,
                );
                if ledger.apply(&tx).is_ok() {
                    nonces[from as usize] += 1;
                    applied.push(tx);
                }
            }
            for tx in &applied {
                prop_assert!(ledger.apply(tx).is_err(), "replay of {} accepted", tx);
            }
        }

        #[test]
        fn mempool_never_exceeds_capacity(
            capacity in 1usize..16,
            nonces in proptest::collection::vec(0u64..32, 0..64),
        ) {
            let mut pool = Mempool::new(capacity);
            for n in nonces {
                pool.insert(Transaction::transfer(
                    AccountId::new(0), n, AccountId::new(1), 1,
                ));
                prop_assert!(pool.len() <= capacity);
            }
        }

        #[test]
        fn mempool_take_restore_roundtrip(
            count in 1usize..20,
            take in 0usize..25,
        ) {
            let mut pool = Mempool::new(64);
            for n in 0..count as u64 {
                pool.insert(Transaction::transfer(AccountId::new(0), n, AccountId::new(1), 1));
            }
            let before: Vec<_> = pool.iter().map(|t| t.id()).collect();
            let taken = pool.take(take);
            pool.restore(taken);
            let after: Vec<_> = pool.iter().map(|t| t.id()).collect();
            prop_assert_eq!(before, after);
        }

        #[test]
        fn account_pool_ready_is_always_contiguous(
            ops in proptest::collection::vec(
                // (account, nonce, is_commit)
                (0u32..3, 0u64..24, proptest::bool::ANY),
                0..96,
            )
        ) {
            let mut pool = AccountPool::new(512);
            for (account, nonce, is_commit) in ops {
                let account = AccountId::new(account);
                if is_commit {
                    pool.mark_committed(account, nonce);
                } else {
                    pool.insert(Transaction::transfer(account, nonce, AccountId::new(9), 1));
                }
                // Invariant: take_ready returns, per account, a contiguous
                // nonce run starting at the committed nonce.
                let ready = pool.take_ready(usize::MAX >> 1);
                let mut per_account: std::collections::HashMap<AccountId, Vec<u64>> =
                    std::collections::HashMap::new();
                for tx in &ready {
                    per_account.entry(tx.from()).or_default().push(tx.nonce());
                }
                for (acct, mut nonces) in per_account {
                    nonces.sort_unstable();
                    prop_assert_eq!(nonces[0], pool.committed_nonce(acct));
                    for w in nonces.windows(2) {
                        prop_assert_eq!(w[1], w[0] + 1, "gap in ready run of {}", acct);
                    }
                }
            }
        }

        #[test]
        fn account_pool_never_yields_stale_transactions(
            inserts in proptest::collection::vec((0u32..2, 0u64..16), 0..48),
            commit_to in 0u64..16,
        ) {
            let mut pool = AccountPool::new(256);
            for (account, nonce) in inserts {
                pool.insert(Transaction::transfer(
                    AccountId::new(account), nonce, AccountId::new(9), 1,
                ));
            }
            pool.mark_committed(AccountId::new(0), commit_to);
            for tx in pool.take_ready(usize::MAX >> 1) {
                if tx.from() == AccountId::new(0) {
                    prop_assert!(tx.nonce() >= commit_to);
                }
            }
            // And stale inserts are rejected outright.
            if commit_to > 0 {
                prop_assert!(!pool.insert(Transaction::transfer(
                    AccountId::new(0), commit_to - 1, AccountId::new(9), 1,
                )));
            }
        }

        #[test]
        fn mempool_and_account_pool_agree_on_dedup(
            nonces in proptest::collection::vec(0u64..12, 0..48)
        ) {
            let mut mempool = Mempool::new(256);
            let mut pool = AccountPool::new(256);
            for n in nonces {
                let tx = Transaction::transfer(AccountId::new(0), n, AccountId::new(1), 1);
                let a = mempool.insert(tx);
                let b = pool.insert(tx);
                prop_assert_eq!(a, b, "divergent dedup for nonce {}", n);
            }
        }

        #[test]
        fn tx_ids_unique(
            pairs in proptest::collection::hash_set((0u32..64, 0u64..64), 0..64)
        ) {
            let ids: std::collections::HashSet<TxId> = pairs
                .iter()
                .map(|&(from, nonce)| {
                    Transaction::transfer(AccountId::new(from), nonce, AccountId::new(from + 1), 1).id()
                })
                .collect();
            prop_assert_eq!(ids.len(), pairs.len());
        }
    }
}
