//! A generic FIFO memory pool with duplicate suppression.
//!
//! Algorand, Aptos, Avalanche and Redbelly hold pending transactions in a
//! node-local pool before proposing them; Solana notably does not (it
//! forwards to scheduled leaders), which is why its crate does not use
//! this type.

use std::collections::{BTreeSet, VecDeque};

use crate::{Transaction, TxId};

/// A bounded FIFO transaction pool with id-based deduplication.
///
/// # Examples
///
/// ```
/// use stabl_types::{AccountId, Mempool, Transaction};
///
/// let mut pool = Mempool::new(2);
/// let tx = Transaction::transfer(AccountId::new(0), 0, AccountId::new(1), 1);
/// assert!(pool.insert(tx));
/// assert!(!pool.insert(tx), "duplicate suppressed");
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Mempool {
    queue: VecDeque<Transaction>,
    ids: BTreeSet<TxId>,
    /// Ids seen committed; future inserts of these are rejected.
    committed: BTreeSet<TxId>,
    capacity: usize,
    dropped_full: u64,
    rejected_duplicate: u64,
}

impl Mempool {
    /// Creates a pool holding at most `capacity` pending transactions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mempool {
        assert!(capacity > 0, "mempool capacity must be positive");
        Mempool {
            queue: VecDeque::new(),
            ids: BTreeSet::new(),
            committed: BTreeSet::new(),
            capacity,
            dropped_full: 0,
            rejected_duplicate: 0,
        }
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no transaction is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// `true` if `id` is currently pending.
    pub fn contains(&self, id: TxId) -> bool {
        self.ids.contains(&id)
    }

    /// Inserts `tx`; returns `false` if it was a duplicate, already
    /// committed, or the pool is full.
    pub fn insert(&mut self, tx: Transaction) -> bool {
        if self.ids.contains(&tx.id()) || self.committed.contains(&tx.id()) {
            self.rejected_duplicate += 1;
            return false;
        }
        if self.queue.len() >= self.capacity {
            self.dropped_full += 1;
            return false;
        }
        self.ids.insert(tx.id());
        self.queue.push_back(tx);
        true
    }

    /// Takes up to `max` transactions in FIFO order (a block proposal).
    /// The taken transactions stay marked as seen so gossip cannot
    /// reintroduce them; call [`Mempool::restore`] to put them back.
    pub fn take(&mut self, max: usize) -> Vec<Transaction> {
        let count = max.min(self.queue.len());
        self.queue.drain(..count).collect()
    }

    /// Returns previously [`take`](Mempool::take)n transactions to the
    /// front of the pool (a failed proposal).
    pub fn restore(&mut self, txs: Vec<Transaction>) {
        for tx in txs.into_iter().rev() {
            if !self.committed.contains(&tx.id()) && self.ids.contains(&tx.id()) {
                self.queue.push_front(tx);
            }
        }
    }

    /// Marks `id` committed: removes it if pending and blocks future
    /// inserts of the same id.
    pub fn mark_committed(&mut self, id: TxId) {
        self.committed.insert(id);
        if self.ids.remove(&id) {
            self.queue.retain(|tx| tx.id() != id);
        }
    }

    /// Peeks at the pending transactions in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.queue.iter()
    }

    /// Empties the pool (node restart losing volatile state); the
    /// committed-set is kept, mirroring on-disk dedup indices.
    pub fn clear_pending(&mut self) {
        self.queue.clear();
        self.ids.clear();
    }

    /// Transactions rejected because the pool was full.
    pub fn dropped_full(&self) -> u64 {
        self.dropped_full
    }

    /// Transactions rejected as duplicates.
    pub fn rejected_duplicate(&self) -> u64 {
        self.rejected_duplicate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccountId;

    fn tx(nonce: u64) -> Transaction {
        Transaction::transfer(AccountId::new(0), nonce, AccountId::new(1), 1)
    }

    #[test]
    fn fifo_order() {
        let mut pool = Mempool::new(10);
        for n in 0..5 {
            assert!(pool.insert(tx(n)));
        }
        let taken = pool.take(3);
        assert_eq!(
            taken.iter().map(|t| t.nonce()).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut pool = Mempool::new(2);
        assert!(pool.insert(tx(0)));
        assert!(pool.insert(tx(1)));
        assert!(!pool.insert(tx(2)));
        assert_eq!(pool.dropped_full(), 1);
    }

    #[test]
    fn duplicates_rejected_even_after_take() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(0));
        let taken = pool.take(1);
        assert!(!pool.insert(taken[0]), "in-flight proposal still seen");
        assert_eq!(pool.rejected_duplicate(), 1);
    }

    #[test]
    fn committed_never_reenters() {
        let mut pool = Mempool::new(10);
        let t = tx(0);
        pool.insert(t);
        pool.mark_committed(t.id());
        assert!(pool.is_empty());
        assert!(!pool.insert(t), "committed id rejected");
    }

    #[test]
    fn restore_returns_to_front() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(0));
        pool.insert(tx(1));
        pool.insert(tx(2));
        let taken = pool.take(2);
        pool.restore(taken);
        let order: Vec<u64> = pool.iter().map(|t| t.nonce()).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn restore_skips_committed_meanwhile() {
        let mut pool = Mempool::new(10);
        let t0 = tx(0);
        pool.insert(t0);
        let taken = pool.take(1);
        pool.mark_committed(t0.id());
        pool.restore(taken);
        assert!(pool.is_empty());
    }

    #[test]
    fn clear_pending_keeps_committed_index() {
        let mut pool = Mempool::new(10);
        let t0 = tx(0);
        pool.insert(t0);
        pool.mark_committed(t0.id());
        pool.insert(tx(1));
        pool.clear_pending();
        assert!(pool.is_empty());
        assert!(!pool.insert(t0), "committed survives restart");
        assert!(pool.insert(tx(1)), "pending was volatile");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Mempool::new(0);
    }
}
