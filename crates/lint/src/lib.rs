//! # stabl-lint — workspace determinism & robustness linter
//!
//! The Stabl sensitivity metric compares a baseline run against an
//! altered run and attributes the whole difference to the injected
//! failure. That attribution is only sound if nothing *else* differs —
//! which is why the workspace carries runtime determinism gates
//! (byte-compared campaign artifacts, replay proptests, Full-vs-Off
//! trace identity). Those gates catch nondeterminism only after it
//! fires on a sampled seed. `stabl-lint` closes the remaining gap
//! statically, the way a race detector complements a stress test: it
//! bans the *sources* of nondeterminism (wall clocks, ambient RNG,
//! unordered-map iteration) from protocol code before they can bite.
//!
//! Three rule families (full table in [`rules`]):
//!
//! * **D-rules** — determinism: no `Instant::now`, `SystemTime::now`,
//!   `thread_rng`, `rand::random`, `HashMap`/`HashSet` inside
//!   `crates/sim` and the five chain crates.
//! * **R-rules** — robustness: no `unwrap()`/`expect()`/`panic!`/
//!   `todo!` in non-test library code of `crates/core` and
//!   `crates/sim`; no `process::exit` outside `src/bin`.
//! * **S-rules** — serde/cache hygiene: every `Serialize` type in
//!   `RunResult`-reachable modules must be listed in the cache-schema
//!   manifest next to `CACHE_SCHEMA_VERSION`, so a new serialised
//!   field can't silently poison the on-disk campaign cache.
//!
//! The pass runs on a small hand-rolled lexer ([`lexer`]) rather than
//! `syn` — the vendor tree holds offline stubs — and is itself
//! dependency-free so it can run first in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use engine::{Engine, Report};
pub use rules::{Diagnostic, FileScope, RuleInfo, Severity, RULES};
