//! # stabl-lint — workspace determinism & robustness linter
//!
//! The Stabl sensitivity metric compares a baseline run against an
//! altered run and attributes the whole difference to the injected
//! failure. That attribution is only sound if nothing *else* differs —
//! which is why the workspace carries runtime determinism gates
//! (byte-compared campaign artifacts, replay proptests, Full-vs-Off
//! trace identity). Those gates catch nondeterminism only after it
//! fires on a sampled seed. `stabl-lint` closes the remaining gap
//! statically, the way a race detector complements a stress test: it
//! bans the *sources* of nondeterminism (wall clocks, ambient RNG,
//! unordered-map iteration) from protocol code before they can bite.
//!
//! Rule families (full table in [`rules`]):
//!
//! * **D-rules** — determinism: no `Instant::now`, `SystemTime::now`,
//!   `thread_rng`, `rand::random`, `HashMap`/`HashSet` inside
//!   `crates/sim` and the five chain crates — alias-aware since v2,
//!   so `use std::collections::HashMap as Map` no longer hides one.
//! * **R-rules** — robustness: no `unwrap()`/`expect()`/`panic!`/
//!   `todo!` in non-test library code of `crates/core` and
//!   `crates/sim`; no `process::exit` outside `src/bin`.
//! * **S-rules** — serde/cache hygiene: every `Serialize` type in
//!   `RunResult`-reachable modules must be listed in the cache-schema
//!   manifest next to `CACHE_SCHEMA_VERSION`, so a new serialised
//!   field can't silently poison the on-disk campaign cache.
//! * **P-rules** — shard-safety certification: no ambient shared
//!   mutable state (`static mut`, `thread_local!`, `Rc`/`Arc`, cells,
//!   locks, atomics) in the crates ROADMAP item 2 wants to shard,
//!   annotated with a handler → use call path ([`rules_shard`]).
//! * **E-rules** — exhaustiveness drift: every `Protocol::Msg` variant
//!   has a match arm in its chain crate; every `SimEvent` variant is
//!   covered by the observe/diagnose exporters ([`rules_exhaustive`]).
//! * **N-rules** — numeric determinism: float `==`, truncating casts
//!   on time/seed values, raw `as_micros()` arithmetic
//!   ([`rules_numeric`]).
//! * **B-001** — the `lint-baseline.json` ratchet ([`baseline`]): new
//!   findings fail CI, committed debt may only shrink.
//!
//! v2 runs on an item-level parser ([`parse`]) and per-crate symbol
//! tables ([`symbols`]) built over the same hand-rolled lexer
//! ([`lexer`]) — no `syn`, no dependencies — so the whole pass still
//! runs first in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod rules_exhaustive;
pub mod rules_numeric;
pub mod rules_shard;
pub mod symbols;

pub use config::Config;
pub use engine::{Certification, Engine, Report};
pub use rules::{Diagnostic, FileScope, RuleInfo, Severity, RULES};
