//! Per-crate symbol tables and the workspace item graph.
//!
//! This is the semantic layer between [`crate::parse`] (one file at a
//! time) and the v2 rule families:
//!
//! * [`FileAnalysis`] bundles everything a rule needs about one file —
//!   the lexed tokens, its `#[cfg(test)]` spans, the parsed items, and
//!   a **use-alias map** that resolves a local identifier to the last
//!   segment of its canonical imported path. That resolution is what
//!   makes D- and P-rules unspoofable: `use std::sync::Arc as Shared`
//!   leaves `Shared` resolving to `Arc`.
//! * [`CrateGraph`] holds a per-crate, name-based function call graph
//!   seeded at `impl Protocol for …` methods, with BFS-computed
//!   reachability and a reconstructed example path
//!   (`on_message → dispatch → try_commit`) so a P-rule finding can
//!   say *how* handler code reaches the banned item.
//!
//! The call graph is a deliberate over-approximation: an edge is "an
//! identifier that names a function of this crate appears in this
//! body, immediately followed by `(`". Coarse name-based resolution
//! cannot miss a real call (no false negatives for reachability), at
//! the cost of occasionally connecting same-named functions — which
//! for a *certification* lint is the safe direction to err.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{self, Lexed, TokenKind};
use crate::parse::{self, ParsedFile};

/// The crate a workspace-relative path belongs to: `"crates/<name>"`
/// for crate sources, `""` for everything else (root bins, xtask).
pub fn crate_key_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return format!("crates/{name}");
        }
    }
    String::new()
}

/// Everything the semantic rules need about one source file.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Lexed tokens and comments.
    pub lexed: Lexed,
    /// `#[cfg(test)]` item spans over the token stream.
    pub test_spans: Vec<(usize, usize)>,
    /// Parsed items and pattern paths.
    pub parsed: ParsedFile,
    /// Local name → full imported path, from the file's `use` items.
    pub aliases: BTreeMap<String, Vec<String>>,
    /// The crate this file belongs to (see [`crate_key_of`]).
    pub crate_key: String,
}

impl FileAnalysis {
    /// Lexes and parses `src`, building the alias map.
    pub fn analyze(rel: &str, src: &str) -> FileAnalysis {
        let lexed = lexer::lex(src);
        let test_spans = lexer::test_spans(&lexed.tokens);
        let parsed = parse::parse(&lexed.tokens);
        let mut aliases = BTreeMap::new();
        for u in &parsed.uses {
            aliases.insert(u.local.clone(), u.path.clone());
        }
        FileAnalysis {
            rel: rel.to_owned(),
            crate_key: crate_key_of(rel),
            lexed,
            test_spans,
            parsed,
            aliases,
        }
    }

    /// `true` when token index `tok` falls inside a `#[cfg(test)]`
    /// item.
    pub fn in_test_span(&self, tok: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| tok >= s && tok < e)
    }

    /// Resolves an identifier through this file's `use` aliases to the
    /// last segment of its canonical path. Unknown identifiers resolve
    /// to themselves.
    pub fn resolve_last<'a>(&'a self, ident: &'a str) -> &'a str {
        self.aliases
            .get(ident)
            .and_then(|p| p.last())
            .map_or(ident, String::as_str)
    }

    /// The innermost function whose body contains token index `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&str> {
        let mut best: Option<(usize, &str)> = None;
        for f in self.parsed.all_fns() {
            if let Some((s, e)) = f.body {
                if tok >= s && tok <= e {
                    let width = e - s;
                    if best.is_none_or(|(w, _)| width < w) {
                        best = Some((width, f.name.as_str()));
                    }
                }
            }
        }
        best.map(|(_, name)| name)
    }

    /// Pattern paths with `Self` resolved to the enclosing impl's type
    /// and the first segment resolved through `use` aliases. Yields
    /// `(resolved enum name, variant name, token index)` for every
    /// two-or-more-segment pattern path; only the last two segments
    /// matter for variant coverage.
    pub fn resolved_patterns(&self) -> Vec<(String, String, usize)> {
        let mut out = Vec::new();
        for p in &self.parsed.patterns {
            if p.segs.len() < 2 {
                continue;
            }
            let variant = p.segs[p.segs.len() - 1].clone();
            let owner_raw = &p.segs[p.segs.len() - 2];
            let owner = if owner_raw == "Self" {
                match self.parsed.impl_containing(p.tok) {
                    Some(i) => i.type_name.clone(),
                    None => continue,
                }
            } else {
                self.resolve_last(owner_raw).to_owned()
            };
            out.push((owner, variant, p.tok));
        }
        out
    }
}

/// The name-based call graph of one crate, seeded at Protocol-impl
/// handler methods.
#[derive(Debug, Default)]
pub struct CrateGraph {
    /// Names of all functions defined in the crate's non-test code.
    pub fns: BTreeSet<String>,
    /// Caller name → callee names (only callees defined in-crate).
    pub calls: BTreeMap<String, BTreeSet<String>>,
    /// Methods of non-test `impl Protocol for …` blocks.
    pub seeds: BTreeSet<String>,
    /// Function → example call path from a seed, rendered as
    /// `"on_message → dispatch → try_commit"`. Seeds map to their own
    /// name.
    pub reach: BTreeMap<String, String>,
}

impl CrateGraph {
    /// `true` when `fn_name` is a handler or reachable from one.
    pub fn handler_reaches(&self, fn_name: &str) -> bool {
        self.reach.contains_key(fn_name)
    }

    /// The example path for a reachable function, if any.
    pub fn example_path(&self, fn_name: &str) -> Option<&str> {
        self.reach.get(fn_name).map(String::as_str)
    }
}

/// Per-crate symbol tables for the whole workspace.
#[derive(Debug, Default)]
pub struct SymbolTable {
    graphs: BTreeMap<String, CrateGraph>,
}

impl SymbolTable {
    /// Builds call graphs and handler reachability for every crate
    /// represented in `files`. Test-span code contributes neither
    /// functions nor edges.
    pub fn build(files: &[FileAnalysis]) -> SymbolTable {
        let mut graphs: BTreeMap<String, CrateGraph> = BTreeMap::new();

        // Pass 1: every crate's function name set and handler seeds.
        for fa in files {
            let g = graphs.entry(fa.crate_key.clone()).or_default();
            for f in fa.parsed.all_fns() {
                if !fa.in_test_span(f.tok) {
                    g.fns.insert(f.name.clone());
                }
            }
            for imp in &fa.parsed.impls {
                if imp.trait_name.as_deref() == Some("Protocol") && !fa.in_test_span(imp.tok) {
                    for f in &imp.fns {
                        g.seeds.insert(f.name.clone());
                    }
                }
            }
        }

        // Pass 2: call edges — an in-crate function name followed by
        // `(` inside a function body.
        for fa in files {
            let Some(g) = graphs.get_mut(&fa.crate_key) else {
                continue;
            };
            let toks = &fa.lexed.tokens;
            for f in fa.parsed.all_fns() {
                let Some((s, e)) = f.body else { continue };
                if fa.in_test_span(f.tok) {
                    continue;
                }
                let mut callees = BTreeSet::new();
                for i in s..e {
                    let t = &toks[i];
                    if t.kind != TokenKind::Ident {
                        continue;
                    }
                    let next_is_open = toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokenKind::Punct && n.text == "(");
                    if next_is_open && g.fns.contains(&t.text) {
                        callees.insert(t.text.clone());
                    }
                }
                if !callees.is_empty() {
                    g.calls.entry(f.name.clone()).or_default().extend(callees);
                }
            }
        }

        // Pass 3: BFS from seeds with predecessor tracking.
        for g in graphs.values_mut() {
            let mut pred: BTreeMap<String, Option<String>> = BTreeMap::new();
            let mut queue = VecDeque::new();
            for seed in &g.seeds {
                pred.insert(seed.clone(), None);
                queue.push_back(seed.clone());
            }
            while let Some(name) = queue.pop_front() {
                if let Some(callees) = g.calls.get(&name) {
                    for callee in callees.clone() {
                        if !pred.contains_key(&callee) {
                            pred.insert(callee.clone(), Some(name.clone()));
                            queue.push_back(callee);
                        }
                    }
                }
            }
            for name in pred.keys() {
                let mut path = vec![name.clone()];
                let mut cur = name;
                while let Some(Some(p)) = pred.get(cur) {
                    path.push(p.clone());
                    cur = p;
                }
                path.reverse();
                g.reach.insert(name.clone(), path.join(" → "));
            }
        }

        SymbolTable { graphs }
    }

    /// The call graph of one crate, if any of its files were analyzed.
    pub fn graph(&self, crate_key: &str) -> Option<&CrateGraph> {
        self.graphs.get(crate_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys_group_by_crate() {
        assert_eq!(
            crate_key_of("crates/avalanche/src/node.rs"),
            "crates/avalanche"
        );
        assert_eq!(crate_key_of("crates/sim/src/lib.rs"), "crates/sim");
        assert_eq!(crate_key_of("src/bin/runner.rs"), "");
    }

    #[test]
    fn aliases_resolve_to_last_segment() {
        let fa = FileAnalysis::analyze(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap as FastMap;\nuse std::sync::Arc;\n",
        );
        assert_eq!(fa.resolve_last("FastMap"), "HashMap");
        assert_eq!(fa.resolve_last("Arc"), "Arc");
        assert_eq!(fa.resolve_last("Unknown"), "Unknown");
    }

    #[test]
    fn reachability_follows_calls_from_protocol_impls() {
        let fa = FileAnalysis::analyze(
            "crates/x/src/node.rs",
            "struct Node;\n\
             impl Protocol for Node {\n\
                 fn on_message(&mut self) { self.dispatch(); }\n\
             }\n\
             impl Node {\n\
                 fn dispatch(&mut self) { try_commit(); }\n\
                 fn unrelated(&self) { helper(); }\n\
             }\n\
             fn try_commit() {}\n\
             fn helper() {}\n",
        );
        let table = SymbolTable::build(&[fa]);
        let g = table.graph("crates/x").expect("graph built");
        assert!(g.handler_reaches("on_message"));
        assert!(g.handler_reaches("dispatch"));
        assert!(g.handler_reaches("try_commit"));
        assert!(!g.handler_reaches("unrelated"));
        assert!(!g.handler_reaches("helper"));
        assert_eq!(
            g.example_path("try_commit"),
            Some("on_message → dispatch → try_commit")
        );
    }

    #[test]
    fn test_span_fns_do_not_seed_reachability() {
        let fa = FileAnalysis::analyze(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n\
                 struct T;\n\
                 impl Protocol for T { fn on_message(&mut self) { danger(); } }\n\
                 fn danger() {}\n\
             }\n",
        );
        let table = SymbolTable::build(&[fa]);
        let g = table.graph("crates/x").expect("graph built");
        assert!(g.seeds.is_empty());
        assert!(g.reach.is_empty());
    }

    #[test]
    fn self_patterns_resolve_via_enclosing_impl() {
        let fa = FileAnalysis::analyze(
            "crates/x/src/msg.rs",
            "enum Msg { A, B }\n\
             impl Msg {\n\
                 fn kind(&self) -> u8 {\n\
                     match self { Self::A => 0, Self::B => 1 }\n\
                 }\n\
             }\n",
        );
        let pats = fa.resolved_patterns();
        let names: Vec<(&str, &str)> = pats
            .iter()
            .map(|(o, v, _)| (o.as_str(), v.as_str()))
            .collect();
        assert!(names.contains(&("Msg", "A")), "{names:?}");
        assert!(names.contains(&("Msg", "B")), "{names:?}");
    }

    #[test]
    fn aliased_enum_patterns_resolve() {
        let fa = FileAnalysis::analyze(
            "crates/x/src/lib.rs",
            "use crate::msg::ChainMsg as M;\n\
             fn f(m: M) { match m { M::Ping => {}, M::Pong => {} } }\n",
        );
        let pats = fa.resolved_patterns();
        assert!(pats.iter().any(|(o, v, _)| o == "ChainMsg" && v == "Ping"));
        assert!(pats.iter().any(|(o, v, _)| o == "ChainMsg" && v == "Pong"));
    }
}
