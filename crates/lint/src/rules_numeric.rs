//! N-rules: numeric determinism.
//!
//! The determinism gate (fig3) asserts byte-identical artifacts across
//! runs, so any numeric operation whose result depends on float
//! comparison semantics or silently truncates a time/seed value is a
//! replay hazard. Three patterns over the token stream:
//!
//! | id    | bans |
//! |-------|------|
//! | N-001 | `==` / `!=` against a float literal, and `partial_cmp` |
//! | N-002 | truncating `as` casts of time/seed-named values |
//! | N-003 | raw `+` / `-` on `.as_micros()` / `.as_millis()` results |
//!
//! Deliberate scope limits, so the rules stay high-signal:
//!
//! * N-001 catches literal comparisons (`x == 1.0`) and `partial_cmp`;
//!   comparing two float *variables* is invisible to a token rule and
//!   left to review.
//! * N-002 only fires when a nearby identifier names a time or seed
//!   (`seed`, `time`, `micros`, `millis`, `nanos`, `now`) and the
//!   target type narrows below 64 bits — `len() as u32` stays legal.
//! * N-003 covers `+`/`-` only: scaling micros with `*`/`/` is how
//!   rates are computed and is fine; it is *offsets* done in raw
//!   integer space (instead of `SimTime`/`SimDuration` saturating
//!   arithmetic) that overflow or underflow silently.

use crate::lexer::{Token, TokenKind};

/// Integer/float types narrower than the 64-bit time/seed domain.
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
/// Identifier fragments that mark a value as time- or seed-typed.
const TIMEY: &[&str] = &["seed", "time", "micros", "millis", "nanos"];

fn punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

fn adjacent(tokens: &[Token], i: usize) -> bool {
    match (tokens.get(i), tokens.get(i + 1)) {
        (Some(a), Some(b)) => a.line == b.line && b.col == a.col + 1,
        _ => false,
    }
}

fn is_float(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokenKind::Float)
}

/// Per-token N-rule pass; called by the scanner for every non-test
/// token of a `[numeric]`-scoped file.
pub fn check_token(tokens: &[Token], i: usize, raw: &mut Vec<(usize, &'static str, String)>) {
    float_eq(tokens, i, raw);
    truncating_cast(tokens, i, raw);
    raw_time_arith(tokens, i, raw);
}

/// N-001: `x == 1.0`, `x != -0.5`, `a.partial_cmp(&b)`.
fn float_eq(tokens: &[Token], i: usize, raw: &mut Vec<(usize, &'static str, String)>) {
    if tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == "partial_cmp")
    {
        raw.push((
            i,
            "N-001",
            "`partial_cmp` on floats is not total".to_owned(),
        ));
        return;
    }
    // `==` is two adjacent `=`; `!=` is `!` then `=` adjacent.
    let (is_cmp, after) =
        if punct(tokens, i, '=') && punct(tokens, i + 1, '=') && adjacent(tokens, i) {
            // Rule out `x === y` style runs (not Rust) and `<= / >= / !=`
            // whose first char sits at i-1.
            let prev_is_op = i > 0
                && tokens.get(i - 1).is_some_and(|p| {
                    p.kind == TokenKind::Punct
                        && matches!(
                            p.text.as_str(),
                            "<" | ">" | "!" | "=" | "+" | "-" | "*" | "/"
                        )
                        && adjacent(tokens, i - 1)
                });
            (!prev_is_op, i + 2)
        } else if punct(tokens, i, '!') && punct(tokens, i + 1, '=') && adjacent(tokens, i) {
            (true, i + 2)
        } else {
            (false, 0)
        };
    if !is_cmp {
        return;
    }
    let lhs_float = i > 0 && is_float(tokens, i - 1);
    let rhs_float =
        is_float(tokens, after) || (punct(tokens, after, '-') && is_float(tokens, after + 1));
    if lhs_float || rhs_float {
        raw.push((
            i,
            "N-001",
            "float equality comparison is not replay-stable".to_owned(),
        ));
    }
}

/// N-002: `seed as u32`, `t.as_millis() as i32`, `now as f32` — a
/// narrowing cast within eight tokens of a time/seed-named value.
fn truncating_cast(tokens: &[Token], i: usize, raw: &mut Vec<(usize, &'static str, String)>) {
    if !tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == "as")
    {
        return;
    }
    let Some(target) = tokens.get(i + 1) else {
        return;
    };
    if target.kind != TokenKind::Ident || !NARROW.contains(&target.text.as_str()) {
        return;
    }
    let from = i.saturating_sub(8);
    for j in (from..i).rev() {
        let Some(t) = tokens.get(j) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let lower = t.text.to_ascii_lowercase();
        if lower == "now" || TIMEY.iter().any(|frag| lower.contains(frag)) {
            raw.push((
                i,
                "N-002",
                format!(
                    "truncating cast `as {}` near time/seed value `{}`",
                    target.text, t.text
                ),
            ));
            return;
        }
    }
}

/// N-003: `a.as_micros() + b`, `x - t.as_millis()` — raw offset
/// arithmetic on extracted micro/millisecond counts.
fn raw_time_arith(tokens: &[Token], i: usize, raw: &mut Vec<(usize, &'static str, String)>) {
    let Some(t) = tokens.get(i) else { return };
    if t.kind != TokenKind::Ident || (t.text != "as_micros" && t.text != "as_millis") {
        return;
    }
    if !(punct(tokens, i.wrapping_sub(1), '.')
        && punct(tokens, i + 1, '(')
        && punct(tokens, i + 2, ')'))
    {
        return;
    }
    // Forward: `….as_micros() + …` (a `-` that begins `->` is a return
    // arrow in a signature, not arithmetic).
    let after = i + 3;
    let forward = punct(tokens, after, '+')
        || (punct(tokens, after, '-')
            && !(punct(tokens, after + 1, '>') && adjacent(tokens, after)));
    // Backward: `… + x.as_micros()` for a simple one-identifier
    // receiver (longer receivers are caught by the forward check on
    // their own call).
    let backward = i >= 3
        && tokens
            .get(i - 2)
            .is_some_and(|r| r.kind == TokenKind::Ident)
        && (punct(tokens, i - 3, '+') || punct(tokens, i - 3, '-'));
    if forward || backward {
        raw.push((i, "N-003", format!("raw `+`/`-` on `.{}()` output", t.text)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str) -> Vec<&'static str> {
        let tokens = lex(src).tokens;
        let mut raw = Vec::new();
        for i in 0..tokens.len() {
            check_token(&tokens, i, &mut raw);
        }
        raw.into_iter().map(|(_, rule, _)| rule).collect()
    }

    #[test]
    fn n001_flags_float_literal_comparisons() {
        assert_eq!(findings("if x == 1.0 {}"), vec!["N-001"]);
        assert_eq!(findings("if 0.5 != y {}"), vec!["N-001"]);
        assert_eq!(findings("if x == -2.5e3 {}"), vec!["N-001"]);
        assert_eq!(findings("let o = a.partial_cmp(&b);"), vec!["N-001"]);
        // Integer comparisons, total_cmp and compound operators pass.
        assert!(findings("if x == 10 {}").is_empty());
        assert!(findings("let o = a.total_cmp(&b);").is_empty());
        assert!(findings("x += 1.0; if x <= 1.0 {}").is_empty());
        assert!(findings("if x >= 1.0 {}").is_empty());
    }

    #[test]
    fn n002_flags_narrowing_casts_of_timey_values() {
        assert_eq!(findings("let s = seed as u32;"), vec!["N-002"]);
        assert_eq!(findings("let m = t.as_millis() as i32;"), vec!["N-002"]);
        assert_eq!(findings("let f = start_time as f32;"), vec!["N-002"]);
        // Widening casts and non-time values pass.
        assert!(findings("let s = seed as u64;").is_empty());
        assert!(findings("let n = items.len() as u32;").is_empty());
    }

    #[test]
    fn n003_flags_raw_offset_arithmetic() {
        assert_eq!(
            findings("let mid = (a.as_micros() + b.as_micros()) / 2;"),
            vec!["N-003", "N-003"]
        );
        assert_eq!(findings("let d = x.as_millis() - 5;"), vec!["N-003"]);
        assert_eq!(findings("let d = 5 + x.as_millis();"), vec!["N-003"]);
        // Scaling and lone extraction pass; so does a return arrow.
        assert!(findings("let r = x.as_micros() * 2;").is_empty());
        assert!(findings("let u = x.as_micros();").is_empty());
        assert!(findings("fn f(x: T) -> u128 { x.as_micros() }").is_empty());
    }
}
