//! `lint.toml` — path scoping for the rule families.
//!
//! The build environment is offline and the vendor tree holds stubs,
//! so the linter parses the small TOML subset it needs by hand:
//! `[section]` headers, `key = "string"`, and `key = ["a", "b"]`
//! arrays (single- or multi-line), with `#` comments.
//!
//! ```toml
//! [paths]
//! skip = ["target", "vendor"]
//!
//! [determinism]          # D-rules
//! include = ["crates/sim/src"]
//!
//! [robustness]           # R-rules
//! include = ["crates/core/src", "crates/sim/src"]
//! bins = ["src/bin"]     # process::exit allowed under these
//!
//! [cache]                # S-rules
//! manifest = "crates/bench/src/engine.rs"
//! include = ["crates/core/src"]
//! ```

use std::fmt;

/// Parsed scoping configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    /// Path prefixes (relative to the root) never scanned.
    pub skip: Vec<String>,
    /// Path prefixes the determinism rules (D-*) apply to.
    pub determinism: Vec<String>,
    /// Path prefixes the robustness rules (R-*) apply to.
    pub robustness: Vec<String>,
    /// Path *infixes* under which `process::exit` is allowed (R-004).
    pub bins: Vec<String>,
    /// Path prefixes the serde/cache rules (S-*) apply to.
    pub cache: Vec<String>,
    /// File holding the `CACHE_SCHEMA_VERSION` manifest comments.
    pub manifest: Option<String>,
    /// Path prefixes the shard-safety rules (P-*) certify.
    pub shard: Vec<String>,
    /// Path prefixes E-001 discovers `impl Protocol` blocks in.
    pub exhaustive: Vec<String>,
    /// Explicit enum → cover-file obligations for E-002.
    pub covers: Vec<CoverSpec>,
    /// Path prefixes the numeric-determinism rules (N-*) apply to.
    pub numeric: Vec<String>,
}

/// One `[exhaustive] covers` triple, written in `lint.toml` as a
/// whitespace-separated string:
/// `"SimEvent crates/sim/src/trace.rs crates/core/src/observe.rs"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverSpec {
    /// The enum whose variants must all be covered.
    pub enum_name: String,
    /// The file defining the enum.
    pub def_file: String,
    /// The file that must hold a pattern for every variant.
    pub cover_file: String,
}

impl Default for Config {
    /// The scoping used when no `lint.toml` is found — mirrors the
    /// committed workspace configuration.
    fn default() -> Config {
        Config {
            skip: vec![
                "target".to_owned(),
                "vendor".to_owned(),
                ".git".to_owned(),
                "crates/lint/tests/fixtures".to_owned(),
                "results".to_owned(),
            ],
            determinism: vec![
                "crates/sim/src".to_owned(),
                "crates/algorand/src".to_owned(),
                "crates/aptos/src".to_owned(),
                "crates/avalanche/src".to_owned(),
                "crates/redbelly/src".to_owned(),
                "crates/solana/src".to_owned(),
                "crates/core/src".to_owned(),
                "crates/types/src".to_owned(),
                "crates/stats/src".to_owned(),
                "crates/adversary/src".to_owned(),
                "crates/workload/src".to_owned(),
            ],
            robustness: vec![
                "crates/core/src".to_owned(),
                "crates/sim/src".to_owned(),
                "crates/stats/src".to_owned(),
            ],
            bins: vec!["src/bin".to_owned()],
            cache: vec![
                "crates/core/src".to_owned(),
                "crates/sim/src".to_owned(),
                "crates/types/src".to_owned(),
                "crates/bench/src/engine.rs".to_owned(),
                "crates/stats/src".to_owned(),
                "crates/adversary/src".to_owned(),
                "crates/workload/src".to_owned(),
            ],
            manifest: Some("crates/bench/src/engine.rs".to_owned()),
            shard: vec![
                "crates/sim/src".to_owned(),
                "crates/algorand/src".to_owned(),
                "crates/aptos/src".to_owned(),
                "crates/avalanche/src".to_owned(),
                "crates/redbelly/src".to_owned(),
                "crates/solana/src".to_owned(),
                "crates/workload/src".to_owned(),
            ],
            exhaustive: vec![
                "crates/sim/src".to_owned(),
                "crates/algorand/src".to_owned(),
                "crates/aptos/src".to_owned(),
                "crates/avalanche/src".to_owned(),
                "crates/redbelly/src".to_owned(),
                "crates/solana/src".to_owned(),
            ],
            covers: vec![
                CoverSpec {
                    enum_name: "SimEvent".to_owned(),
                    def_file: "crates/sim/src/trace.rs".to_owned(),
                    cover_file: "crates/core/src/observe.rs".to_owned(),
                },
                CoverSpec {
                    enum_name: "SimEvent".to_owned(),
                    def_file: "crates/sim/src/trace.rs".to_owned(),
                    cover_file: "crates/core/src/diagnose.rs".to_owned(),
                },
            ],
            numeric: vec![
                "crates/sim/src".to_owned(),
                "crates/algorand/src".to_owned(),
                "crates/aptos/src".to_owned(),
                "crates/avalanche/src".to_owned(),
                "crates/redbelly/src".to_owned(),
                "crates/solana/src".to_owned(),
                "crates/core/src".to_owned(),
                "crates/types/src".to_owned(),
                "crates/stats/src".to_owned(),
                "crates/adversary/src".to_owned(),
                "crates/workload/src".to_owned(),
            ],
        }
    }
}

/// A `lint.toml` the parser could not make sense of.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let mut config = Config {
            skip: Vec::new(),
            determinism: Vec::new(),
            robustness: Vec::new(),
            bins: Vec::new(),
            cache: Vec::new(),
            manifest: None,
            shard: Vec::new(),
            exhaustive: Vec::new(),
            covers: Vec::new(),
            numeric: Vec::new(),
        };
        let mut section = String::new();
        let lines: Vec<&str> = src.lines().collect();
        let mut i = 0usize;
        while i < lines.len() {
            let line_no = i + 1;
            let line = strip_comment(lines[i]).trim().to_owned();
            i += 1;
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_owned();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = value` or `[section]`, got `{line}`"),
                });
            };
            let key = key.trim();
            let mut value = value.trim().to_owned();
            // Multi-line array: accumulate until the closing bracket.
            if value.starts_with('[') {
                while !value.contains(']') && i < lines.len() {
                    value.push(' ');
                    value.push_str(strip_comment(lines[i]).trim());
                    i += 1;
                }
            }
            apply(&mut config, &section, key, &value, line_no)?;
        }
        Ok(config)
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` outside quotes starts a comment.
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

fn apply(
    config: &mut Config,
    section: &str,
    key: &str,
    value: &str,
    line: usize,
) -> Result<(), ConfigError> {
    let slot: Option<&mut Vec<String>> = match (section, key) {
        ("paths", "skip") => Some(&mut config.skip),
        ("determinism", "include") => Some(&mut config.determinism),
        ("robustness", "include") => Some(&mut config.robustness),
        ("robustness", "bins") => Some(&mut config.bins),
        ("cache", "include") => Some(&mut config.cache),
        ("cache", "manifest") => {
            config.manifest = Some(parse_string(value, line)?);
            return Ok(());
        }
        ("shard", "include") => Some(&mut config.shard),
        ("exhaustive", "include") => Some(&mut config.exhaustive),
        ("exhaustive", "covers") => {
            config.covers = parse_covers(value, line)?;
            return Ok(());
        }
        ("numeric", "include") => Some(&mut config.numeric),
        _ => None,
    };
    match slot {
        Some(slot) => {
            *slot = parse_array(value, line)?;
            Ok(())
        }
        None => Err(ConfigError {
            line,
            message: format!("unknown key `{key}` in section `[{section}]`"),
        }),
    }
}

fn parse_string(value: &str, line: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected a quoted string, got `{value}`"),
        })
}

/// Parses `covers` entries: each array element is a three-field
/// whitespace-separated string, `"Enum def_file cover_file"`.
fn parse_covers(value: &str, line: usize) -> Result<Vec<CoverSpec>, ConfigError> {
    let mut out = Vec::new();
    for entry in parse_array(value, line)? {
        let fields: Vec<&str> = entry.split_whitespace().collect();
        let [enum_name, def_file, cover_file] = fields.as_slice() else {
            return Err(ConfigError {
                line,
                message: format!(
                    "covers entry `{entry}` must be `\"Enum def_file cover_file\"` \
                     (three whitespace-separated fields)"
                ),
            });
        };
        out.push(CoverSpec {
            enum_name: (*enum_name).to_owned(),
            def_file: (*def_file).to_owned(),
            cover_file: (*cover_file).to_owned(),
        });
    }
    Ok(out)
}

fn parse_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected `[\"…\", …]`, got `{value}`"),
        })?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(item, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_arrays() {
        let config = Config::parse(
            "[paths]\nskip = [\"target\", \"vendor\"]  # build output\n\n\
             [determinism]\ninclude = [\"crates/sim/src\"]\n\n\
             [robustness]\ninclude = []\nbins = [\"src/bin\"]\n\n\
             [cache]\nmanifest = \"crates/bench/src/engine.rs\"\ninclude = [\"crates/core/src\"]\n",
        )
        .expect("parses");
        assert_eq!(config.skip, vec!["target", "vendor"]);
        assert_eq!(config.determinism, vec!["crates/sim/src"]);
        assert!(config.robustness.is_empty());
        assert_eq!(config.bins, vec!["src/bin"]);
        assert_eq!(
            config.manifest.as_deref(),
            Some("crates/bench/src/engine.rs")
        );
    }

    #[test]
    fn multi_line_arrays_accumulate() {
        let config = Config::parse(
            "[paths]\nskip = [\n    \"target\",  # comment inside\n    \"vendor\",\n]\n",
        )
        .expect("parses");
        assert_eq!(config.skip, vec!["target", "vendor"]);
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let config = Config::parse("[paths]\nskip = [\"with#hash\"]\n").expect("parses");
        assert_eq!(config.skip, vec!["with#hash"]);
    }

    #[test]
    fn unknown_keys_are_rejected_with_line_numbers() {
        let err = Config::parse("[paths]\nbogus = \"x\"\n").expect_err("rejects");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn committed_default_matches_parsed_repo_config() {
        // The Default impl documents the committed lint.toml; if the
        // two drift, the fallback silently lints the wrong scopes.
        let src = include_str!("../../../lint.toml");
        let parsed = Config::parse(src).expect("repo lint.toml parses");
        assert_eq!(parsed, Config::default());
    }

    #[test]
    fn covers_triples_parse_and_malformed_ones_fail() {
        let config = Config::parse(
            "[exhaustive]\ncovers = [\"SimEvent crates/sim/src/trace.rs crates/core/src/observe.rs\"]\n",
        )
        .expect("parses");
        assert_eq!(
            config.covers,
            vec![CoverSpec {
                enum_name: "SimEvent".to_owned(),
                def_file: "crates/sim/src/trace.rs".to_owned(),
                cover_file: "crates/core/src/observe.rs".to_owned(),
            }]
        );
        let err = Config::parse("[exhaustive]\ncovers = [\"only-two fields\"]\n")
            .expect_err("rejects two-field entry");
        assert!(err.message.contains("three whitespace-separated fields"));
    }
}
