//! `stabl-lint` CLI.
//!
//! ```text
//! stabl-lint [--root DIR] [--config FILE] [--format human|json]
//!            [--baseline FILE] [--no-baseline] [--write-baseline]
//!            [--show-suppressed] [--list-rules]
//! ```
//!
//! `--write-baseline` renders the current unsuppressed error findings
//! to the baseline file (the ratchet) and exits 0 — it is how debt is
//! recorded once and how a stale baseline is shrunk after a fix.
//!
//! Exit codes: 0 clean, 1 unsuppressed errors, 2 usage or I/O error.

use stabl_lint::baseline::Baseline;
use stabl_lint::{Config, Engine, RULES};
use std::path::PathBuf;
use std::process;

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    json: bool,
    show_suppressed: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        json: false,
        show_suppressed: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?))
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?))
            }
            "--no-baseline" => args.no_baseline = true,
            "--write-baseline" => args.write_baseline = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format expects human|json, got {other:?}")),
            },
            "--show-suppressed" => args.show_suppressed = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "stabl-lint [--root DIR] [--config FILE] [--format human|json] \
                     [--baseline FILE] [--no-baseline] [--write-baseline] \
                     [--show-suppressed] [--list-rules]"
                );
                process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Walks up from the current directory to the first one holding a
/// `lint.toml` or a `.git` marker.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("lint.toml").is_file() || dir.join(".git").exists() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("stabl-lint: {msg}");
            process::exit(2);
        }
    };

    if args.list_rules {
        for rule in RULES {
            println!("{} ({}): {}", rule.id, rule.severity.name(), rule.summary);
            println!("    fix: {}", rule.hint);
        }
        return;
    }

    let root = args.root.unwrap_or_else(find_root);
    let mut engine = match &args.config {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("stabl-lint: cannot read {}: {e}", path.display());
                    process::exit(2);
                }
            };
            match Config::parse(&src) {
                Ok(config) => Engine::new(&root, config),
                Err(e) => {
                    eprintln!("stabl-lint: {e}");
                    process::exit(2);
                }
            }
        }
        None => match Engine::from_root(&root) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("stabl-lint: {e}");
                process::exit(2);
            }
        },
    };
    if args.no_baseline || args.write_baseline {
        // --write-baseline scans without the old ratchet so the new
        // file records the true current debt.
        engine = engine.without_baseline();
    } else if let Some(path) = &args.baseline {
        engine = engine.with_baseline(path);
    }

    let report = match engine.run() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("stabl-lint: scan failed: {e}");
            process::exit(2);
        }
    };

    if args.write_baseline {
        let baseline = Baseline::from_diagnostics(report.diagnostics.iter());
        let path = args
            .baseline
            .unwrap_or_else(|| root.join("lint-baseline.json"));
        if let Err(e) = std::fs::write(&path, baseline.render()) {
            eprintln!("stabl-lint: cannot write {}: {e}", path.display());
            process::exit(2);
        }
        println!(
            "stabl-lint: wrote {} ({} entries)",
            path.display(),
            baseline.entries.len()
        );
        return;
    }

    if args.json {
        print!("{}", report.json());
    } else {
        print!("{}", report.human(args.show_suppressed));
    }
    if report.errors().next().is_some() {
        process::exit(1);
    }
}
