//! A small hand-rolled Rust lexer.
//!
//! The linter cannot use `syn` (the vendor tree holds offline stubs
//! only), and it does not need a full parse: every rule in
//! [`crate::rules`] is a pattern over a *token stream* with comments
//! and string/char literals correctly stripped. The hard part of that
//! job — and the part a grep-based linter gets wrong — is exactly what
//! this module handles:
//!
//! * line comments, *nested* block comments and doc comments
//!   (`Instant::now` inside a comment is not a violation);
//! * string literals, including raw strings `r#"…"#` with arbitrary
//!   `#` depth, and byte strings (`"HashMap"` in a string is not a
//!   violation);
//! * lifetimes vs. char literals (`'a` vs. `'a'` vs. `'\n'`);
//! * numeric literals with underscores, radix prefixes and suffixes
//!   (so `0..5` does not produce a bogus float).
//!
//! Comments are not discarded: they are returned alongside the tokens
//! because suppressions (`// stabl-lint: allow(rule, reason)`) and the
//! cache-schema manifest live in comments.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A single punctuation character (`:`, `.`, `!`, `{`, …).
    Punct,
    /// An integer literal (`42`, `0xff_u32`).
    Int,
    /// A float literal (`1.5`, `1e-3`).
    Float,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A char or byte-char literal (`'a'`, `b'\n'`).
    Char,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Str`] the *delimiters and
    /// contents are dropped* (rules never need them); for every other
    /// kind this is the source slice.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

/// One comment (line, block or doc) with its 1-based position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Text between the comment delimiters, untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` unless the
    /// comment is a multi-line block comment).
    pub end_line: u32,
}

/// The result of lexing one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool, out: &mut String) {
        while let Some(c) = self.peek() {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments.
///
/// The lexer is total: malformed input (an unterminated string, a lone
/// backslash) never panics — it degrades to consuming the rest of the
/// file as the current literal, which is the right behaviour for a
/// linter that must keep going.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek_at(1) == Some('/') {
            lex_line_comment(&mut cur, &mut out, line);
        } else if c == '/' && cur.peek_at(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out, line);
        } else if c == '"' {
            lex_string(&mut cur);
            push(&mut out, TokenKind::Str, String::new(), line, col);
        } else if c == 'r' && is_raw_string_ahead(&cur, 1) {
            cur.bump(); // r
            lex_raw_string(&mut cur);
            push(&mut out, TokenKind::Str, String::new(), line, col);
        } else if c == 'b' && (cur.peek_at(1) == Some('"') || cur.peek_at(1) == Some('\'')) {
            cur.bump(); // b
            if cur.peek() == Some('"') {
                lex_string(&mut cur);
                push(&mut out, TokenKind::Str, String::new(), line, col);
            } else {
                let text = lex_char(&mut cur);
                push(&mut out, TokenKind::Char, text, line, col);
            }
        } else if c == 'b' && cur.peek_at(1) == Some('r') && is_raw_string_ahead(&cur, 2) {
            cur.bump(); // b
            cur.bump(); // r
            lex_raw_string(&mut cur);
            push(&mut out, TokenKind::Str, String::new(), line, col);
        } else if c == 'r'
            && cur.peek_at(1) == Some('#')
            && cur.peek_at(2).is_some_and(is_ident_start)
        {
            // Raw identifier r#type.
            let mut text = String::new();
            cur.bump(); // r
            cur.bump(); // #
            cur.eat_while(is_ident_continue, &mut text);
            push(&mut out, TokenKind::Ident, text, line, col);
        } else if c == '\'' {
            lex_lifetime_or_char(&mut cur, &mut out, line, col);
        } else if is_ident_start(c) {
            let mut text = String::new();
            cur.eat_while(is_ident_continue, &mut text);
            push(&mut out, TokenKind::Ident, text, line, col);
        } else if c.is_ascii_digit() {
            lex_number(&mut cur, &mut out, line, col);
        } else {
            cur.bump();
            push(&mut out, TokenKind::Punct, c.to_string(), line, col);
        }
    }
    out
}

fn push(out: &mut Lexed, kind: TokenKind, text: String, line: u32, col: u32) {
    out.tokens.push(Token {
        kind,
        text,
        line,
        col,
    });
}

/// `r`, `r#`, `r##`… followed by `"` starting at offset `from`
/// (offset of the char after the `r` / `br` prefix start).
fn is_raw_string_ahead(cur: &Cursor, from: usize) -> bool {
    let mut ahead = from;
    while cur.peek_at(ahead) == Some('#') {
        ahead += 1;
    }
    cur.peek_at(ahead) == Some('"')
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump(); // /
    cur.bump(); // /
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: line,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1u32;
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek_at(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek_at(1) == Some('/') {
            depth -= 1;
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(c);
            cur.bump();
        }
    }
    let end_line = cur.line;
    out.comments.push(Comment {
        text,
        line,
        end_line,
    });
}

/// Consumes a `"…"` string starting at the opening quote.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // "
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // whatever is escaped, including " and \
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string starting at the `#`s or the quote (the `r` /
/// `br` prefix is already consumed).
fn lex_raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // "
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            for _ in 0..hashes {
                if cur.peek() == Some('#') {
                    cur.bump();
                } else {
                    continue 'outer;
                }
            }
            break;
        }
    }
}

/// Consumes a `'…'` char literal starting at the quote; returns its
/// source text.
fn lex_char(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push('\'');
    cur.bump(); // '
    while let Some(c) = cur.bump() {
        text.push(c);
        match c {
            '\\' => {
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            '\'' => break,
            _ => {}
        }
    }
    text
}

/// Distinguishes `'a` / `'static` (lifetime) from `'a'` / `'\n'`
/// (char literal): an escape or a quote right after the ident run
/// means char.
fn lex_lifetime_or_char(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    if cur.peek_at(1) == Some('\\') {
        let text = lex_char(cur);
        push(out, TokenKind::Char, text, line, col);
        return;
    }
    // `'x` where x is not an ident char (e.g. `'('`? invalid Rust, or
    // `' '`): treat as char literal.
    if !cur.peek_at(1).is_some_and(is_ident_start) {
        let text = lex_char(cur);
        push(out, TokenKind::Char, text, line, col);
        return;
    }
    // Scan the ident run after the quote.
    let mut ahead = 1usize;
    while cur.peek_at(ahead).is_some_and(is_ident_continue) {
        ahead += 1;
    }
    if cur.peek_at(ahead) == Some('\'') {
        let text = lex_char(cur);
        push(out, TokenKind::Char, text, line, col);
    } else {
        let mut text = String::from('\'');
        cur.bump(); // '
        cur.eat_while(is_ident_continue, &mut text);
        push(out, TokenKind::Lifetime, text, line, col);
    }
}

fn lex_number(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    let mut float = false;
    if cur.peek() == Some('0') && matches!(cur.peek_at(1), Some('x') | Some('o') | Some('b')) {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        cur.eat_while(|c| c.is_ascii_hexdigit() || c == '_', &mut text);
    } else {
        cur.eat_while(|c| c.is_ascii_digit() || c == '_', &mut text);
        // `1.5` is a float; `0..5` is an int followed by a range; `1.f()`
        // (method call on a literal) keeps the int.
        if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            text.push('.');
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == '_', &mut text);
        }
        if matches!(cur.peek(), Some('e') | Some('E'))
            && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(cur.peek_at(1), Some('+') | Some('-'))
                    && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
        {
            float = true;
            text.push(cur.bump().unwrap_or('e'));
            if matches!(cur.peek(), Some('+') | Some('-')) {
                text.push(cur.bump().unwrap_or('+'));
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == '_', &mut text);
        }
    }
    // Type suffix (u32, f64, usize…).
    let mut suffix = String::new();
    cur.eat_while(is_ident_continue, &mut suffix);
    if suffix.starts_with('f') {
        float = true;
    }
    text.push_str(&suffix);
    let kind = if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    };
    push(out, kind, text, line, col);
}

/// Computes the token-index spans (inclusive start, exclusive end)
/// covered by `#[cfg(test)]` items — test modules, test functions —
/// so rules can skip test code.
///
/// Heuristics, documented and sufficient for this workspace:
/// an attribute whose content mentions both `cfg` and `test` and does
/// *not* mention `not` marks the following item (after any further
/// attributes) as test code, up to its matching closing brace or
/// terminating semicolon.
pub fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_punct(tokens, i, '#') || !is_punct(tokens, i + 1, '[') {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, i + 1, '[', ']') else {
            break;
        };
        let content = &tokens[i + 2..close];
        let mentions = |name: &str| {
            content
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == name)
        };
        if !(mentions("cfg") && mentions("test") && !mentions("not")) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes between #[cfg(test)] and the item.
        let mut j = close + 1;
        while is_punct(tokens, j, '#') && is_punct(tokens, j + 1, '[') {
            match matching(tokens, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => return spans,
            }
        }
        // The item ends at the matching brace of its first `{`, or at a
        // top-level `;` (e.g. `mod tests;`).
        let mut k = j;
        let mut end = tokens.len();
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct && t.text == "{" {
                end = matching(tokens, k, '{', '}').map_or(tokens.len(), |c| c + 1);
                break;
            }
            if t.kind == TokenKind::Punct && t.text == ";" {
                end = k + 1;
                break;
            }
            k += 1;
        }
        spans.push((i, end));
        i = end;
    }
    spans
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

/// Index of the delimiter matching `tokens[open]` (which must be
/// `open_c`), respecting nesting.
fn matching(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i64;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        if t.text.len() == 1 && t.text.starts_with(open_c) {
            depth += 1;
        } else if t.text.len() == 1 && t.text.starts_with(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}
