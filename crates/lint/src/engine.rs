//! Workspace walking, scope resolution, manifest diffing and output.

use crate::config::Config;
use crate::lexer::lex;
use crate::rules::{scan_file, Diagnostic, FileScope, Severity};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The engine: a root directory plus a [`Config`].
pub struct Engine {
    root: PathBuf,
    config: Config,
}

/// Everything one lint run produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule); suppressed
    /// findings are included and marked.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Unsuppressed error-severity findings — what fails the build.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.suppressed.is_none() && d.severity == Severity::Error)
    }

    /// Unsuppressed warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.suppressed.is_none() && d.severity == Severity::Warning)
    }

    /// Suppressed findings.
    pub fn suppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_some())
    }

    /// `file:line:col: severity [rule] message` lines, one per
    /// unsuppressed finding, plus a summary line.
    pub fn human(&self, show_suppressed: bool) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            match &d.suppressed {
                None => {
                    out.push_str(&format!(
                        "{}:{}:{}: {} [{}] {}\n    hint: {}\n",
                        d.file,
                        d.line,
                        d.col,
                        d.severity.name(),
                        d.rule,
                        d.message,
                        d.hint
                    ));
                }
                Some(reason) if show_suppressed => {
                    out.push_str(&format!(
                        "{}:{}:{}: suppressed [{}] {} (reason: {})\n",
                        d.file, d.line, d.col, d.rule, d.message, reason
                    ));
                }
                Some(_) => {}
            }
        }
        out.push_str(&format!(
            "stabl-lint: {} files scanned, {} errors, {} warnings, {} suppressed\n",
            self.files_scanned,
            self.errors().count(),
            self.warnings().count(),
            self.suppressed().count(),
        ));
        out
    }

    /// The full report as a JSON document (hand-emitted; the linter is
    /// dependency-free by design).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors().count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings().count()));
        out.push_str(&format!(
            "  \"suppressed\": {},\n",
            self.suppressed().count()
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(d.rule)));
            out.push_str(&format!("\"severity\": {}, ", json_str(d.severity.name())));
            out.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"col\": {}, ", d.col));
            out.push_str(&format!("\"message\": {}, ", json_str(&d.message)));
            out.push_str(&format!("\"hint\": {}, ", json_str(d.hint)));
            match &d.suppressed {
                Some(reason) => out.push_str(&format!("\"suppressed\": {}}}", json_str(reason))),
                None => out.push_str("\"suppressed\": null}"),
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Engine {
    /// Creates an engine for `root` with the given config.
    pub fn new(root: impl Into<PathBuf>, config: Config) -> Engine {
        Engine {
            root: root.into(),
            config,
        }
    }

    /// Creates an engine for `root`, loading `lint.toml` from it when
    /// present and falling back to [`Config::default`].
    pub fn from_root(root: impl Into<PathBuf>) -> Result<Engine, String> {
        let root = root.into();
        let config_path = root.join("lint.toml");
        let config = match fs::read_to_string(&config_path) {
            Ok(src) => Config::parse(&src).map_err(|e| e.to_string())?,
            Err(_) => Config::default(),
        };
        Ok(Engine::new(root, config))
    }

    /// Runs the lint pass over every `.rs` file under the root.
    pub fn run(&self) -> io::Result<Report> {
        let mut files = Vec::new();
        collect_rs_files(&self.root, &self.root, &self.config.skip, &mut files)?;
        files.sort();

        let manifest = self.load_manifest();
        let manifest_names = manifest.as_ref().map(|(names, _, _)| names);

        let mut report = Report::default();
        let mut defined_serialize: BTreeSet<String> = BTreeSet::new();
        for rel in &files {
            let path = self.root.join(rel);
            let src = fs::read_to_string(&path)?;
            let scope = self.scope_of(rel);
            let scan = scan_file(rel, &src, scope, manifest_names);
            for (name, _, _) in &scan.serialize_types {
                defined_serialize.insert(name.clone());
            }
            report.diagnostics.extend(scan.diagnostics);
            report.files_scanned += 1;
        }

        // Manifest health: S-002 (stale entries) and S-003 (no marker).
        match &manifest {
            Some((names, file, line)) => {
                for name in names {
                    if !defined_serialize.contains(name) {
                        report.diagnostics.push(Diagnostic::new(
                            "S-002",
                            file,
                            *line,
                            1,
                            format!("manifest entry `{name}` has no Serialize impl in scope"),
                        ));
                    }
                }
            }
            None => {
                if let Some(path) = &self.config.manifest {
                    report.diagnostics.push(Diagnostic::new(
                        "S-003",
                        path,
                        1,
                        1,
                        "no `stabl-lint: cache-schema:` marker found in the manifest file"
                            .to_owned(),
                    ));
                }
            }
        }

        report.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        Ok(report)
    }

    /// Reads the cache-schema manifest (type names, manifest rel path,
    /// line of the first marker) from the configured manifest file.
    fn load_manifest(&self) -> Option<(BTreeSet<String>, String, u32)> {
        let rel = self.config.manifest.clone()?;
        let src = fs::read_to_string(self.root.join(&rel)).ok()?;
        let lexed = lex(&src);
        let mut names = BTreeSet::new();
        let mut first_line = None;
        for comment in &lexed.comments {
            let Some(rest) = comment.text.split("stabl-lint:").nth(1) else {
                continue;
            };
            let Some(list) = rest.trim().strip_prefix("cache-schema:") else {
                continue;
            };
            first_line.get_or_insert(comment.line);
            for name in list.split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    names.insert(name.to_owned());
                }
            }
        }
        first_line.map(|line| (names, rel, line))
    }

    fn scope_of(&self, rel: &str) -> FileScope {
        let in_any = |prefixes: &[String]| prefixes.iter().any(|p| rel.starts_with(p.as_str()));
        let is_test_path = rel.contains("/tests/")
            || rel.starts_with("tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/")
            || rel.starts_with("examples/");
        let is_bin = self
            .config
            .bins
            .iter()
            .any(|b| rel.contains(&format!("/{b}/")) || rel.contains(&format!("{b}/")));
        if is_test_path {
            return FileScope::default();
        }
        FileScope {
            determinism: in_any(&self.config.determinism),
            robustness: in_any(&self.config.robustness) && !is_bin,
            exit_banned: !is_bin,
            cache: in_any(&self.config.cache),
        }
    }
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    skip: &[String],
    out: &mut Vec<String>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = match path.strip_prefix(root) {
            Ok(rel) => rel.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if skip
            .iter()
            .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
        {
            continue;
        }
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with('.'))
            {
                continue;
            }
            collect_rs_files(root, &path, skip, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}
