//! Workspace walking, scope resolution, the two-pass semantic run,
//! manifest diffing, baseline ratcheting, certification and output.
//!
//! The v2 run has two passes. Pass 1 reads, lexes and parses every
//! file into a [`FileAnalysis`] and builds the per-crate
//! [`SymbolTable`] (call graphs, Protocol-handler reachability). Pass
//! 2 runs the per-file token rules with that context, then the
//! cross-file rules (E-*, S-002/S-003), applies leftover inline
//! suppressions to cross-file findings, sorts, applies the
//! `lint-baseline.json` ratchet, and finally computes per-crate
//! shard-safety certifications from the P-rule findings.

use crate::baseline::Baseline;
use crate::config::Config;
use crate::lexer::lex;
use crate::rules::{flush_pending, scan_analysis, Diagnostic, FileScope, Severity};
use crate::rules_exhaustive;
use crate::symbols::{crate_key_of, FileAnalysis, SymbolTable};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The engine: a root directory plus a [`Config`] and an optional
/// baseline ratchet.
pub struct Engine {
    root: PathBuf,
    config: Config,
    baseline_path: Option<PathBuf>,
}

/// The shard-safety verdict for one `[shard]`-scoped crate: the
/// machine-checked precondition for ROADMAP item 2's logical-process
/// sharding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certification {
    /// Crate key (`crates/avalanche`).
    pub crate_key: String,
    /// Unsuppressed, unbaselined P-rule findings — any of these voids
    /// the certificate.
    pub findings: usize,
    /// P-rule findings tolerated by the baseline (still debt; also
    /// voids the certificate).
    pub baselined: usize,
    /// P-rule findings suppressed inline with a documented reason —
    /// the only accepted escape.
    pub suppressed: usize,
    /// `true` when the crate is certified shard-safe.
    pub certified: bool,
}

/// Everything one lint run produced.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule); suppressed
    /// findings are included and marked.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-crate shard-safety verdicts, sorted by crate key.
    pub certifications: Vec<Certification>,
}

impl Report {
    /// Unsuppressed, unbaselined error-severity findings — what fails
    /// the build.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.suppressed.is_none() && !d.baselined && d.severity == Severity::Error)
    }

    /// Unsuppressed warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.suppressed.is_none() && !d.baselined && d.severity == Severity::Warning)
    }

    /// Suppressed findings.
    pub fn suppressed(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.suppressed.is_some())
    }

    /// Findings tolerated by the committed baseline (known debt).
    pub fn baselined(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.suppressed.is_none() && d.baselined)
    }

    /// `file:line:col: severity [rule] message` lines, one per
    /// unsuppressed finding, plus a summary line.
    pub fn human(&self, show_suppressed: bool) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            match &d.suppressed {
                None if d.baselined => {
                    if show_suppressed {
                        out.push_str(&format!(
                            "{}:{}:{}: baselined [{}] {}\n",
                            d.file, d.line, d.col, d.rule, d.message
                        ));
                    }
                }
                None => {
                    out.push_str(&format!(
                        "{}:{}:{}: {} [{}] {}\n    hint: {}\n",
                        d.file,
                        d.line,
                        d.col,
                        d.severity.name(),
                        d.rule,
                        d.message,
                        d.hint
                    ));
                }
                Some(reason) if show_suppressed => {
                    out.push_str(&format!(
                        "{}:{}:{}: suppressed [{}] {} (reason: {})\n",
                        d.file, d.line, d.col, d.rule, d.message, reason
                    ));
                }
                Some(_) => {}
            }
        }
        for c in &self.certifications {
            let verdict = if c.certified {
                "CERTIFIED shard-safe"
            } else {
                "NOT shard-safe"
            };
            out.push_str(&format!(
                "shard-safety: {} {} ({} findings, {} baselined, {} suppressed)\n",
                c.crate_key, verdict, c.findings, c.baselined, c.suppressed
            ));
        }
        out.push_str(&format!(
            "stabl-lint: {} files scanned, {} errors, {} warnings, {} suppressed, {} baselined\n",
            self.files_scanned,
            self.errors().count(),
            self.warnings().count(),
            self.suppressed().count(),
            self.baselined().count(),
        ));
        out
    }

    /// The full report as a JSON document (hand-emitted; the linter is
    /// dependency-free by design).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 2,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors().count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings().count()));
        out.push_str(&format!(
            "  \"suppressed\": {},\n",
            self.suppressed().count()
        ));
        out.push_str(&format!("  \"baselined\": {},\n", self.baselined().count()));
        out.push_str("  \"certifications\": [");
        for (i, c) in self.certifications.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"crate\": {}, ", json_str(&c.crate_key)));
            out.push_str(&format!("\"findings\": {}, ", c.findings));
            out.push_str(&format!("\"baselined\": {}, ", c.baselined));
            out.push_str(&format!("\"suppressed\": {}, ", c.suppressed));
            out.push_str(&format!("\"certified\": {}}}", c.certified));
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(d.rule)));
            out.push_str(&format!("\"severity\": {}, ", json_str(d.severity.name())));
            out.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"col\": {}, ", d.col));
            out.push_str(&format!("\"message\": {}, ", json_str(&d.message)));
            out.push_str(&format!("\"hint\": {}, ", json_str(d.hint)));
            out.push_str(&format!("\"baselined\": {}, ", d.baselined));
            match &d.suppressed {
                Some(reason) => out.push_str(&format!("\"suppressed\": {}}}", json_str(reason))),
                None => out.push_str("\"suppressed\": null}"),
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Engine {
    /// Creates an engine for `root` with the given config and no
    /// baseline ratchet.
    pub fn new(root: impl Into<PathBuf>, config: Config) -> Engine {
        Engine {
            root: root.into(),
            config,
            baseline_path: None,
        }
    }

    /// Creates an engine for `root`, loading `lint.toml` from it when
    /// present (falling back to [`Config::default`]) and picking up a
    /// committed `lint-baseline.json` when one exists.
    pub fn from_root(root: impl Into<PathBuf>) -> Result<Engine, String> {
        let root = root.into();
        let config_path = root.join("lint.toml");
        let config = match fs::read_to_string(&config_path) {
            Ok(src) => Config::parse(&src).map_err(|e| e.to_string())?,
            Err(_) => Config::default(),
        };
        let mut engine = Engine::new(root, config);
        let baseline = engine.root.join("lint-baseline.json");
        if baseline.is_file() {
            engine.baseline_path = Some(baseline);
        }
        Ok(engine)
    }

    /// Uses `path` as the baseline ratchet file.
    pub fn with_baseline(mut self, path: impl Into<PathBuf>) -> Engine {
        self.baseline_path = Some(path.into());
        self
    }

    /// Disables the baseline ratchet (every finding is a live error).
    pub fn without_baseline(mut self) -> Engine {
        self.baseline_path = None;
        self
    }

    /// Runs the two-pass lint over every `.rs` file under the root.
    pub fn run(&self) -> io::Result<Report> {
        let mut files = Vec::new();
        collect_rs_files(&self.root, &self.root, &self.config.skip, &mut files)?;
        files.sort();

        let manifest = self.load_manifest();
        let manifest_names = manifest.as_ref().map(|(names, _, _)| names);

        // Pass 1: lex + parse everything, then build per-crate symbol
        // tables (the P-rules need handler reachability, the E-rules
        // need every crate's pattern sets).
        let mut analyses = Vec::with_capacity(files.len());
        for rel in &files {
            let src = fs::read_to_string(self.root.join(rel))?;
            analyses.push(FileAnalysis::analyze(rel, &src));
        }
        let symbols = SymbolTable::build(&analyses);

        // Pass 2: per-file rules with symbol context. Unused inline
        // suppressions are held back per file so cross-file findings
        // anchored there can still consume them.
        let mut report = Report::default();
        let mut defined_serialize: BTreeSet<String> = BTreeSet::new();
        let mut scans = Vec::with_capacity(analyses.len());
        for fa in &analyses {
            let scope = self.scope_of(&fa.rel);
            let scan = scan_analysis(fa, scope, manifest_names, symbols.graph(&fa.crate_key));
            for (name, _, _) in &scan.serialize_types {
                defined_serialize.insert(name.clone());
            }
            report.files_scanned += 1;
            scans.push(scan);
        }

        // Cross-file rules: exhaustiveness drift and manifest health.
        let mut cross: Vec<Diagnostic> = Vec::new();
        rules_exhaustive::check(
            &analyses,
            &self.config.exhaustive,
            &self.config.covers,
            &mut cross,
        );
        match &manifest {
            Some((names, file, line)) => {
                for name in names {
                    if !defined_serialize.contains(name) {
                        cross.push(Diagnostic::new(
                            "S-002",
                            file,
                            *line,
                            1,
                            format!("manifest entry `{name}` has no Serialize impl in scope"),
                        ));
                    }
                }
            }
            None => {
                if let Some(path) = &self.config.manifest {
                    cross.push(Diagnostic::new(
                        "S-003",
                        path,
                        1,
                        1,
                        "no `stabl-lint: cache-schema:` marker found in the manifest file"
                            .to_owned(),
                    ));
                }
            }
        }

        // Offer each file's leftover suppressions to cross-file
        // findings anchored in it, then flush what remains to X-002.
        for (fa, scan) in analyses.iter().zip(scans.iter_mut()) {
            for d in cross.iter_mut().filter(|d| d.file == fa.rel) {
                if d.suppressed.is_some() {
                    continue;
                }
                if let Some(pos) = scan.pending.iter().position(|p| p.covers(d)) {
                    let sup = scan.pending.remove(pos);
                    d.suppressed = Some(sup.reason);
                }
            }
            flush_pending(scan, &fa.rel);
        }
        for scan in scans {
            report.diagnostics.extend(scan.diagnostics);
        }
        report.diagnostics.extend(cross);
        report.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });

        // Baseline ratchet: tolerate committed debt, flag shrunk debt.
        if let Some(path) = &self.baseline_path {
            let src = fs::read_to_string(path)?;
            let baseline =
                Baseline::parse(&src).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let rel = path
                .strip_prefix(&self.root)
                .map(|p| p.to_string_lossy().replace('\\', "/"))
                .unwrap_or_else(|_| path.to_string_lossy().into_owned());
            let stale = crate::baseline::apply(&baseline, &rel, &mut report.diagnostics);
            report.diagnostics.extend(stale);
            report.diagnostics.sort_by(|a, b| {
                (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
            });
        }

        report.certifications = self.certify(&report.diagnostics);
        Ok(report)
    }

    /// Per-crate shard-safety verdicts from the P-rule findings: a
    /// crate is certified only when every P finding in it is
    /// suppressed inline with a reason — baselined debt still voids
    /// the certificate.
    fn certify(&self, diags: &[Diagnostic]) -> Vec<Certification> {
        let keys: BTreeSet<String> = self
            .config
            .shard
            .iter()
            .map(|p| crate_key_of(p))
            .filter(|k| !k.is_empty())
            .collect();
        keys.into_iter()
            .map(|crate_key| {
                let prefix = format!("{crate_key}/");
                let mut findings = 0;
                let mut baselined = 0;
                let mut suppressed = 0;
                for d in diags {
                    if !d.rule.starts_with("P-") || !d.file.starts_with(&prefix) {
                        continue;
                    }
                    if d.suppressed.is_some() {
                        suppressed += 1;
                    } else if d.baselined {
                        baselined += 1;
                    } else {
                        findings += 1;
                    }
                }
                Certification {
                    certified: findings == 0 && baselined == 0,
                    crate_key,
                    findings,
                    baselined,
                    suppressed,
                }
            })
            .collect()
    }

    /// Reads the cache-schema manifest (type names, manifest rel path,
    /// line of the first marker) from the configured manifest file.
    fn load_manifest(&self) -> Option<(BTreeSet<String>, String, u32)> {
        let rel = self.config.manifest.clone()?;
        let src = fs::read_to_string(self.root.join(&rel)).ok()?;
        let lexed = lex(&src);
        let mut names = BTreeSet::new();
        let mut first_line = None;
        for comment in &lexed.comments {
            let Some(rest) = comment.text.split("stabl-lint:").nth(1) else {
                continue;
            };
            let Some(list) = rest.trim().strip_prefix("cache-schema:") else {
                continue;
            };
            first_line.get_or_insert(comment.line);
            for name in list.split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    names.insert(name.to_owned());
                }
            }
        }
        first_line.map(|line| (names, rel, line))
    }

    fn scope_of(&self, rel: &str) -> FileScope {
        let in_any = |prefixes: &[String]| prefixes.iter().any(|p| rel.starts_with(p.as_str()));
        let is_test_path = rel.contains("/tests/")
            || rel.starts_with("tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/")
            || rel.starts_with("examples/");
        let is_bin = self
            .config
            .bins
            .iter()
            .any(|b| rel.contains(&format!("/{b}/")) || rel.contains(&format!("{b}/")));
        if is_test_path {
            return FileScope::default();
        }
        FileScope {
            determinism: in_any(&self.config.determinism),
            robustness: in_any(&self.config.robustness) && !is_bin,
            exit_banned: !is_bin,
            cache: in_any(&self.config.cache),
            shard: in_any(&self.config.shard),
            numeric: in_any(&self.config.numeric),
        }
    }
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    skip: &[String],
    out: &mut Vec<String>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = match path.strip_prefix(root) {
            Ok(rel) => rel.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if skip
            .iter()
            .any(|s| rel == *s || rel.starts_with(&format!("{s}/")))
        {
            continue;
        }
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with('.'))
            {
                continue;
            }
            collect_rs_files(root, &path, skip, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}
