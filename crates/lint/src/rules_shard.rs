//! P-rules: shard-safety certification.
//!
//! ROADMAP item 2 wants to shard one simulated run across cores as
//! communicating logical processes. That is only sound if chain node
//! handlers are *pure message-passing state machines*: all state owned
//! by the node struct, nothing ambient, nothing aliased, nothing
//! synchronised behind the kernel's back. The P-rules certify exactly
//! that, per crate, over the `[shard]` scope of `lint.toml`:
//!
//! | id    | bans |
//! |-------|------|
//! | P-001 | `static mut` items |
//! | P-002 | `thread_local!` state |
//! | P-003 | shared-ownership handles (`Rc`, `Arc`) |
//! | P-004 | interior mutability (`Cell`, `RefCell`, `UnsafeCell`, `OnceCell`, `LazyCell`) |
//! | P-005 | lock primitives (`Mutex`, `RwLock`, `Condvar`, `Barrier`, `Once`, `OnceLock`, `LazyLock`) |
//! | P-006 | atomic types (`AtomicBool`, `AtomicU64`, …) |
//!
//! Identifiers are resolved through the file's `use`-alias map, so
//! `use std::sync::Arc as Shared` does not hide the handle. When the
//! occurrence sits inside a function the Protocol call graph can reach
//! from a handler, the finding message carries an example call path
//! (`on_message → dispatch → try_commit`) — the reviewer sees *how*
//! handler code touches the banned item, not just that the crate does.

use crate::symbols::{CrateGraph, FileAnalysis};

/// Shared-ownership handles (P-003).
const SHARED: &[&str] = &["Rc", "Arc"];
/// Interior-mutability cells (P-004).
const CELLS: &[&str] = &["Cell", "RefCell", "UnsafeCell", "OnceCell", "LazyCell"];
/// Lock and one-shot synchronisation primitives (P-005).
const LOCKS: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "LazyLock",
];
/// Atomic integer/bool/pointer types (P-006).
const ATOMICS: &[&str] = &[
    "AtomicBool",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
];

/// Per-token P-rule pass; called by the scanner for every non-test
/// token of a `[shard]`-scoped file.
pub fn check_token(
    fa: &FileAnalysis,
    i: usize,
    graph: Option<&CrateGraph>,
    raw: &mut Vec<(usize, &'static str, String)>,
) {
    let tokens = &fa.lexed.tokens;
    let Some(t) = tokens.get(i) else { return };
    if t.kind != crate::lexer::TokenKind::Ident {
        return;
    }
    if t.text == "thread_local"
        && tokens
            .get(i + 1)
            .is_some_and(|n| n.kind == crate::lexer::TokenKind::Punct && n.text == "!")
    {
        raw.push((
            i,
            "P-002",
            annotate(fa, i, graph, "`thread_local!` state".to_owned()),
        ));
        return;
    }
    let resolved = fa.resolve_last(&t.text);
    let (rule, what) = if SHARED.contains(&resolved) {
        ("P-003", "shared-ownership handle")
    } else if CELLS.contains(&resolved) {
        ("P-004", "interior mutability")
    } else if LOCKS.contains(&resolved) {
        ("P-005", "lock primitive")
    } else if ATOMICS.contains(&resolved) {
        ("P-006", "atomic type")
    } else {
        return;
    };
    let named = if resolved == t.text {
        format!("`{}` ({what})", t.text)
    } else {
        format!("`{}` (alias of `{resolved}`, {what})", t.text)
    };
    raw.push((i, rule, annotate(fa, i, graph, named)));
}

/// Item-level P-rule pass (P-001, which anchors at the item rather
/// than a use site); called once per `[shard]`-scoped file.
pub fn check_items(fa: &FileAnalysis, raw: &mut Vec<(usize, &'static str, String)>) {
    for s in &fa.parsed.statics {
        if s.is_mut && !fa.in_test_span(s.tok) {
            raw.push((
                s.tok,
                "P-001",
                format!("`static mut {}` is ambient mutable state", s.name),
            ));
        }
    }
}

/// Appends the handler reachability evidence to a finding message.
fn annotate(fa: &FileAnalysis, i: usize, graph: Option<&CrateGraph>, mut msg: String) -> String {
    msg.push_str(" in shard-certified crate");
    if let Some(g) = graph {
        if let Some(f) = fa.enclosing_fn(i) {
            if let Some(path) = g.example_path(f) {
                msg.push_str(&format!("; reachable from handler via {path}"));
            }
        }
    }
    msg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    fn findings(src: &str) -> Vec<(String, String)> {
        let fa = FileAnalysis::analyze("crates/x/src/lib.rs", src);
        let table = SymbolTable::build(std::slice::from_ref(&fa));
        let graph = table.graph("crates/x");
        let mut raw = Vec::new();
        for i in 0..fa.lexed.tokens.len() {
            if !fa.in_test_span(i) {
                check_token(&fa, i, graph, &mut raw);
            }
        }
        check_items(&fa, &mut raw);
        raw.into_iter()
            .map(|(_, rule, msg)| (rule.to_owned(), msg))
            .collect()
    }

    #[test]
    fn bans_the_six_families() {
        let hits = findings(
            "use std::sync::{Arc, Mutex};\n\
             use std::cell::RefCell;\n\
             use std::sync::atomic::AtomicU64;\n\
             static mut COUNTER: u64 = 0;\n\
             thread_local! { static TL: u32 = 0; }\n",
        );
        let rules: Vec<&str> = hits.iter().map(|(r, _)| r.as_str()).collect();
        for want in ["P-001", "P-002", "P-003", "P-004", "P-005", "P-006"] {
            assert!(rules.contains(&want), "missing {want} in {rules:?}");
        }
    }

    #[test]
    fn aliases_do_not_hide_banned_types() {
        let hits = findings("use std::sync::Arc as Shared;\nfn f() { let _x: Shared<u32>; }\n");
        assert!(
            hits.iter()
                .any(|(r, m)| r == "P-003" && m.contains("alias of `Arc`")),
            "{hits:?}"
        );
    }

    #[test]
    fn reachable_findings_carry_an_example_path() {
        let hits = findings(
            "use std::sync::Mutex;\n\
             struct N;\n\
             impl Protocol for N { fn on_message(&mut self) { self.inner(); } }\n\
             impl N { fn inner(&mut self) { let _m: Mutex<u32>; } }\n",
        );
        let p005: Vec<&(String, String)> = hits.iter().filter(|(r, _)| r == "P-005").collect();
        assert!(
            p005.iter().any(|(_, m)| m.contains("on_message → inner")),
            "{p005:?}"
        );
    }

    #[test]
    fn test_code_and_plain_statics_are_exempt() {
        let hits = findings(
            "static LIMIT: u64 = 8;\n\
             #[cfg(test)]\nmod tests { use std::sync::Arc; static mut X: u8 = 0; }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }
}
