//! The `lint-baseline.json` ratchet.
//!
//! New rule families land against an existing codebase, so findings
//! gate through a committed baseline: a finding listed there is *debt*
//! (reported, but not a build failure), anything beyond it is *new*
//! (fails the build), and debt may only shrink — once a finding is
//! fixed, [`apply`] flags the now-oversized baseline entry with B-001
//! so the ratchet is tightened in the same change.
//!
//! Format (written by `stabl-lint --write-baseline`, hand-parsed here
//! because the linter is dependency-free):
//!
//! ```json
//! {"version":1,"entries":[
//! {"rule":"D-003","file":"crates/x/src/lib.rs","count":2}
//! ]}
//! ```
//!
//! Entries are keyed `(rule, file)` with a count, not line numbers:
//! lines shift on every edit, which would make the baseline churn; a
//! per-file count is stable and still ratchets monotonically.

use std::collections::BTreeMap;

use crate::rules::{Diagnostic, Severity};

/// One baseline entry: up to `count` findings of `rule` in `file` are
/// tolerated debt.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule id (`D-003`, …).
    pub rule: String,
    /// Workspace-relative file the debt lives in.
    pub file: String,
    /// Number of tolerated findings.
    pub count: u64,
}

/// A parsed `lint-baseline.json`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries, sorted by (rule, file).
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline dialect written by [`Baseline::render`]. The
    /// scanner is shape-tolerant (whitespace, key order) but only
    /// understands objects with `rule` / `file` string values and a
    /// `count` number.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let chars: Vec<char> = src.chars().collect();
        let mut i = 0usize;
        let mut key: Option<String> = None;
        let mut rule: Option<String> = None;
        let mut file: Option<String> = None;
        let mut count: Option<u64> = None;
        let mut entries = Vec::new();
        while i < chars.len() {
            match chars[i] {
                '"' => {
                    let (s, next) = parse_string(&chars, i)?;
                    i = next;
                    // A string followed by `:` is a key; otherwise it is
                    // the value of the pending key.
                    let mut j = i;
                    while j < chars.len() && chars[j].is_whitespace() {
                        j += 1;
                    }
                    if chars.get(j) == Some(&':') {
                        key = Some(s);
                        i = j + 1;
                    } else {
                        match key.take().as_deref() {
                            Some("rule") => rule = Some(s),
                            Some("file") => file = Some(s),
                            _ => {}
                        }
                    }
                }
                '0'..='9' => {
                    let mut n = 0u64;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(chars[i] as u64 - '0' as u64))
                            .ok_or_else(|| "count overflows u64".to_owned())?;
                        i += 1;
                    }
                    if key.take().as_deref() == Some("count") {
                        count = Some(n);
                    }
                }
                '}' => {
                    if let (Some(r), Some(f), Some(c)) = (rule.take(), file.take(), count.take()) {
                        entries.push(BaselineEntry {
                            rule: r,
                            file: f,
                            count: c,
                        });
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        entries.sort();
        Ok(Baseline { entries })
    }

    /// Builds a baseline from a report's unsuppressed error findings
    /// (B-001 meta-findings excluded — the ratchet cannot baseline
    /// itself).
    pub fn from_diagnostics<'a>(diags: impl Iterator<Item = &'a Diagnostic>) -> Baseline {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for d in diags {
            if d.suppressed.is_none() && d.severity == Severity::Error && d.rule != "B-001" {
                *counts
                    .entry((d.rule.to_owned(), d.file.clone()))
                    .or_default() += 1;
            }
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((rule, file), count)| BaselineEntry { rule, file, count })
                .collect(),
        }
    }

    /// Renders the baseline deterministically (sorted, one entry per
    /// line) so the committed file diffs cleanly.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"version\":1,\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"rule\":{},\"file\":{},\"count\":{}}}",
                crate::engine::json_str(&e.rule),
                crate::engine::json_str(&e.file),
                e.count
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

fn parse_string(chars: &[char], open: usize) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let esc = chars.get(i + 1).copied().ok_or("dangling escape")?;
                out.push(match esc {
                    'n' => '\n',
                    'r' => '\r',
                    't' => '\t',
                    other => other,
                });
                i += 2;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err("unterminated string in baseline".to_owned())
}

/// Applies `baseline` to `diags`: marks tolerated findings as
/// baselined (oldest first, in the report's sorted order) and returns
/// B-001 diagnostics for entries whose debt has shrunk — the caller
/// appends them so a stale baseline fails the build until ratcheted
/// down.
pub fn apply(baseline: &Baseline, baseline_rel: &str, diags: &mut [Diagnostic]) -> Vec<Diagnostic> {
    let mut by_key: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, d) in diags.iter().enumerate() {
        if d.suppressed.is_none() && d.severity == Severity::Error && d.rule != "B-001" {
            by_key
                .entry((d.rule.to_owned(), d.file.clone()))
                .or_default()
                .push(i);
        }
    }
    let mut stale = Vec::new();
    for e in &baseline.entries {
        let key = (e.rule.clone(), e.file.clone());
        let current = by_key.get(&key).map_or(&[][..], Vec::as_slice);
        let have = current.len() as u64;
        if have < e.count {
            stale.push(Diagnostic::new(
                "B-001",
                baseline_rel,
                1,
                1,
                format!(
                    "baseline allows {} × {} in `{}` but only {} remain — ratchet down \
                     (stabl-lint --write-baseline)",
                    e.count, e.rule, e.file, have
                ),
            ));
        }
        for &idx in current.iter().take(e.count as usize) {
            diags[idx].baselined = true;
        }
    }
    stale
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic::new(rule, file, line, 1, format!("{rule} at {line}"))
    }

    #[test]
    fn render_parse_round_trip() {
        let b = Baseline {
            entries: vec![
                BaselineEntry {
                    rule: "D-003".to_owned(),
                    file: "crates/x/src/a.rs".to_owned(),
                    count: 2,
                },
                BaselineEntry {
                    rule: "N-003".to_owned(),
                    file: "crates/y/src/b.rs".to_owned(),
                    count: 1,
                },
            ],
        };
        assert_eq!(Baseline::parse(&b.render()).expect("parses"), b);
        assert_eq!(
            Baseline::parse("{\"version\":1,\"entries\":[]}").expect("parses"),
            Baseline::default()
        );
    }

    #[test]
    fn baselined_findings_within_the_count_are_tolerated() {
        let mut diags = vec![diag("D-003", "f.rs", 3), diag("D-003", "f.rs", 9)];
        let b = Baseline {
            entries: vec![BaselineEntry {
                rule: "D-003".to_owned(),
                file: "f.rs".to_owned(),
                count: 2,
            }],
        };
        let stale = apply(&b, "lint-baseline.json", &mut diags);
        assert!(stale.is_empty());
        assert!(diags.iter().all(|d| d.baselined));
    }

    #[test]
    fn findings_beyond_the_count_stay_errors() {
        let mut diags = vec![
            diag("D-003", "f.rs", 3),
            diag("D-003", "f.rs", 9),
            diag("D-003", "f.rs", 12),
        ];
        let b = Baseline {
            entries: vec![BaselineEntry {
                rule: "D-003".to_owned(),
                file: "f.rs".to_owned(),
                count: 2,
            }],
        };
        let stale = apply(&b, "lint-baseline.json", &mut diags);
        assert!(stale.is_empty());
        assert_eq!(diags.iter().filter(|d| d.baselined).count(), 2);
        assert!(!diags[2].baselined, "the newest finding fails the build");
    }

    #[test]
    fn shrunk_debt_produces_a_stale_entry_error() {
        let mut diags = vec![diag("D-003", "f.rs", 3)];
        let b = Baseline {
            entries: vec![
                BaselineEntry {
                    rule: "D-003".to_owned(),
                    file: "f.rs".to_owned(),
                    count: 2,
                },
                BaselineEntry {
                    rule: "N-001".to_owned(),
                    file: "gone.rs".to_owned(),
                    count: 1,
                },
            ],
        };
        let stale = apply(&b, "lint-baseline.json", &mut diags);
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert!(stale.iter().all(|d| d.rule == "B-001"));
        assert!(stale[0].message.contains("only 1 remain"));
        assert!(stale[1].message.contains("only 0 remain"));
    }

    #[test]
    fn from_diagnostics_counts_unsuppressed_errors_only() {
        let mut suppressed = diag("D-003", "f.rs", 5);
        suppressed.suppressed = Some("reason".to_owned());
        let diags = [
            diag("D-003", "f.rs", 3),
            suppressed,
            diag("B-001", "lint-baseline.json", 1),
        ];
        let b = Baseline::from_diagnostics(diags.iter());
        assert_eq!(
            b.entries,
            vec![BaselineEntry {
                rule: "D-003".to_owned(),
                file: "f.rs".to_owned(),
                count: 1,
            }]
        );
    }
}
