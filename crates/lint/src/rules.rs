//! The rule engine: every rule is a pattern over the token stream of
//! one file, gated by the file's scope (see [`crate::config`]).
//!
//! | id    | family      | bans |
//! |-------|-------------|------|
//! | B-001 | baseline    | stale `lint-baseline.json` entry (debt shrank, ratchet down) |
//! | D-001 | determinism | `Instant::now` / `SystemTime::now` |
//! | D-002 | determinism | `thread_rng` / `rand::random` / `OsRng` / `from_entropy` |
//! | D-003 | determinism | `HashMap` / `HashSet` in protocol code (alias-resolved) |
//! | E-001 | exhaustive  | `Protocol::Msg` variant without a match arm in its chain crate |
//! | E-002 | exhaustive  | configured enum variant missing from a cover file |
//! | N-001 | numeric     | float equality comparison / `partial_cmp` |
//! | N-002 | numeric     | truncating `as` cast of a time/seed value |
//! | N-003 | numeric     | raw `+`/`-` on `.as_micros()`/`.as_millis()` output |
//! | P-001 | shard       | `static mut` in a shard-certified crate |
//! | P-002 | shard       | `thread_local!` in a shard-certified crate |
//! | P-003 | shard       | `Rc` / `Arc` in a shard-certified crate |
//! | P-004 | shard       | `Cell` / `RefCell` / … in a shard-certified crate |
//! | P-005 | shard       | `Mutex` / `RwLock` / … in a shard-certified crate |
//! | P-006 | shard       | atomic types in a shard-certified crate |
//! | R-001 | robustness  | `.unwrap()` in non-test library code |
//! | R-002 | robustness  | `.expect(…)` in non-test library code |
//! | R-003 | robustness  | `panic!` / `todo!` / `unimplemented!` in non-test library code |
//! | R-004 | robustness  | `process::exit` outside `src/bin` |
//! | S-001 | cache       | `Serialize` type missing from the cache-schema manifest |
//! | S-002 | cache       | stale cache-schema manifest entry |
//! | S-003 | cache       | cache scope configured but no manifest marker found |
//! | X-001 | meta        | malformed `stabl-lint:` suppression comment |
//! | X-002 | meta        | suppression that suppresses nothing (warning) |
//!
//! The per-file token rules (D, R, S, X plus the v2 P and N families
//! in [`crate::rules_shard`] / [`crate::rules_numeric`]) run through
//! [`scan_analysis`]; the cross-file E rules live in
//! [`crate::rules_exhaustive`] and the B ratchet in
//! [`crate::baseline`], both driven by the engine.
//!
//! Suppression syntax, one rule per comment, reason mandatory:
//!
//! ```text
//! // stabl-lint: allow(R-003, documented panicking wrapper kept for the legacy API)
//! ```
//!
//! A suppression covers its own line and the next line, so it can sit
//! either at the end of the offending line or directly above it.

use crate::lexer::{Comment, Token, TokenKind};
use crate::symbols::{CrateGraph, FileAnalysis};
use std::collections::BTreeSet;

/// Diagnostic severity. Only [`Severity::Error`] affects the exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails the build.
    Warning,
    /// Fails the build unless suppressed.
    Error,
}

impl Severity {
    /// Lower-case name used in output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Static description of one rule (id, severity, summary, fix-hint).
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id (`D-001`, …) used in output and suppressions.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary for `--list-rules` and docs.
    pub summary: &'static str,
    /// How to fix a violation.
    pub hint: &'static str,
}

/// Every rule the engine knows, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "B-001",
        severity: Severity::Error,
        summary: "stale lint-baseline.json entry — recorded debt no longer exists",
        hint: "run `stabl-lint --write-baseline` and commit the shrunk baseline",
    },
    RuleInfo {
        id: "D-001",
        severity: Severity::Error,
        summary: "wall-clock read (Instant::now / SystemTime::now) in deterministic code",
        hint: "use the simulation clock (Ctx::now / SimTime); wall time differs across runs",
    },
    RuleInfo {
        id: "D-002",
        severity: Severity::Error,
        summary: "ambient RNG (thread_rng / rand::random / OsRng / from_entropy) in deterministic code",
        hint: "thread the seeded SimRng through instead; ambient entropy breaks replay",
    },
    RuleInfo {
        id: "D-003",
        severity: Severity::Error,
        summary: "HashMap/HashSet in protocol code (iteration order is nondeterministic)",
        hint: "use BTreeMap/BTreeSet, or collect and sort before iterating",
    },
    RuleInfo {
        id: "E-001",
        severity: Severity::Error,
        summary: "Protocol Msg variant without a match arm in its chain crate",
        hint: "handle the variant in the node's dispatch path (or delete the variant); \
               a silently ignored message is how liveness bugs hide",
    },
    RuleInfo {
        id: "E-002",
        severity: Severity::Error,
        summary: "enum variant not covered by a configured cover file",
        hint: "add the variant to the cover file's match (exporter / counter) so it \
               cannot silently vanish from traces and post-mortems",
    },
    RuleInfo {
        id: "N-001",
        severity: Severity::Error,
        summary: "float equality comparison (or partial_cmp) in numeric-scoped code",
        hint: "use total_cmp or integer micros; float comparison semantics are not \
               replay-stable",
    },
    RuleInfo {
        id: "N-002",
        severity: Severity::Error,
        summary: "truncating `as` cast on a time/seed-typed value",
        hint: "keep times and seeds in u64/u128, or use TryFrom so truncation is explicit",
    },
    RuleInfo {
        id: "N-003",
        severity: Severity::Error,
        summary: "unchecked +/- on .as_micros()/.as_millis() output",
        hint: "stay in SimTime/SimDuration and use their saturating arithmetic instead of \
               raw integer offsets",
    },
    RuleInfo {
        id: "P-001",
        severity: Severity::Error,
        summary: "static mut in a shard-certified crate",
        hint: "move the state into the node struct; sharded logical processes may not \
               share ambient state",
    },
    RuleInfo {
        id: "P-002",
        severity: Severity::Error,
        summary: "thread_local! state in a shard-certified crate",
        hint: "move the state into the node struct; thread identity is meaningless under \
               logical-process sharding",
    },
    RuleInfo {
        id: "P-003",
        severity: Severity::Error,
        summary: "shared-ownership handle (Rc/Arc) in a shard-certified crate",
        hint: "pass owned values or &mut through the handler; aliased state breaks the \
               pure message-passing model sharding relies on",
    },
    RuleInfo {
        id: "P-004",
        severity: Severity::Error,
        summary: "interior mutability (Cell/RefCell/…) in a shard-certified crate",
        hint: "use plain fields behind &mut self; hidden writes defeat shard-safety \
               certification",
    },
    RuleInfo {
        id: "P-005",
        severity: Severity::Error,
        summary: "lock primitive (Mutex/RwLock/…) in a shard-certified crate",
        hint: "handlers must not synchronise behind the kernel's back; let the event \
               kernel serialise access instead",
    },
    RuleInfo {
        id: "P-006",
        severity: Severity::Error,
        summary: "atomic type in a shard-certified crate",
        hint: "atomics imply cross-thread sharing; keep node state owned and let the \
               kernel order effects",
    },
    RuleInfo {
        id: "R-001",
        severity: Severity::Error,
        summary: ".unwrap() in non-test library code",
        hint: "propagate a typed error, or restructure so the case is impossible (let-else, pop_first)",
    },
    RuleInfo {
        id: "R-002",
        severity: Severity::Error,
        summary: ".expect(…) in non-test library code",
        hint: "propagate a typed error, or restructure so the case is impossible (let-else, pop_first)",
    },
    RuleInfo {
        id: "R-003",
        severity: Severity::Error,
        summary: "panic! / todo! / unimplemented! in non-test library code",
        hint: "return a typed error; a panic takes down the whole campaign worker",
    },
    RuleInfo {
        id: "R-004",
        severity: Severity::Error,
        summary: "process::exit outside src/bin",
        hint: "return an error to the caller; only binaries choose the process exit code",
    },
    RuleInfo {
        id: "S-001",
        severity: Severity::Error,
        summary: "Serialize type not listed in the cache-schema manifest",
        hint: "add the type to the `stabl-lint: cache-schema:` manifest next to \
               CACHE_SCHEMA_VERSION and bump the version if the wire format changed",
    },
    RuleInfo {
        id: "S-002",
        severity: Severity::Error,
        summary: "cache-schema manifest lists a type no Serialize impl defines",
        hint: "remove the stale name from the manifest (and bump CACHE_SCHEMA_VERSION \
               if the type was serialised into cached rows)",
    },
    RuleInfo {
        id: "S-003",
        severity: Severity::Error,
        summary: "cache scope configured but the manifest file has no cache-schema marker",
        hint: "add `// stabl-lint: cache-schema: Type, …` comments next to CACHE_SCHEMA_VERSION",
    },
    RuleInfo {
        id: "X-001",
        severity: Severity::Error,
        summary: "malformed stabl-lint suppression comment",
        hint: "write `// stabl-lint: allow(rule-id, reason)` — the reason is mandatory",
    },
    RuleInfo {
        id: "X-002",
        severity: Severity::Warning,
        summary: "suppression that matched no diagnostic",
        hint: "delete the stale allow(…) comment",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One finding, suppressed or not.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule id (`D-001`, …).
    pub rule: &'static str,
    /// Severity (from the rule table).
    pub severity: Severity,
    /// Path relative to the linted root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// Fix hint (from the rule table).
    pub hint: &'static str,
    /// `Some(reason)` when an inline suppression covers the finding.
    pub suppressed: Option<String>,
    /// `true` when the committed `lint-baseline.json` tolerates the
    /// finding as known debt (see [`crate::baseline`]).
    pub baselined: bool,
}

/// Which rule families apply to one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileScope {
    /// D-rules apply.
    pub determinism: bool,
    /// R-001..R-003 apply.
    pub robustness: bool,
    /// R-004 applies (`false` under `src/bin`).
    pub exit_banned: bool,
    /// S-001 applies.
    pub cache: bool,
    /// P-rules (shard-safety certification) apply.
    pub shard: bool,
    /// N-rules (numeric determinism) apply.
    pub numeric: bool,
}

/// The outcome of scanning one file.
#[derive(Clone, Debug, Default)]
pub struct FileScan {
    /// Findings, suppressed ones included (marked).
    pub diagnostics: Vec<Diagnostic>,
    /// Names of types this file gives a `Serialize` impl or derive,
    /// with positions — collected whenever the file is in *any* scope,
    /// used by the engine for manifest staleness (S-002).
    pub serialize_types: Vec<(String, u32, u32)>,
    /// Suppressions no per-file rule consumed. The engine offers them
    /// to cross-file diagnostics (E-*, S-002) anchored in this file
    /// before declaring them unused (X-002).
    pub pending: Vec<PendingSuppression>,
}

/// A well-formed suppression that matched nothing in the per-file
/// pass.
#[derive(Clone, Debug)]
pub struct PendingSuppression {
    /// Rule id the suppression names.
    pub rule: String,
    /// Mandatory reason text.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Last line of the comment (for block comments).
    pub end_line: u32,
}

impl PendingSuppression {
    /// `true` when this suppression covers `diag` (same rule, within
    /// the comment's own line through the line after it).
    pub fn covers(&self, diag: &Diagnostic) -> bool {
        self.rule == diag.rule && diag.line >= self.line && diag.line <= self.end_line + 1
    }
}

struct Suppression {
    rule: String,
    reason: String,
    line: u32,
    end_line: u32,
    used: bool,
}

/// Scans one standalone file: analyzes it, runs the per-file rules,
/// and converts any leftover suppressions straight to X-002 (there is
/// no engine around to consume them).
///
/// `manifest` is the set of type names the cache-schema manifest lists
/// (`None` when S-rules are disabled or no manifest is configured).
pub fn scan_file(
    rel_path: &str,
    src: &str,
    scope: FileScope,
    manifest: Option<&BTreeSet<String>>,
) -> FileScan {
    let fa = FileAnalysis::analyze(rel_path, src);
    let mut scan = scan_analysis(&fa, scope, manifest, None);
    flush_pending(&mut scan, rel_path);
    scan
}

/// Converts still-pending suppressions into X-002 warnings. The engine
/// calls this after cross-file rules had their chance; [`scan_file`]
/// calls it immediately.
pub fn flush_pending(scan: &mut FileScan, rel_path: &str) {
    for sup in scan.pending.drain(..) {
        scan.diagnostics.push(make_diag(
            "X-002",
            rel_path,
            sup.line,
            1,
            format!("allow({}) matched no diagnostic", sup.rule),
        ));
    }
}

/// Runs the per-file rules over an already-analyzed file. `graph` is
/// the file's crate call graph (used by P-rules to annotate findings
/// with handler reachability); pass `None` when no symbol table is
/// available.
pub fn scan_analysis(
    fa: &FileAnalysis,
    scope: FileScope,
    manifest: Option<&BTreeSet<String>>,
    graph: Option<&CrateGraph>,
) -> FileScan {
    let rel_path = fa.rel.as_str();
    let tokens = &fa.lexed.tokens;
    let in_test = |idx: usize| fa.in_test_span(idx);

    let mut scan = FileScan::default();
    let mut suppressions = parse_suppressions(&fa.lexed.comments, rel_path, &mut scan.diagnostics);

    let mut raw: Vec<(usize, &'static str, String)> = Vec::new(); // (token idx, rule, message)

    for i in 0..tokens.len() {
        if in_test(i) {
            continue;
        }
        if scope.determinism {
            determinism_at(fa, i, &mut raw);
        }
        if scope.robustness {
            robustness_at(tokens, i, &mut raw);
        }
        if scope.shard {
            crate::rules_shard::check_token(fa, i, graph, &mut raw);
        }
        if scope.numeric {
            crate::rules_numeric::check_token(tokens, i, &mut raw);
        }
        if scope.exit_banned && matches_path2(tokens, i, "process", "exit") {
            raw.push((i, "R-004", "`process::exit` outside src/bin".to_owned()));
        }
        // Serialize inventory is collected for any in-scope file so the
        // engine can diff the manifest, but S-001 only fires in cache
        // scope.
        collect_serialize(tokens, i, &in_test, &mut scan.serialize_types);
    }
    if scope.shard {
        crate::rules_shard::check_items(fa, &mut raw);
    }

    if scope.cache {
        if let Some(manifest) = manifest {
            for (name, line, col) in &scan.serialize_types {
                if !manifest.contains(name) {
                    scan.diagnostics.push(make_diag(
                        "S-001",
                        rel_path,
                        *line,
                        *col,
                        format!(
                            "`{name}` is serialised but missing from the cache-schema manifest"
                        ),
                    ));
                }
            }
        }
    }

    for (idx, rule_id, message) in raw {
        let t = &tokens[idx];
        scan.diagnostics
            .push(make_diag(rule_id, rel_path, t.line, t.col, message));
    }

    // Apply suppressions: a suppression on line L covers [L, L+1]
    // (block comments: their *last* line).
    scan.diagnostics.sort_by_key(|d| (d.line, d.col, d.rule));
    for diag in &mut scan.diagnostics {
        if diag.rule == "X-001" {
            continue; // malformed suppressions cannot self-suppress
        }
        for sup in suppressions.iter_mut() {
            if sup.rule == diag.rule && diag.line >= sup.line && diag.line <= sup.end_line + 1 {
                diag.suppressed = Some(sup.reason.clone());
                sup.used = true;
                break;
            }
        }
    }
    for sup in suppressions {
        if !sup.used {
            scan.pending.push(PendingSuppression {
                rule: sup.rule,
                reason: sup.reason,
                line: sup.line,
                end_line: sup.end_line,
            });
        }
    }
    scan
}

impl Diagnostic {
    /// Builds an unsuppressed diagnostic for a known rule id,
    /// inheriting the rule's severity and hint.
    pub fn new(
        rule_id: &'static str,
        file: &str,
        line: u32,
        col: u32,
        message: String,
    ) -> Diagnostic {
        let info = rule(rule_id).unwrap_or(&RULES[0]);
        Diagnostic {
            rule: rule_id,
            severity: info.severity,
            file: file.to_owned(),
            line,
            col,
            message,
            hint: info.hint,
            suppressed: None,
            baselined: false,
        }
    }
}

fn make_diag(
    rule_id: &'static str,
    file: &str,
    line: u32,
    col: u32,
    message: String,
) -> Diagnostic {
    Diagnostic::new(rule_id, file, line, col, message)
}

fn ident_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

/// `a::b` starting at token `i`.
fn matches_path2(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    ident_at(tokens, i, a)
        && punct_at(tokens, i + 1, ':')
        && punct_at(tokens, i + 2, ':')
        && ident_at(tokens, i + 3, b)
}

fn determinism_at(fa: &FileAnalysis, i: usize, raw: &mut Vec<(usize, &'static str, String)>) {
    let tokens = &fa.lexed.tokens;
    let Some(t) = tokens.get(i) else { return };
    if t.kind != TokenKind::Ident {
        return;
    }
    // All D-rule names resolve through the file's `use` aliases, so
    // `use std::collections::HashMap as FastMap` (or `Instant as
    // Clock`) cannot smuggle a banned item past the scan.
    let resolved = fa.resolve_last(&t.text);
    let alias = |raw_name: &str| {
        if resolved == t.text {
            format!("`{raw_name}`")
        } else {
            format!("`{}` (alias of `{raw_name}`)", t.text)
        }
    };
    if (resolved == "Instant" || resolved == "SystemTime")
        && punct_at(tokens, i + 1, ':')
        && punct_at(tokens, i + 2, ':')
        && ident_at(tokens, i + 3, "now")
    {
        let msg = if resolved == t.text {
            format!("wall-clock read `{resolved}::now`")
        } else {
            format!("wall-clock read `{}::now` (alias of `{resolved}`)", t.text)
        };
        raw.push((i, "D-001", msg));
    }
    if ["thread_rng", "OsRng", "from_entropy", "getrandom"].contains(&resolved) {
        raw.push((
            i,
            "D-002",
            format!("ambient RNG source {}", alias(resolved)),
        ));
    }
    if matches_path2(tokens, i, "rand", "random") {
        raw.push((i, "D-002", "ambient RNG source `rand::random`".to_owned()));
    }
    if resolved == "HashMap" || resolved == "HashSet" {
        raw.push((
            i,
            "D-003",
            format!("{} in protocol code (unordered iteration)", alias(resolved)),
        ));
    }
}

fn robustness_at(tokens: &[Token], i: usize, raw: &mut Vec<(usize, &'static str, String)>) {
    if punct_at(tokens, i, '.') && punct_at(tokens, i + 2, '(') {
        if ident_at(tokens, i + 1, "unwrap") {
            raw.push((i + 1, "R-001", "`.unwrap()` in library code".to_owned()));
        } else if ident_at(tokens, i + 1, "expect") {
            raw.push((i + 1, "R-002", "`.expect(…)` in library code".to_owned()));
        }
    }
    for mac in ["panic", "todo", "unimplemented"] {
        if ident_at(tokens, i, mac) && punct_at(tokens, i + 1, '!') {
            raw.push((i, "R-003", format!("`{mac}!` in library code")));
        }
    }
}

/// Detects `#[derive(… Serialize …)] struct/enum Name` and
/// `impl Serialize for Name` at token `i`, recording the type name.
fn collect_serialize(
    tokens: &[Token],
    i: usize,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<(String, u32, u32)>,
) {
    // `impl … Serialize for Name` — the `Serialize for Name` triple is
    // unambiguous (no punctuation separates them in an impl header).
    if ident_at(tokens, i, "Serialize")
        && ident_at(tokens, i + 1, "for")
        && tokens
            .get(i + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    {
        if let Some(t) = tokens.get(i + 2) {
            out.push((t.text.clone(), t.line, t.col));
        }
        return;
    }
    // `#[derive(…)]` with Serialize among the paths.
    if !(punct_at(tokens, i, '#')
        && punct_at(tokens, i + 1, '[')
        && ident_at(tokens, i + 2, "derive"))
    {
        return;
    }
    // Find the closing `]` of this attribute.
    let mut depth = 0i64;
    let mut close = None;
    for (idx, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    close = Some(idx);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else { return };
    let has_serialize = tokens[i + 3..close]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "Serialize");
    if !has_serialize || in_test(i) {
        return;
    }
    // Skip further attributes, then visibility, to the item keyword.
    let mut j = close + 1;
    loop {
        if punct_at(tokens, j, '#') && punct_at(tokens, j + 1, '[') {
            let mut d = 0i64;
            let mut advanced = false;
            for (idx, t) in tokens.iter().enumerate().skip(j + 1) {
                if t.kind != TokenKind::Punct {
                    continue;
                }
                match t.text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            j = idx + 1;
                            advanced = true;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if !advanced {
                return;
            }
            continue;
        }
        if ident_at(tokens, j, "pub") {
            j += 1;
            if punct_at(tokens, j, '(') {
                // pub(crate) / pub(in path)
                let mut d = 0i64;
                for (idx, t) in tokens.iter().enumerate().skip(j) {
                    if t.kind != TokenKind::Punct {
                        continue;
                    }
                    match t.text.as_str() {
                        "(" => d += 1,
                        ")" => {
                            d -= 1;
                            if d == 0 {
                                j = idx + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
            continue;
        }
        break;
    }
    if ident_at(tokens, j, "struct") || ident_at(tokens, j, "enum") || ident_at(tokens, j, "union")
    {
        if let Some(t) = tokens.get(j + 1) {
            if t.kind == TokenKind::Ident {
                // Anchor at the attribute so a suppression directly
                // above `#[derive(…)]` covers the finding.
                let anchor = &tokens[i];
                out.push((t.text.clone(), anchor.line, anchor.col));
            }
        }
    }
}

/// Parses `stabl-lint: allow(rule, reason)` comments; pushes X-001
/// diagnostics for malformed ones.
fn parse_suppressions(
    comments: &[Comment],
    rel_path: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for comment in comments {
        // Doc comments (`///`, `//!` — text starts with `/` or `!`)
        // only *document* the syntax; suppressions are plain comments.
        if comment.text.starts_with('/') || comment.text.starts_with('!') {
            continue;
        }
        let Some(rest) = comment.text.split("stabl-lint:").nth(1) else {
            continue;
        };
        let rest = rest.trim();
        if rest.starts_with("cache-schema") {
            continue; // manifest marker, parsed by the engine
        }
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            diags.push(make_diag(
                "X-001",
                rel_path,
                comment.line,
                1,
                format!("unrecognised stabl-lint directive `{rest}`"),
            ));
            continue;
        };
        let Some((rule_id, reason)) = inner.split_once(',') else {
            diags.push(make_diag(
                "X-001",
                rel_path,
                comment.line,
                1,
                "suppression has no reason — allow(rule-id, reason)".to_owned(),
            ));
            continue;
        };
        let rule_id = rule_id.trim();
        let reason = reason.trim();
        if rule(rule_id).is_none() {
            diags.push(make_diag(
                "X-001",
                rel_path,
                comment.line,
                1,
                format!("unknown rule id `{rule_id}` in suppression"),
            ));
            continue;
        }
        if reason.is_empty() {
            diags.push(make_diag(
                "X-001",
                rel_path,
                comment.line,
                1,
                "suppression reason is empty".to_owned(),
            ));
            continue;
        }
        out.push(Suppression {
            rule: rule_id.to_owned(),
            reason: reason.to_owned(),
            line: comment.line,
            end_line: comment.end_line,
            used: false,
        });
    }
    out
}
