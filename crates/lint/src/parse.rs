//! An item-level Rust parser on top of [`crate::lexer`].
//!
//! `stabl-lint` cannot use `syn` (the vendor tree holds offline
//! stubs), and the semantic rule families added in v2 do not need a
//! full expression parse. What they *do* need — and what a token-stream
//! pattern matcher cannot give them — is exactly what this module
//! extracts:
//!
//! * **`use` trees**, including groups, globs and `as` renames, so a
//!   banned type smuggled in under an alias
//!   (`use std::collections::HashMap as FastMap`) resolves to its
//!   canonical path (D- and P-rules);
//! * **enum definitions with their variants** (E-rules compare variant
//!   sets against match coverage);
//! * **impl blocks** with their trait, self type, associated types and
//!   methods (E-001 discovers `impl Protocol for X { type Msg = … }`
//!   bindings; P-rules seed handler reachability from Protocol impls);
//! * **functions with body spans** (the call graph in
//!   [`crate::symbols`] walks bodies);
//! * **`static` items** (P-001 bans `static mut`);
//! * **pattern-position paths**: every `Enum::Variant` path that occurs
//!   in a match-arm pattern, an `if let`/`while let`/`let … else`
//!   pattern — and *only* there. Distinguishing pattern position from
//!   expression position is what makes E-rules sound: an arm body that
//!   *constructs* `Msg::Chit` must not count as *handling* `Msg::Chit`.
//!
//! The parser is total: any token sequence it cannot make sense of is
//! skipped, never a panic — the right behaviour for a linter that must
//! keep walking the rest of the file.

use crate::lexer::{Token, TokenKind};

/// One terminal entry of a `use` tree: a local name bound to a full
/// path.
///
/// `use std::collections::HashMap as FastMap` yields
/// `local: "FastMap", path: ["std", "collections", "HashMap"]`;
/// `use std::sync::Arc` yields `local: "Arc"` with the same shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseAlias {
    /// The name the import is visible under in this file.
    pub local: String,
    /// The full imported path, one segment per element.
    pub path: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// One enum variant with its definition position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Variant {
    /// The variant name.
    pub name: String,
    /// 1-based line of the variant name.
    pub line: u32,
    /// 1-based column of the variant name.
    pub col: u32,
}

/// One `enum` item.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// Its variants, in declaration order.
    pub variants: Vec<Variant>,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Token index of the `enum` keyword (for test-span checks).
    pub tok: usize,
}

/// One `fn` item (free or inside an impl).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token span of the body block, `[open brace, close brace]`
    /// inclusive; `None` for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Token index of the `fn` keyword.
    pub tok: usize,
}

/// One `type Name = …;` associated-type binding inside an impl.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssocType {
    /// The associated type's name (`Msg`, `Timer`, …).
    pub name: String,
    /// The *last identifier* of the bound type's path
    /// (`AvalancheMsg` for `type Msg = AvalancheMsg;`).
    pub value: String,
}

/// One `impl` block.
#[derive(Clone, Debug)]
pub struct ImplDef {
    /// `Some(trait name)` for `impl Trait for Type`, `None` for
    /// inherent impls. Only the trait path's last identifier is kept.
    pub trait_name: Option<String>,
    /// The self type's last path identifier (`AvalancheNode`).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token index of the `impl` keyword.
    pub tok: usize,
    /// Token span of the impl body block, inclusive.
    pub body: (usize, usize),
    /// Associated type bindings in the body.
    pub assoc_types: Vec<AssocType>,
    /// Methods in the body.
    pub fns: Vec<FnDef>,
}

/// One `static` item.
#[derive(Clone, Debug)]
pub struct StaticDef {
    /// The static's name.
    pub name: String,
    /// `true` for `static mut`.
    pub is_mut: bool,
    /// 1-based line of the `static` keyword.
    pub line: u32,
    /// 1-based column of the `static` keyword.
    pub col: u32,
    /// Token index of the `static` keyword.
    pub tok: usize,
}

/// One multi-segment path found in *pattern position* (a match-arm
/// pattern or a `let`-family pattern).
#[derive(Clone, Debug)]
pub struct PatternPath {
    /// The path segments (`["AvalancheMsg", "Accepted"]`).
    pub segs: Vec<String>,
    /// Token index of the first segment.
    pub tok: usize,
    /// 1-based line of the first segment.
    pub line: u32,
}

/// Everything the parser extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Terminal `use` entries (local name → full path).
    pub uses: Vec<UseAlias>,
    /// Glob imports (`use a::b::*` → `["a", "b"]`).
    pub globs: Vec<Vec<String>>,
    /// Enum definitions, all module levels flattened.
    pub enums: Vec<EnumDef>,
    /// Impl blocks, all module levels flattened.
    pub impls: Vec<ImplDef>,
    /// Free functions (not inside an impl).
    pub free_fns: Vec<FnDef>,
    /// `static` items.
    pub statics: Vec<StaticDef>,
    /// `Enum::Variant` paths in pattern position.
    pub patterns: Vec<PatternPath>,
}

impl ParsedFile {
    /// All functions in the file — free and impl methods — in source
    /// order of their containers.
    pub fn all_fns(&self) -> impl Iterator<Item = &FnDef> {
        self.free_fns
            .iter()
            .chain(self.impls.iter().flat_map(|i| i.fns.iter()))
    }

    /// The impl block whose body span contains token index `tok`.
    pub fn impl_containing(&self, tok: usize) -> Option<&ImplDef> {
        self.impls
            .iter()
            .find(|i| tok >= i.body.0 && tok <= i.body.1)
    }
}

/// Parses a lexed token stream into items and pattern paths.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    parse_items(tokens, 0, tokens.len(), &mut out);
    collect_match_patterns(tokens, &mut out);
    collect_let_patterns(tokens, &mut out);
    out
}

fn is_ident(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn any_ident(tokens: &[Token], i: usize) -> Option<&str> {
    tokens.get(i).and_then(|t| {
        if t.kind == TokenKind::Ident {
            Some(t.text.as_str())
        } else {
            None
        }
    })
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c))
}

/// `true` when tokens `i` and `i + 1` are adjacent in the source —
/// required to tell `=>` from `= >` and `::` from `: :`.
fn adjacent(tokens: &[Token], i: usize) -> bool {
    match (tokens.get(i), tokens.get(i + 1)) {
        (Some(a), Some(b)) => a.line == b.line && b.col == a.col + 1,
        _ => false,
    }
}

/// `::` starting at `i`.
fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    is_punct(tokens, i, ':') && is_punct(tokens, i + 1, ':') && adjacent(tokens, i)
}

/// Index of the delimiter matching `tokens[open]`, respecting nesting
/// of the same delimiter pair only.
fn matching(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0i64;
    for (idx, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct || t.text.len() != 1 {
            continue;
        }
        if t.text.starts_with(open_c) {
            depth += 1;
        } else if t.text.starts_with(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// Skips one `#[…]` attribute starting at `i`; returns the index after
/// it, or `i` if there is no attribute there.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    if is_punct(tokens, i, '#') && (is_punct(tokens, i + 1, '[') || is_punct(tokens, i + 2, '[')) {
        // `#[…]` or `#![…]`.
        let open = if is_punct(tokens, i + 1, '[') {
            i + 1
        } else {
            i + 2
        };
        if let Some(close) = matching(tokens, open, '[', ']') {
            return close + 1;
        }
    }
    i
}

/// Skips `pub`, `pub(crate)`, `pub(in path)` starting at `i`.
fn skip_vis(tokens: &[Token], i: usize) -> usize {
    if !is_ident(tokens, i, "pub") {
        return i;
    }
    if is_punct(tokens, i + 1, '(') {
        if let Some(close) = matching(tokens, i + 1, '(', ')') {
            return close + 1;
        }
    }
    i + 1
}

/// Advances past one item body: to the matching `}` of the first
/// top-level `{`, or past a terminating `;`, whichever comes first.
/// Angle brackets are tracked so `->` arrows and generic bounds do not
/// confuse the scan.
fn skip_to_item_end(tokens: &[Token], mut i: usize, end: usize) -> usize {
    let mut angle = 0i64;
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct && t.text.len() == 1 {
            match t.text.as_bytes()[0] {
                b'<' => angle += 1,
                // `->` must not close an angle bracket.
                b'>' if !(i > 0 && is_punct(tokens, i - 1, '-') && adjacent(tokens, i - 1)) => {
                    angle = (angle - 1).max(-1);
                }
                b'{' if angle <= 0 => {
                    return matching(tokens, i, '{', '}').map_or(end, |c| c + 1);
                }
                b';' if angle <= 0 => return i + 1,
                b'(' => {
                    i = matching(tokens, i, '(', ')').map_or(end, |c| c);
                }
                b'[' => {
                    i = matching(tokens, i, '[', ']').map_or(end, |c| c);
                }
                _ => {}
            }
        }
        i += 1;
    }
    end
}

fn parse_items(tokens: &[Token], start: usize, end: usize, out: &mut ParsedFile) {
    let mut i = start;
    while i < end {
        // Attributes and visibility before the item keyword.
        loop {
            let next = skip_attr(tokens, i);
            if next == i {
                break;
            }
            i = next;
        }
        i = skip_vis(tokens, i);
        let Some(word) = any_ident(tokens, i) else {
            i += 1;
            continue;
        };
        match word {
            "use" => i = parse_use(tokens, i, end, out),
            "mod" => {
                // `mod name { … }` recurses; `mod name;` skips.
                let mut j = i + 2;
                while j < end && !is_punct(tokens, j, '{') && !is_punct(tokens, j, ';') {
                    j += 1;
                }
                if is_punct(tokens, j, '{') {
                    let close = matching(tokens, j, '{', '}').unwrap_or(end);
                    parse_items(tokens, j + 1, close, out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "enum" => i = parse_enum(tokens, i, end, out),
            "impl" => i = parse_impl(tokens, i, end, out),
            "fn" => {
                let (def, next) = parse_fn(tokens, i, end);
                if let Some(def) = def {
                    out.free_fns.push(def);
                }
                i = next;
            }
            "static" => {
                let t = &tokens[i];
                let is_mut = is_ident(tokens, i + 1, "mut");
                let name_at = if is_mut { i + 2 } else { i + 1 };
                if let Some(name) = any_ident(tokens, name_at) {
                    out.statics.push(StaticDef {
                        name: name.to_owned(),
                        is_mut,
                        line: t.line,
                        col: t.col,
                        tok: i,
                    });
                }
                i = skip_to_item_end(tokens, i + 1, end);
            }
            "const" => {
                // `const fn` is a function; `const NAME: T = …;` skips.
                if is_ident(tokens, i + 1, "fn") {
                    let (def, next) = parse_fn(tokens, i + 1, end);
                    if let Some(def) = def {
                        out.free_fns.push(def);
                    }
                    i = next;
                } else {
                    i = skip_to_item_end(tokens, i + 1, end);
                }
            }
            "unsafe" | "async" | "extern" => i += 1,
            "struct" | "union" | "trait" | "macro_rules" | "type" => {
                i = skip_to_item_end(tokens, i + 1, end);
            }
            _ => i += 1,
        }
    }
}

/// Parses `use …;` starting at the `use` keyword; returns the index
/// after the `;`.
fn parse_use(tokens: &[Token], i: usize, end: usize, out: &mut ParsedFile) -> usize {
    let line = tokens[i].line;
    let mut j = i + 1;
    let stop = {
        let mut k = j;
        let mut depth = 0i64;
        while k < end {
            if is_punct(tokens, k, '{') {
                depth += 1;
            } else if is_punct(tokens, k, '}') {
                depth -= 1;
            } else if is_punct(tokens, k, ';') && depth <= 0 {
                break;
            }
            k += 1;
        }
        k
    };
    parse_use_tree(tokens, &mut j, stop, &mut Vec::new(), line, out);
    stop + 1
}

/// Parses one use-tree branch in `tokens[*j..stop]` against `prefix`.
fn parse_use_tree(
    tokens: &[Token],
    j: &mut usize,
    stop: usize,
    prefix: &mut Vec<String>,
    line: u32,
    out: &mut ParsedFile,
) {
    let depth_at_entry = prefix.len();
    while *j < stop {
        if is_path_sep(tokens, *j) {
            *j += 2;
            continue;
        }
        if is_punct(tokens, *j, '{') {
            // Group: parse comma-separated subtrees.
            *j += 1;
            loop {
                parse_use_tree(tokens, j, stop, prefix, line, out);
                if is_punct(tokens, *j, ',') {
                    *j += 1;
                    continue;
                }
                break;
            }
            if is_punct(tokens, *j, '}') {
                *j += 1;
            }
            prefix.truncate(depth_at_entry);
            return;
        }
        if is_punct(tokens, *j, '*') {
            out.globs.push(prefix.clone());
            *j += 1;
            prefix.truncate(depth_at_entry);
            return;
        }
        if is_punct(tokens, *j, ',') || is_punct(tokens, *j, '}') {
            // Empty branch (trailing comma).
            prefix.truncate(depth_at_entry);
            return;
        }
        let Some(word) = any_ident(tokens, *j) else {
            *j += 1;
            continue;
        };
        if word == "as" {
            if let Some(alias) = any_ident(tokens, *j + 1) {
                out.uses.push(UseAlias {
                    local: alias.to_owned(),
                    path: prefix.clone(),
                    line,
                });
                *j += 2;
            } else {
                *j += 1;
            }
            prefix.truncate(depth_at_entry);
            return;
        }
        if word == "self" && !prefix.is_empty() {
            // `use a::b::{self, …}` binds `b`.
            *j += 1;
            if is_ident(tokens, *j, "as") {
                continue; // handled by the `as` branch above
            }
            if let Some(last) = prefix.last().cloned() {
                out.uses.push(UseAlias {
                    local: last,
                    path: prefix.clone(),
                    line,
                });
            }
            prefix.truncate(depth_at_entry);
            return;
        }
        prefix.push(word.to_owned());
        *j += 1;
        if is_path_sep(tokens, *j) {
            continue;
        }
        if is_ident(tokens, *j, "as") {
            continue;
        }
        // Terminal segment.
        if let Some(last) = prefix.last().cloned() {
            out.uses.push(UseAlias {
                local: last,
                path: prefix.clone(),
                line,
            });
        }
        prefix.truncate(depth_at_entry);
        return;
    }
    prefix.truncate(depth_at_entry);
}

/// Parses `enum Name … { Variant, … }` starting at the `enum` keyword.
fn parse_enum(tokens: &[Token], i: usize, end: usize, out: &mut ParsedFile) -> usize {
    let Some(name) = any_ident(tokens, i + 1) else {
        return i + 1;
    };
    // Find the body brace, skipping generics and where clauses.
    let mut j = i + 2;
    let mut angle = 0i64;
    while j < end {
        if is_punct(tokens, j, '<') {
            angle += 1;
        } else if is_punct(tokens, j, '>')
            && !(j > 0 && is_punct(tokens, j - 1, '-') && adjacent(tokens, j - 1))
        {
            angle -= 1;
        } else if is_punct(tokens, j, '{') && angle <= 0 {
            break;
        } else if is_punct(tokens, j, ';') && angle <= 0 {
            return j + 1;
        }
        j += 1;
    }
    let Some(close) = matching(tokens, j, '{', '}') else {
        return end;
    };
    let mut variants = Vec::new();
    let mut k = j + 1;
    while k < close {
        // Skip attributes before the variant name.
        loop {
            let next = skip_attr(tokens, k);
            if next == k {
                break;
            }
            k = next;
        }
        if let Some(vname) = any_ident(tokens, k) {
            let t = &tokens[k];
            variants.push(Variant {
                name: vname.to_owned(),
                line: t.line,
                col: t.col,
            });
        }
        // Advance to the comma ending this variant, skipping payloads
        // and discriminants.
        while k < close {
            if is_punct(tokens, k, '{') {
                k = matching(tokens, k, '{', '}').unwrap_or(close);
            } else if is_punct(tokens, k, '(') {
                k = matching(tokens, k, '(', ')').unwrap_or(close);
            } else if is_punct(tokens, k, ',') {
                break;
            }
            k += 1;
        }
        k += 1; // past the comma
    }
    out.enums.push(EnumDef {
        name: name.to_owned(),
        variants,
        line: tokens[i].line,
        tok: i,
    });
    close + 1
}

/// Parses `fn name…(…) … { … }` starting at the `fn` keyword; returns
/// the definition (if a name was found) and the index after the item.
fn parse_fn(tokens: &[Token], i: usize, end: usize) -> (Option<FnDef>, usize) {
    let Some(name) = any_ident(tokens, i + 1) else {
        return (None, i + 1);
    };
    let mut j = i + 2;
    let mut angle = 0i64;
    while j < end {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct && t.text.len() == 1 {
            match t.text.as_bytes()[0] {
                b'<' => angle += 1,
                b'>' if !(is_punct(tokens, j - 1, '-') && adjacent(tokens, j - 1)) => {
                    angle = (angle - 1).max(-1);
                }
                b'(' => {
                    j = matching(tokens, j, '(', ')').unwrap_or(end);
                }
                b'{' if angle <= 0 => {
                    let close = matching(tokens, j, '{', '}').unwrap_or(end);
                    let def = FnDef {
                        name: name.to_owned(),
                        line: tokens[i].line,
                        body: Some((j, close)),
                        tok: i,
                    };
                    return (Some(def), close + 1);
                }
                b';' if angle <= 0 => {
                    let def = FnDef {
                        name: name.to_owned(),
                        line: tokens[i].line,
                        body: None,
                        tok: i,
                    };
                    return (Some(def), j + 1);
                }
                _ => {}
            }
        }
        j += 1;
    }
    (None, end)
}

/// Parses an `impl` block starting at the `impl` keyword.
fn parse_impl(tokens: &[Token], i: usize, end: usize, out: &mut ParsedFile) -> usize {
    let mut j = i + 1;
    // Skip generic parameters directly after `impl`.
    if is_punct(tokens, j, '<') {
        let mut angle = 0i64;
        while j < end {
            if is_punct(tokens, j, '<') {
                angle += 1;
            } else if is_punct(tokens, j, '>')
                && !(is_punct(tokens, j - 1, '-') && adjacent(tokens, j - 1))
            {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect the header: `[!] TraitPath for TypePath` or `TypePath`,
    // up to `{` or `where`.
    let mut pre_for: Vec<String> = Vec::new();
    let mut post_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    let mut angle = 0i64;
    while j < end {
        if is_punct(tokens, j, '{') && angle <= 0 {
            break;
        }
        if is_ident(tokens, j, "where") && angle <= 0 {
            while j < end && !is_punct(tokens, j, '{') {
                j += 1;
            }
            break;
        }
        if is_punct(tokens, j, '<') {
            angle += 1;
        } else if is_punct(tokens, j, '>')
            && !(is_punct(tokens, j - 1, '-') && adjacent(tokens, j - 1))
        {
            angle = (angle - 1).max(0);
        } else if angle == 0 {
            if is_ident(tokens, j, "for") {
                saw_for = true;
            } else if let Some(word) = any_ident(tokens, j) {
                if word != "dyn" && word != "mut" && word != "const" {
                    if saw_for {
                        post_for.push(word.to_owned());
                    } else {
                        pre_for.push(word.to_owned());
                    }
                }
            }
        }
        j += 1;
    }
    if j >= end || !is_punct(tokens, j, '{') {
        return j;
    }
    let close = matching(tokens, j, '{', '}').unwrap_or(end);
    let (trait_name, type_name) = if saw_for {
        (pre_for.last().cloned(), post_for.last().cloned())
    } else {
        (None, pre_for.last().cloned())
    };
    let Some(type_name) = type_name else {
        return close + 1;
    };

    // Walk the body for associated types and methods.
    let mut assoc_types = Vec::new();
    let mut fns = Vec::new();
    let mut k = j + 1;
    while k < close {
        loop {
            let next = skip_attr(tokens, k);
            if next == k {
                break;
            }
            k = next;
        }
        k = skip_vis(tokens, k);
        let Some(word) = any_ident(tokens, k) else {
            k += 1;
            continue;
        };
        match word {
            "type" => {
                if let Some(name) = any_ident(tokens, k + 1) {
                    // Value = last ident before the terminating `;`
                    // that is not inside angle brackets.
                    let mut m = k + 2;
                    let mut value = String::new();
                    let mut angle2 = 0i64;
                    while m < close && !is_punct(tokens, m, ';') {
                        if is_punct(tokens, m, '<') {
                            angle2 += 1;
                        } else if is_punct(tokens, m, '>') {
                            angle2 -= 1;
                        } else if angle2 == 0 {
                            if let Some(seg) = any_ident(tokens, m) {
                                value = seg.to_owned();
                            }
                        }
                        m += 1;
                    }
                    assoc_types.push(AssocType {
                        name: name.to_owned(),
                        value,
                    });
                    k = m + 1;
                } else {
                    k += 1;
                }
            }
            "fn" => {
                let (def, next) = parse_fn(tokens, k, close);
                if let Some(def) = def {
                    fns.push(def);
                }
                k = next;
            }
            "const" if is_ident(tokens, k + 1, "fn") => {
                let (def, next) = parse_fn(tokens, k + 1, close);
                if let Some(def) = def {
                    fns.push(def);
                }
                k = next;
            }
            "unsafe" | "async" | "extern" | "default" => k += 1,
            _ => k = skip_to_item_end(tokens, k + 1, close),
        }
    }
    out.impls.push(ImplDef {
        trait_name,
        type_name,
        line: tokens[i].line,
        tok: i,
        body: (j, close),
        assoc_types,
        fns,
    });
    close + 1
}

/// Collects multi-segment paths from every match-arm pattern.
///
/// The arm state machine tracks, at the top nesting level of each
/// match body, whether the cursor is in *pattern* position (before the
/// `=>`, excluding an `if` guard) or in the arm *body* (after the
/// `=>`, up to the top-level `,` or the end of a brace-block body).
fn collect_match_patterns(tokens: &[Token], out: &mut ParsedFile) {
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, "match") {
            continue;
        }
        // The scrutinee runs to the first `{` outside parens/brackets.
        let mut j = i + 1;
        let mut pd = 0i64;
        while j < tokens.len() {
            if is_punct(tokens, j, '(') || is_punct(tokens, j, '[') {
                pd += 1;
            } else if is_punct(tokens, j, ')') || is_punct(tokens, j, ']') {
                pd -= 1;
            } else if is_punct(tokens, j, '{') && pd <= 0 {
                break;
            }
            j += 1;
        }
        let Some(close) = matching(tokens, j, '{', '}') else {
            continue;
        };
        let mut k = j + 1;
        let mut depth = 0i64;
        let mut in_pattern = true;
        let mut region_start = k;
        let mut guard_cut: Option<usize> = None;
        while k < close {
            let bump = |c: char| -> i64 {
                match c {
                    '(' | '[' | '{' => 1,
                    ')' | ']' | '}' => -1,
                    _ => 0,
                }
            };
            if let Some(t) = tokens.get(k) {
                if t.kind == TokenKind::Punct && t.text.len() == 1 {
                    let c = t.text.as_bytes()[0] as char;
                    let delta = bump(c);
                    if delta != 0 {
                        // A brace-block arm body at depth 0 ends the arm.
                        if c == '{' && depth == 0 && !in_pattern {
                            let block_close = matching(tokens, k, '{', '}').unwrap_or(close);
                            k = block_close + 1;
                            if is_punct(tokens, k, ',') {
                                k += 1;
                            }
                            in_pattern = true;
                            region_start = k;
                            guard_cut = None;
                            continue;
                        }
                        depth += delta;
                        k += 1;
                        continue;
                    }
                    if depth == 0 {
                        if in_pattern
                            && c == '='
                            && is_punct(tokens, k + 1, '>')
                            && adjacent(tokens, k)
                        {
                            let region_end = guard_cut.unwrap_or(k);
                            collect_paths_in(tokens, region_start, region_end, out);
                            in_pattern = false;
                            guard_cut = None;
                            k += 2;
                            continue;
                        }
                        if !in_pattern && c == ',' {
                            in_pattern = true;
                            region_start = k + 1;
                        }
                    }
                } else if t.kind == TokenKind::Ident
                    && t.text == "if"
                    && depth == 0
                    && in_pattern
                    && guard_cut.is_none()
                {
                    guard_cut = Some(k);
                }
            }
            k += 1;
        }
    }
}

/// Collects multi-segment paths from `let`-family patterns
/// (`let`, `if let`, `while let`, `let … else`).
fn collect_let_patterns(tokens: &[Token], out: &mut ParsedFile) {
    for i in 0..tokens.len() {
        if !is_ident(tokens, i, "let") {
            continue;
        }
        // The pattern runs to the first top-level `=` that is not part
        // of a compound operator, or to `;` (uninitialised let).
        let mut j = i + 1;
        let mut depth = 0i64;
        let mut end = None;
        while j < tokens.len() && j < i + 120 {
            if let Some(t) = tokens.get(j) {
                if t.kind == TokenKind::Punct && t.text.len() == 1 {
                    match t.text.as_bytes()[0] as char {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        }
                        '=' if depth == 0 => {
                            let compound_prev = j > 0
                                && tokens.get(j - 1).is_some_and(|p| {
                                    p.kind == TokenKind::Punct
                                        && "=<>!+-*/%&|^.".contains(&p.text)
                                        && adjacent(tokens, j - 1)
                                });
                            let eq_next = is_punct(tokens, j + 1, '=') && adjacent(tokens, j);
                            if !compound_prev && !eq_next {
                                end = Some(j);
                                break;
                            }
                        }
                        ';' if depth == 0 => break,
                        _ => {}
                    }
                }
            }
            j += 1;
        }
        if let Some(end) = end {
            collect_paths_in(tokens, i + 1, end, out);
        }
    }
}

/// Records every `A::B(::C…)` path inside `tokens[start..end]`.
fn collect_paths_in(tokens: &[Token], start: usize, end: usize, out: &mut ParsedFile) {
    let mut i = start;
    while i < end {
        if any_ident(tokens, i).is_some() && is_path_sep(tokens, i + 1) {
            let first = i;
            let mut segs = vec![tokens[i].text.clone()];
            let mut j = i + 1;
            while j + 1 < end && is_path_sep(tokens, j) {
                if let Some(seg) = any_ident(tokens, j + 2) {
                    segs.push(seg.to_owned());
                    j += 3;
                } else {
                    break;
                }
            }
            if segs.len() >= 2 {
                out.patterns.push(PatternPath {
                    segs,
                    tok: first,
                    line: tokens[first].line,
                });
            }
            i = j;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    #[test]
    fn use_trees_resolve_groups_aliases_and_globs() {
        let p = parsed(
            "use std::collections::{HashMap as FastMap, BTreeMap, hash_map::Entry};\n\
             use std::sync::Arc;\n\
             use std::rc::*;\n\
             use crate::throttle::{self, Admission};\n",
        );
        let find = |local: &str| p.uses.iter().find(|u| u.local == local);
        assert_eq!(
            find("FastMap").map(|u| u.path.join("::")),
            Some("std::collections::HashMap".to_owned())
        );
        assert_eq!(
            find("BTreeMap").map(|u| u.path.join("::")),
            Some("std::collections::BTreeMap".to_owned())
        );
        assert_eq!(
            find("Entry").map(|u| u.path.join("::")),
            Some("std::collections::hash_map::Entry".to_owned())
        );
        assert_eq!(
            find("Arc").map(|u| u.path.join("::")),
            Some("std::sync::Arc".to_owned())
        );
        assert_eq!(
            find("throttle").map(|u| u.path.join("::")),
            Some("crate::throttle".to_owned())
        );
        assert!(find("Admission").is_some());
        assert_eq!(p.globs, vec![vec!["std".to_owned(), "rc".to_owned()]]);
    }

    #[test]
    fn enums_collect_variants_with_payloads() {
        let p = parsed(
            "pub enum Msg {\n\
                 #[doc = \"x\"]\n\
                 Ping,\n\
                 Data { bytes: Vec<u8>, id: u64 },\n\
                 Pair(u32, u32),\n\
                 Code = 4,\n\
             }\n",
        );
        assert_eq!(p.enums.len(), 1);
        let names: Vec<&str> = p.enums[0]
            .variants
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(names, vec!["Ping", "Data", "Pair", "Code"]);
    }

    #[test]
    fn impls_capture_trait_type_assoc_types_and_fns() {
        let p = parsed(
            "impl Protocol for AvalancheNode {\n\
                 type Msg = AvalancheMsg;\n\
                 type Config = AvalancheConfig;\n\
                 fn on_message(&mut self) -> Option<u32> { None }\n\
             }\n\
             impl AvalancheNode { fn helper(&self) {} }\n",
        );
        assert_eq!(p.impls.len(), 2);
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("Protocol"));
        assert_eq!(p.impls[0].type_name, "AvalancheNode");
        assert_eq!(
            p.impls[0].assoc_types,
            vec![
                AssocType {
                    name: "Msg".to_owned(),
                    value: "AvalancheMsg".to_owned()
                },
                AssocType {
                    name: "Config".to_owned(),
                    value: "AvalancheConfig".to_owned()
                },
            ]
        );
        assert_eq!(p.impls[0].fns.len(), 1);
        assert_eq!(p.impls[0].fns[0].name, "on_message");
        assert_eq!(p.impls[1].trait_name, None);
        assert_eq!(p.impls[1].fns[0].name, "helper");
    }

    #[test]
    fn generic_impls_resolve_last_segment() {
        let p = parsed(
            "impl<P: Protocol> Protocol for ByzantineWrapper<P> {\n\
                 type Msg = P::Msg;\n\
             }\n",
        );
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("Protocol"));
        assert_eq!(p.impls[0].type_name, "ByzantineWrapper");
        assert_eq!(p.impls[0].assoc_types[0].value, "Msg");
    }

    #[test]
    fn match_patterns_exclude_arm_bodies_and_guards() {
        let p = parsed(
            "fn f(m: Msg, ctx: &mut C) {\n\
                 match m {\n\
                     Msg::Query { id } => { ctx.send(Msg::Chit { id }); }\n\
                     Msg::Accepted { h } if h == Limit::MAX => reply(Msg::Request { h }),\n\
                     other => drop(other),\n\
                 }\n\
             }\n",
        );
        let segs: Vec<String> = p.patterns.iter().map(|q| q.segs.join("::")).collect();
        // Query and Accepted are pattern-position; Chit and Request are
        // constructed in bodies; Limit::MAX sits in a guard.
        assert!(segs.contains(&"Msg::Query".to_owned()), "{segs:?}");
        assert!(segs.contains(&"Msg::Accepted".to_owned()), "{segs:?}");
        assert!(!segs.contains(&"Msg::Chit".to_owned()), "{segs:?}");
        assert!(!segs.contains(&"Msg::Request".to_owned()), "{segs:?}");
        assert!(!segs.contains(&"Limit::MAX".to_owned()), "{segs:?}");
    }

    #[test]
    fn let_family_patterns_are_collected() {
        let p = parsed(
            "fn f(e: &E) {\n\
                 if let E::Phase { node } = e { use_it(node); }\n\
                 while let Some(E::Tick) = next() {}\n\
                 let E::Done(x) = make(E::Hint) else { return; };\n\
             }\n",
        );
        let segs: Vec<String> = p.patterns.iter().map(|q| q.segs.join("::")).collect();
        assert!(segs.contains(&"E::Phase".to_owned()), "{segs:?}");
        assert!(segs.contains(&"E::Tick".to_owned()), "{segs:?}");
        assert!(segs.contains(&"E::Done".to_owned()), "{segs:?}");
        // Constructed on the RHS, not a pattern.
        assert!(!segs.contains(&"E::Hint".to_owned()), "{segs:?}");
    }

    #[test]
    fn statics_and_mutability() {
        let p = parsed("static OK: u32 = 1;\nstatic mut BAD: u32 = 2;\n");
        assert_eq!(p.statics.len(), 2);
        assert!(!p.statics[0].is_mut);
        assert!(p.statics[1].is_mut);
        assert_eq!(p.statics[1].name, "BAD");
    }

    #[test]
    fn nested_modules_are_flattened() {
        let p = parsed("mod inner { pub enum E { A, B } pub fn g() {} }\n");
        assert_eq!(p.enums.len(), 1);
        assert_eq!(p.free_fns.len(), 1);
    }

    #[test]
    fn fn_body_spans_cover_the_block() {
        let src = "fn a() { b(); }\nfn b() {}\n";
        let p = parsed(src);
        assert_eq!(p.free_fns.len(), 2);
        let body = p.free_fns[0].body.expect("has body");
        assert!(body.1 > body.0);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "use ;",
            "enum {",
            "impl for {",
            "match {",
            "fn",
            "let = 3",
            "use a::{b, ;",
            "static",
        ] {
            let _ = parsed(src);
        }
    }
}
