//! E-rules: exhaustiveness drift.
//!
//! The paper's post-mortems live and die on the event stream being
//! complete: a message variant a node silently ignores (or an event
//! kind the exporters drop) makes a liveness failure look like
//! nothing happened. Two checks, both cross-file, both anchored at the
//! *variant definition* so the finding sits where the fix belongs:
//!
//! | id    | checks |
//! |-------|--------|
//! | E-001 | every variant of a `Protocol::Msg` enum has a match arm somewhere in its chain crate's non-test code |
//! | E-002 | every variant of a configured enum appears in a configured cover file (`SimEvent` → observe exporters, diagnose counters) |
//!
//! Coverage means *pattern position* — a match arm or `let`-family
//! pattern (see [`crate::parse`]). An arm body that merely constructs
//! `Msg::Chit` does not count as handling `Msg::Chit`; that asymmetry
//! is what a token-stream linter cannot see and this pass exists for.
//!
//! E-001 discovers its targets: any non-test `impl Protocol for …`
//! block in the `[exhaustive]` scope whose `type Msg = E;` names an
//! enum defined in the same crate. Generic pass-throughs
//! (`type Msg = P::Msg`, as in `ByzantineWrapper`) resolve to no
//! in-crate enum and are skipped. E-002 targets come from
//! `[exhaustive] covers` triples in `lint.toml`.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::CoverSpec;
use crate::rules::Diagnostic;
use crate::symbols::FileAnalysis;

/// Runs E-001 and E-002 over the analyzed workspace, appending
/// diagnostics to `out`.
pub fn check(
    files: &[FileAnalysis],
    include: &[String],
    covers: &[CoverSpec],
    out: &mut Vec<Diagnostic>,
) {
    // Pattern-position coverage, grouped by crate: (enum, variant).
    let mut by_crate: BTreeMap<&str, BTreeSet<(String, String)>> = BTreeMap::new();
    for fa in files {
        let entry = by_crate.entry(fa.crate_key.as_str()).or_default();
        for (owner, variant, tok) in fa.resolved_patterns() {
            if !fa.in_test_span(tok) {
                entry.insert((owner, variant));
            }
        }
    }

    // E-001: Protocol Msg enums in the [exhaustive] scope.
    let mut reported: BTreeSet<(String, String, String)> = BTreeSet::new();
    for fa in files {
        if !include.iter().any(|p| fa.rel.starts_with(p.as_str())) {
            continue;
        }
        for imp in &fa.parsed.impls {
            if imp.trait_name.as_deref() != Some("Protocol") || fa.in_test_span(imp.tok) {
                continue;
            }
            let Some(msg) = imp.assoc_types.iter().find(|a| a.name == "Msg") else {
                continue;
            };
            // The Msg enum must be defined in the same crate; generic
            // pass-throughs (`type Msg = P::Msg`) resolve to nothing.
            let def = files
                .iter()
                .filter(|g| g.crate_key == fa.crate_key)
                .find_map(|g| {
                    g.parsed
                        .enums
                        .iter()
                        .find(|e| e.name == msg.value && !g.in_test_span(e.tok))
                        .map(|e| (g, e))
                });
            let Some((def_fa, def)) = def else { continue };
            let covered = by_crate.get(fa.crate_key.as_str());
            for v in &def.variants {
                let key = (fa.crate_key.clone(), def.name.clone(), v.name.clone());
                if covered.is_some_and(|set| set.contains(&(def.name.clone(), v.name.clone()))) {
                    continue;
                }
                if reported.insert(key) {
                    out.push(Diagnostic::new(
                        "E-001",
                        &def_fa.rel,
                        v.line,
                        v.col,
                        format!(
                            "variant `{}::{}` (Protocol Msg of `{}`) has no match arm in `{}`",
                            def.name, v.name, imp.type_name, fa.crate_key
                        ),
                    ));
                }
            }
        }
    }

    // E-002: configured enum → cover-file pairs.
    for spec in covers {
        let Some(def_fa) = files.iter().find(|f| f.rel == spec.def_file) else {
            out.push(Diagnostic::new(
                "E-002",
                &spec.def_file,
                1,
                1,
                format!(
                    "covers entry for `{}` names a file outside the scan",
                    spec.enum_name
                ),
            ));
            continue;
        };
        let Some(cover_fa) = files.iter().find(|f| f.rel == spec.cover_file) else {
            out.push(Diagnostic::new(
                "E-002",
                &spec.cover_file,
                1,
                1,
                format!(
                    "covers entry for `{}` names a cover file outside the scan",
                    spec.enum_name
                ),
            ));
            continue;
        };
        let Some(def) = def_fa
            .parsed
            .enums
            .iter()
            .find(|e| e.name == spec.enum_name && !def_fa.in_test_span(e.tok))
        else {
            out.push(Diagnostic::new(
                "E-002",
                &spec.def_file,
                1,
                1,
                format!("enum `{}` not found in covers entry", spec.enum_name),
            ));
            continue;
        };
        let covered: BTreeSet<(String, String)> = cover_fa
            .resolved_patterns()
            .into_iter()
            .filter(|(_, _, tok)| !cover_fa.in_test_span(*tok))
            .map(|(o, v, _)| (o, v))
            .collect();
        for v in &def.variants {
            if !covered.contains(&(def.name.clone(), v.name.clone())) {
                out.push(Diagnostic::new(
                    "E-002",
                    &def_fa.rel,
                    v.line,
                    v.col,
                    format!(
                        "variant `{}::{}` is not covered by `{}`",
                        def.name, v.name, spec.cover_file
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fa(rel: &str, src: &str) -> FileAnalysis {
        FileAnalysis::analyze(rel, src)
    }

    fn run(files: &[FileAnalysis], include: &[&str], covers: &[CoverSpec]) -> Vec<Diagnostic> {
        let include: Vec<String> = include.iter().map(|s| (*s).to_owned()).collect();
        let mut out = Vec::new();
        check(files, &include, covers, &mut out);
        out
    }

    #[test]
    fn e001_flags_unhandled_msg_variants() {
        let files = [
            fa(
                "crates/x/src/msg.rs",
                "pub enum XMsg { Ping, Pong, Lost }\n",
            ),
            fa(
                "crates/x/src/node.rs",
                "struct Node;\n\
                 impl Protocol for Node {\n\
                     type Msg = XMsg;\n\
                     fn on_message(&mut self, m: XMsg) {\n\
                         match m { XMsg::Ping => {}, XMsg::Pong => {}, _ => {} }\n\
                     }\n\
                 }\n",
            ),
        ];
        let diags = run(&files, &["crates/x/src"], &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "E-001");
        assert!(
            diags[0].message.contains("XMsg::Lost"),
            "{}",
            diags[0].message
        );
        assert_eq!(diags[0].file, "crates/x/src/msg.rs");
    }

    #[test]
    fn e001_construction_in_a_body_is_not_coverage() {
        let files = [fa(
            "crates/x/src/node.rs",
            "pub enum XMsg { Query, Chit }\n\
             struct Node;\n\
             impl Protocol for Node {\n\
                 type Msg = XMsg;\n\
                 fn on_message(&mut self, m: XMsg) {\n\
                     match m { XMsg::Query => { send(XMsg::Chit); }, _ => {} }\n\
                 }\n\
             }\n",
        )];
        let diags = run(&files, &["crates/x/src"], &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("XMsg::Chit"));
    }

    #[test]
    fn e001_skips_generic_passthrough_impls() {
        let files = [fa(
            "crates/x/src/wrap.rs",
            "struct Wrap<P>(P);\n\
             impl<P: Protocol> Protocol for Wrap<P> { type Msg = P::Msg; }\n",
        )];
        assert!(run(&files, &["crates/x/src"], &[]).is_empty());
    }

    #[test]
    fn e002_flags_uncovered_variants_in_cover_file() {
        let files = [
            fa("crates/s/src/ev.rs", "pub enum Ev { A, B, C }\n"),
            fa(
                "crates/c/src/export.rs",
                "use crate::Ev;\nfn f(e: &Ev) { match e { Ev::A => {}, Ev::B => {}, _ => {} } }\n",
            ),
        ];
        let covers = [CoverSpec {
            enum_name: "Ev".to_owned(),
            def_file: "crates/s/src/ev.rs".to_owned(),
            cover_file: "crates/c/src/export.rs".to_owned(),
        }];
        let diags = run(&files, &[], &covers);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "E-002");
        assert!(diags[0].message.contains("Ev::C"));
    }

    #[test]
    fn e002_reports_missing_files_and_enums() {
        let files = [fa("crates/s/src/ev.rs", "pub enum Ev { A }\n")];
        let covers = [
            CoverSpec {
                enum_name: "Ev".to_owned(),
                def_file: "crates/s/src/ev.rs".to_owned(),
                cover_file: "crates/gone.rs".to_owned(),
            },
            CoverSpec {
                enum_name: "Missing".to_owned(),
                def_file: "crates/s/src/ev.rs".to_owned(),
                cover_file: "crates/s/src/ev.rs".to_owned(),
            },
        ];
        let diags = run(&files, &[], &covers);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "E-002"));
    }
}
