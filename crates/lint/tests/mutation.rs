//! Mutation check for the E-rules: deleting a real match arm from a
//! real chain crate must trip E-001. This is the linter's own
//! falsifiability test — a coverage rule that cannot detect a removed
//! arm is theatre.
//!
//! The check copies `crates/avalanche/src` into a temp workspace,
//! verifies the pristine copy produces zero E-001 findings, then
//! textually removes the `AvalancheMsg::Accepted { … } => { … }` arm
//! (by brace matching) and asserts E-001 fires naming `Accepted`.

use stabl_lint::Engine;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

const MUTANT_CONFIG: &str =
    "[paths]\nskip = []\n\n[exhaustive]\ninclude = [\"crates/avalanche/src\"]\n";

/// Builds `<dir>/crates/avalanche/src` from the real crate plus a
/// minimal `lint.toml` scoping only the E-rules.
fn set_up(dir: &Path) {
    let src_dir = dir.join("crates/avalanche/src");
    fs::create_dir_all(&src_dir).expect("mutant src dir");
    let real = repo_root().join("crates/avalanche/src");
    for entry in fs::read_dir(&real).expect("read avalanche src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            fs::copy(&path, src_dir.join(path.file_name().expect("file name")))
                .expect("copy source file");
        }
    }
    fs::write(dir.join("lint.toml"), MUTANT_CONFIG).expect("write config");
}

fn e001_messages(dir: &Path) -> Vec<String> {
    Engine::from_root(dir)
        .expect("config parses")
        .run()
        .expect("scan succeeds")
        .diagnostics
        .into_iter()
        .filter(|d| d.rule == "E-001")
        .map(|d| d.message)
        .collect()
}

/// Removes the whole `marker … => { … }` arm from `src`, matching the
/// body's braces so nested blocks survive.
fn remove_arm(src: &str, marker: &str) -> String {
    let start = src.find(marker).expect("arm marker present");
    let body_open = start + src[start..].find("=> {").expect("arm body opens") + 3;
    let bytes = src.as_bytes();
    let mut depth = 0usize;
    let mut end = body_open;
    for (i, &b) in bytes.iter().enumerate().skip(body_open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = i + 1;
                    break;
                }
            }
            _ => {}
        }
    }
    assert!(end > body_open, "arm body closes");
    format!("{}{}", &src[..start], &src[end..])
}

#[test]
fn deleting_a_msg_match_arm_trips_e001() {
    let dir = std::env::temp_dir().join(format!("stabl-lint-mutation-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    set_up(&dir);

    let pristine = e001_messages(&dir);
    assert!(
        pristine.is_empty(),
        "pristine avalanche copy must be arm-complete: {pristine:?}"
    );

    let node = dir.join("crates/avalanche/src/node.rs");
    let src = fs::read_to_string(&node).expect("read node.rs");
    // Drop the handler arm, then the `| Accepted { .. }` leg of the
    // cost match — E-001 counts any pattern in the crate as coverage,
    // so simulating a silently-dropped variant means removing both.
    let mutated = remove_arm(&src, "AvalancheMsg::Accepted { height, hash } =>");
    let mutated = mutated.replace("| AvalancheMsg::Accepted { .. }", "");
    assert_ne!(src, mutated);
    fs::write(&node, mutated).expect("write mutant");

    let findings = e001_messages(&dir);
    assert!(
        findings
            .iter()
            .any(|m| m.contains("AvalancheMsg::Accepted")),
        "E-001 must name the deleted arm, got: {findings:?}"
    );

    fs::remove_dir_all(&dir).ok();
}
