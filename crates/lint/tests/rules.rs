//! Rule-engine tests: per-rule positive, suppressed and out-of-scope
//! fixtures, driven through the full [`stabl_lint::Engine`] on the
//! fixture workspace under `tests/fixtures/ws`.

use stabl_lint::rules::{scan_file, FileScope};
use stabl_lint::{Diagnostic, Engine, Severity};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn fixture_report() -> Vec<Diagnostic> {
    let engine = Engine::from_root(fixture_root()).expect("fixture lint.toml parses");
    engine.run().expect("fixture scan succeeds").diagnostics
}

fn active<'a>(diags: &'a [Diagnostic], rule: &str, file: &str) -> Vec<&'a Diagnostic> {
    diags
        .iter()
        .filter(|d| d.rule == rule && d.file == file && d.suppressed.is_none())
        .collect()
}

fn suppressed<'a>(diags: &'a [Diagnostic], rule: &str, file: &str) -> Vec<&'a Diagnostic> {
    diags
        .iter()
        .filter(|d| d.rule == rule && d.file == file && d.suppressed.is_some())
        .collect()
}

// ---------------------------------------------------------------- D-rules

#[test]
fn d001_wall_clock_positive() {
    let diags = fixture_report();
    let hits = active(&diags, "D-001", "crates/sim/src/clock.rs");
    assert_eq!(hits.len(), 2, "{hits:?}"); // Instant::now + SystemTime::now
    assert_eq!(hits[0].line, 6);
}

#[test]
fn d002_ambient_rng_positive() {
    let diags = fixture_report();
    let hits = active(&diags, "D-002", "crates/sim/src/clock.rs");
    assert_eq!(hits.len(), 2, "{hits:?}"); // thread_rng + rand::random
}

#[test]
fn d003_containers_positive() {
    let diags = fixture_report();
    let hits = active(&diags, "D-003", "crates/sim/src/clock.rs");
    // use{HashMap,HashSet} + two decl sites with type and ::new each.
    assert!(hits.len() >= 4, "{hits:?}");
}

#[test]
fn d_rules_suppressed_with_reason() {
    let diags = fixture_report();
    assert!(active(&diags, "D-001", "crates/sim/src/suppressed.rs").is_empty());
    assert!(active(&diags, "D-003", "crates/sim/src/suppressed.rs").is_empty());
    let sup = suppressed(&diags, "D-001", "crates/sim/src/suppressed.rs");
    assert_eq!(sup.len(), 1);
    assert!(sup[0]
        .suppressed
        .as_deref()
        .is_some_and(|r| r.contains("above-line")));
}

#[test]
fn d_rules_out_of_scope_crate_is_clean() {
    let diags = fixture_report();
    assert!(
        diags.iter().all(|d| d.file != "crates/other/src/free.rs"),
        "{diags:?}"
    );
}

#[test]
fn test_code_in_scope_is_exempt() {
    let diags = fixture_report();
    // clock.rs has Instant::now + HashMap inside #[cfg(test)] mod: the
    // only D-001 hits are the two library ones asserted above.
    let all_d1 = active(&diags, "D-001", "crates/sim/src/clock.rs");
    assert!(all_d1.iter().all(|d| d.line < 33), "{all_d1:?}");
}

// ---------------------------------------------------------------- R-rules

#[test]
fn r001_unwrap_positive_and_total_alternatives_clean() {
    let diags = fixture_report();
    let hits = active(&diags, "R-001", "crates/core/src/lib_code.rs");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 5);
    // unwrap_or is not flagged anywhere in the file.
    assert!(hits.iter().all(|d| d.line != 27));
}

#[test]
fn r002_expect_positive() {
    let diags = fixture_report();
    let hits = active(&diags, "R-002", "crates/core/src/lib_code.rs");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].line, 9);
}

#[test]
fn r003_panic_and_todo_positive() {
    let diags = fixture_report();
    let hits = active(&diags, "R-003", "crates/core/src/lib_code.rs");
    assert_eq!(hits.len(), 2, "{hits:?}"); // panic! + todo!
}

#[test]
fn r001_suppressed_with_reason() {
    let diags = fixture_report();
    let sup = suppressed(&diags, "R-001", "crates/core/src/lib_code.rs");
    assert_eq!(sup.len(), 1);
    assert_eq!(sup[0].line, 22);
}

#[test]
fn r004_exit_banned_in_library_code() {
    let diags = fixture_report();
    let hits = active(&diags, "R-004", "crates/core/src/exit.rs");
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].line, 3);
}

#[test]
fn r_rules_skip_src_bin() {
    let diags = fixture_report();
    assert!(
        diags
            .iter()
            .all(|d| d.file != "crates/core/src/bin/tool.rs"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- S-rules

#[test]
fn s001_unlisted_serialize_types() {
    let diags = fixture_report();
    let hits = active(&diags, "S-001", "crates/core/src/types.rs");
    let names: Vec<&str> = hits.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(hits.len(), 2, "{names:?}"); // Unlisted (derive) + Manual (impl)
    assert!(names.iter().any(|m| m.contains("`Unlisted`")));
    assert!(names.iter().any(|m| m.contains("`Manual`")));
    // Listed is covered by the manifest; Tolerated is suppressed.
    assert!(names.iter().all(|m| !m.contains("`Listed`")));
    assert_eq!(
        suppressed(&diags, "S-001", "crates/core/src/types.rs").len(),
        1
    );
}

#[test]
fn s002_stale_manifest_entry() {
    let diags = fixture_report();
    let hits = active(&diags, "S-002", "crates/bench/src/engine.rs");
    assert_eq!(hits.len(), 1);
    assert!(hits[0].message.contains("`Ghost`"));
}

// ---------------------------------------------------------------- X-rules

#[test]
fn x001_malformed_suppressions() {
    let diags = fixture_report();
    let hits = active(&diags, "X-001", "crates/core/src/badsup.rs");
    assert_eq!(hits.len(), 2, "{hits:?}"); // missing reason + unknown rule
    assert!(hits.iter().any(|d| d.message.contains("no reason")));
    assert!(hits.iter().any(|d| d.message.contains("Z-999")));
}

#[test]
fn x002_unused_suppression_is_a_warning() {
    let diags = fixture_report();
    let hits: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == "X-002" && d.file == "crates/core/src/badsup.rs")
        .collect();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].severity, Severity::Warning);
}

// ------------------------------------------------------------ path skips

#[test]
fn skipped_paths_are_never_scanned() {
    let diags = fixture_report();
    assert!(diags.iter().all(|d| !d.file.starts_with("skipped/")));
}

// -------------------------------------------------------- scan_file unit

#[test]
fn scan_file_scopes_gate_rule_families() {
    let src = "pub fn f(v: Option<u32>) -> u32 { let _ = std::time::Instant::now(); v.unwrap() }";
    let all = FileScope {
        determinism: true,
        robustness: true,
        exit_banned: true,
        cache: false,
        shard: false,
        numeric: false,
    };
    let scan = scan_file("x.rs", src, all, None);
    let rules: Vec<&str> = scan.diagnostics.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"D-001"));
    assert!(rules.contains(&"R-001"));

    let none = FileScope::default();
    assert!(scan_file("x.rs", src, none, None).diagnostics.is_empty());
}

#[test]
fn json_output_is_well_formed() {
    let engine = Engine::from_root(fixture_root()).expect("config");
    let report = engine.run().expect("scan");
    let json = report.json();
    assert!(json.contains("\"rule\": \"D-001\""));
    assert!(json.contains("\"errors\": "));
    // Balanced braces/brackets (cheap well-formedness check without a
    // JSON dependency).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
