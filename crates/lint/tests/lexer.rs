//! Lexer edge cases: comments, raw strings, lifetimes vs. char
//! literals, nested block comments, numeric literals.

use stabl_lint::lexer::{lex, test_spans, TokenKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn line_comments_are_stripped_and_recorded() {
    let lexed = lex("let x = 1; // Instant::now() here\nlet y = 2;");
    assert!(!lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "Instant"));
    assert_eq!(lexed.comments.len(), 1);
    assert_eq!(lexed.comments[0].line, 1);
    assert!(lexed.comments[0].text.contains("Instant::now()"));
}

#[test]
fn nested_block_comments() {
    let src = "/* outer /* inner HashMap */ still comment */ fn after() {}";
    let names = idents(src);
    assert_eq!(names, vec!["fn", "after"]);
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("inner HashMap"));
}

#[test]
fn multi_line_block_comment_tracks_end_line() {
    let lexed = lex("/* a\nb\nc */ x");
    assert_eq!(lexed.comments[0].line, 1);
    assert_eq!(lexed.comments[0].end_line, 3);
    assert_eq!(lexed.tokens[0].line, 3);
}

#[test]
fn plain_strings_hide_their_contents() {
    let names = idents(r#"let s = "HashMap and Instant::now and // comment"; done"#);
    assert_eq!(names, vec!["let", "s", "done"]);
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let names = idents(r#"let s = "a\"HashMap\"b"; after"#);
    assert_eq!(names, vec!["let", "s", "after"]);
}

#[test]
fn raw_strings_with_hashes() {
    let src = r####"let s = r#"has "quotes" and HashMap and // no comment"#; after"####;
    let names = idents(src);
    assert_eq!(names, vec!["let", "s", "after"]);
    assert!(lex(src).comments.is_empty());
}

#[test]
fn raw_string_double_hash() {
    let src = r####"let s = r##"inner "# still open"##; after"####;
    assert_eq!(idents(src), vec!["let", "s", "after"]);
}

#[test]
fn byte_strings_and_byte_chars() {
    let names = idents(r#"let a = b"HashMap"; let b2 = b'x'; after"#);
    assert_eq!(names, vec!["let", "a", "let", "b2", "after"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let lexed = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Char));
}

#[test]
fn char_literals_are_not_lifetimes() {
    let lexed = lex(r"let c = 'x'; let nl = '\n'; let q = '\''; let sp = ' ';");
    let chars: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars.len(), 4, "{chars:?}");
    assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
}

#[test]
fn raw_identifiers() {
    let lexed = lex("let r#type = 1;");
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "type"));
}

#[test]
fn range_is_not_a_float() {
    let lexed = lex("for i in 0..5 {}");
    let kinds: Vec<TokenKind> = lexed.tokens.iter().map(|t| t.kind).collect();
    assert!(kinds.contains(&TokenKind::Int));
    assert!(!kinds.contains(&TokenKind::Float));
}

#[test]
fn floats_and_suffixes() {
    let lexed = lex("let a = 1.5; let b = 1e-3; let c = 2f64; let d = 0xff_u32;");
    let floats = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Float)
        .count();
    assert_eq!(floats, 3); // 1.5, 1e-3, 2f64
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Int && t.text == "0xff_u32"));
}

#[test]
fn positions_are_one_based() {
    let lexed = lex("ab cd\n  ef");
    assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
    assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (1, 4));
    assert_eq!((lexed.tokens[2].line, lexed.tokens[2].col), (2, 3));
}

#[test]
fn unterminated_string_does_not_panic() {
    let lexed = lex("let s = \"never closed");
    assert_eq!(
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .count(),
        1
    );
}

#[test]
fn cfg_test_mod_spans_cover_the_module() {
    let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
    let lexed = lex(src);
    let spans = test_spans(&lexed.tokens);
    assert_eq!(spans.len(), 1);
    let (a, b) = spans[0];
    let covered: Vec<&str> = lexed.tokens[a..b].iter().map(|t| t.text.as_str()).collect();
    assert!(covered.contains(&"unwrap"));
    // Library code on either side is outside the span.
    let outside: Vec<&str> = lexed.tokens[..a]
        .iter()
        .chain(&lexed.tokens[b..])
        .map(|t| t.text.as_str())
        .collect();
    assert!(outside.contains(&"lib"));
    assert!(outside.contains(&"lib2"));
    assert!(!outside.contains(&"unwrap"));
}

#[test]
fn cfg_not_test_is_not_a_test_span() {
    let src = "#[cfg(not(test))]\nmod real { fn f() { x.unwrap(); } }";
    let lexed = lex(src);
    assert!(test_spans(&lexed.tokens).is_empty());
}
