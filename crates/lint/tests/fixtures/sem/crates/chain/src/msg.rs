//! Fixture protocol message enum. `Orphan` has no match arm anywhere
//! in this crate — E-001 must flag it at this definition.

pub enum ChainMsg {
    Ping { from: u32 },
    Pong,
    Orphan(u64),
}
