//! Fixture ambient state: `static mut` (P-001) and `thread_local!`
//! (P-002) in a shard-certified crate. The plain `static` and the
//! test-module copy below are negative controls.

pub static LIMIT: u64 = 64;

pub static mut TICKS: u64 = 0;

thread_local! {
    static SCRATCH: Vec<u8> = Vec::new();
}

#[cfg(test)]
mod tests {
    static mut TEST_ONLY: u64 = 0;

    #[test]
    fn touches_test_state() {
        let _ = &raw const TEST_ONLY;
    }
}
