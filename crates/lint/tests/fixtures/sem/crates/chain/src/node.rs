//! Fixture node with seeded semantic violations:
//!
//! * a `use … as` alias hiding a `HashMap` (D-003 must see through it)
//! * `Arc` reachable from a `Protocol` handler (P-003 with a call path)
//! * a float `==` comparison (N-001)
//! * a truncating cast of a seed (N-002)
//! * raw `+` on `.as_micros()` output (N-003)
//! * `ChainMsg::Orphan` is *constructed* in an arm body but never
//!   matched — construction must not count as coverage (E-001).

use crate::msg::ChainMsg;
use std::collections::HashMap as Registry;
use std::sync::Arc;

pub struct ChainNode {
    peers: Registry<u32, u64>,
    shared: Option<Arc<u64>>,
}

impl Protocol for ChainNode {
    type Msg = ChainMsg;

    fn on_message(&mut self, msg: ChainMsg, now: u64, seed: u64) {
        let reading = 0.5f64;
        if reading == 0.5 {
            let _ = seed as u32;
        }
        let _deadline = now.as_micros() + 5;
        match msg {
            ChainMsg::Ping { from } => {
                self.remember(from);
                self.reply(ChainMsg::Orphan(42));
            }
            ChainMsg::Pong => {}
            _ => {}
        }
    }
}

impl ChainNode {
    fn remember(&mut self, from: u32) {
        self.peers.insert(from, 1);
        self.share(from);
    }

    fn share(&mut self, from: u32) {
        self.shared = Some(Arc::new(u64::from(from)));
    }

    fn reply(&mut self, _msg: ChainMsg) {}
}
