//! Fixture event enum for the E-002 covers check: `Trace` is missing
//! from `export.rs` and must be flagged at its definition here.

pub enum Ev {
    Started,
    Finished,
    Trace,
}
