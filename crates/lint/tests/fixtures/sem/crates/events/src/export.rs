//! Fixture exporter covering only two of the three `Ev` variants.

use crate::ev::Ev;

pub fn export(ev: &Ev) -> &'static str {
    match ev {
        Ev::Started => "started",
        Ev::Finished => "finished",
        _ => "other",
    }
}
