// Under a skipped path: never scanned, violations invisible.
pub fn invisible() {
    let _ = std::time::Instant::now();
    panic!("never seen");
}
