// Out-of-scope fixture: the same patterns as the positive fixtures,
// in a crate no rule family covers. Must produce zero diagnostics.
use std::collections::HashMap;

pub fn everything_goes() -> u64 {
    let _ = std::time::Instant::now();
    let m: HashMap<u32, u32> = HashMap::new();
    let v = m.get(&0).copied();
    let out = v.unwrap();
    if out > 100 {
        panic!("even this is fine here");
    }
    out
}
