// D-rule positive fixture: every determinism violation once.
use std::collections::{HashMap, HashSet};
use std::time::{Instant, SystemTime};

pub fn wall_clock() -> Instant {
    Instant::now()
}

pub fn wall_clock_sys() -> u64 {
    let _ = SystemTime::now();
    0
}

pub fn ambient_rng() -> u64 {
    let rng = thread_rng();
    rand::random()
}

pub fn containers() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s: HashSet<u32> = HashSet::new();
    let _ = (m, s);
}

// Comments and strings must NOT trip the rules:
// Instant::now() in a comment is fine.
pub fn innocent() -> &'static str {
    "Instant::now() and HashMap in a string are fine"
}

/* Block comment: SystemTime::now, thread_rng, HashSet — all fine.
   /* nested: rand::random */ still inside the comment. */

#[cfg(test)]
mod tests {
    // Test code is exempt from D-rules.
    use std::collections::HashMap;
    #[test]
    fn test_code_is_exempt() {
        let _ = HashMap::<u32, u32>::new();
        let _ = std::time::Instant::now();
    }
}
