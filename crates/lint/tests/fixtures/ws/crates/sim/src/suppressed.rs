// D-rule suppressed fixture: violations covered by allow() comments.
use std::collections::HashMap; // stabl-lint: allow(D-003, fixture demonstrating a trailing same-line suppression)

pub fn slow_path_cache() -> u64 {
    // stabl-lint: allow(D-001, fixture demonstrating an above-line suppression)
    let _ = std::time::Instant::now();
    0
}

pub fn lookup_only() -> u64 {
    // stabl-lint: allow(D-003, fixture demonstrating reasoned container use)
    let m: HashMap<u32, u32> = HashMap::new();
    m.len() as u64
}
