// X-rule fixtures: malformed and unused suppressions.

// stabl-lint: allow(R-001)
pub fn missing_reason(v: Option<u32>) -> u32 {
    v.unwrap()
}

// stabl-lint: allow(Z-999, no such rule)
pub fn unknown_rule() {}

// stabl-lint: allow(R-003, nothing here panics so this is unused)
pub fn no_panic_here() {}
