// R-004 out-of-scope fixture: binaries may choose the exit code, and
// library R-rules do not apply under src/bin.
fn main() {
    let v: Option<u32> = Some(2);
    let _ = v.unwrap();
    std::process::exit(0);
}
