// S-001 fixtures: one listed type, one unlisted derive, one unlisted
// manual impl, one suppressed.

#[derive(Serialize)]
pub struct Listed {
    pub x: u32,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Unlisted {
    pub y: u32,
}

pub struct Manual;

impl Serialize for Manual {
    fn to_content(&self) {}
}

// stabl-lint: allow(S-001, fixture demonstrating a reasoned unlisted type)
#[derive(Serialize)]
pub struct Tolerated {
    pub z: u32,
}
