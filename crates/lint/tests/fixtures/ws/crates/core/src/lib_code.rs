// R-rule fixtures: unwrap/expect/panic/todo in library code, one
// suppressed, test module exempt.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn bad_panic() {
    panic!("boom");
}

pub fn bad_todo() {
    todo!()
}

pub fn tolerated(v: Option<u32>) -> u32 {
    // stabl-lint: allow(R-001, fixture demonstrating a reasoned unwrap)
    v.unwrap()
}

pub fn fine(v: Option<u32>) -> u32 {
    // unwrap_or is total: not a violation.
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
