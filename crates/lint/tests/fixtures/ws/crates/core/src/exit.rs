// R-004 positive fixture: process::exit in library code.
pub fn die() {
    std::process::exit(1);
}
