// Fixture manifest: `Listed` is covered; `Ghost` is stale (no
// Serialize impl anywhere) and must raise S-002; `Tolerated` is
// deliberately unlisted (its S-001 is suppressed at the use site).
pub const CACHE_SCHEMA_VERSION: u32 = 1;
// stabl-lint: cache-schema: Listed, Ghost
