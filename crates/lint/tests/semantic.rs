//! Integration tests for the v2 semantic rules (P/E/N families,
//! alias-aware D-rules) and the baseline ratchet, driven through the
//! full [`stabl_lint::Engine`] on the fixture workspace under
//! `tests/fixtures/sem`.

use stabl_lint::baseline::Baseline;
use stabl_lint::{Diagnostic, Engine};
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/sem")
}

fn fixture_report() -> Vec<Diagnostic> {
    Engine::from_root(fixture_root())
        .expect("config parses")
        .run()
        .expect("scan succeeds")
        .diagnostics
}

fn rules_at(diags: &[Diagnostic], file: &str) -> Vec<&'static str> {
    diags
        .iter()
        .filter(|d| d.file == file)
        .map(|d| d.rule)
        .collect()
}

#[test]
fn d003_sees_through_use_aliases() {
    let diags = fixture_report();
    let hidden: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.rule == "D-003" && d.message.contains("alias"))
        .collect();
    assert!(
        hidden
            .iter()
            .any(|d| d.file == "crates/chain/src/node.rs" && d.message.contains("Registry")),
        "aliased HashMap must be flagged: {diags:?}"
    );
}

#[test]
fn e001_flags_the_unmatched_variant_at_its_definition() {
    let diags = fixture_report();
    let orphan: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "E-001").collect();
    assert_eq!(orphan.len(), 1, "{orphan:?}");
    assert_eq!(orphan[0].file, "crates/chain/src/msg.rs");
    assert!(
        orphan[0].message.contains("ChainMsg::Orphan"),
        "construction in an arm body is not coverage: {}",
        orphan[0].message
    );
}

#[test]
fn e002_flags_the_uncovered_event_variant() {
    let diags = fixture_report();
    let uncovered: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "E-002").collect();
    assert_eq!(uncovered.len(), 1, "{uncovered:?}");
    assert_eq!(uncovered[0].file, "crates/events/src/ev.rs");
    assert!(uncovered[0].message.contains("Ev::Trace"));
    assert!(uncovered[0].message.contains("export.rs"));
}

#[test]
fn n_rules_flag_float_eq_seed_cast_and_raw_time_arithmetic() {
    let diags = fixture_report();
    let node = rules_at(&diags, "crates/chain/src/node.rs");
    for rule in ["N-001", "N-002", "N-003"] {
        assert!(node.contains(&rule), "missing {rule} in {node:?}");
    }
}

#[test]
fn p_rules_flag_ambient_state_and_annotate_handler_paths() {
    let diags = fixture_report();
    let state = rules_at(&diags, "crates/chain/src/state.rs");
    assert!(state.contains(&"P-001"), "static mut: {state:?}");
    assert!(state.contains(&"P-002"), "thread_local!: {state:?}");
    assert_eq!(
        state.iter().filter(|r| **r == "P-001").count(),
        1,
        "the #[cfg(test)] static mut is exempt"
    );
    let arc_in_handler = diags.iter().find(|d| {
        d.rule == "P-003"
            && d.file == "crates/chain/src/node.rs"
            && d.message.contains("reachable from handler")
    });
    let arc = arc_in_handler.expect("Arc reachable from on_message is flagged with a path");
    assert!(
        arc.message.contains("on_message → remember → share"),
        "expected the call path, got: {}",
        arc.message
    );
}

#[test]
fn certification_is_voided_by_findings() {
    let report = Engine::from_root(fixture_root())
        .expect("config parses")
        .run()
        .expect("scan succeeds");
    let cert = report
        .certifications
        .iter()
        .find(|c| c.crate_key == "crates/chain")
        .expect("chain crate has a certification row");
    assert!(!cert.certified, "P findings must void the certificate");
    assert!(cert.findings > 0);
}

#[test]
fn baseline_ratchet_tolerates_debt_then_forces_shrink() {
    let dir = std::env::temp_dir().join(format!("stabl-lint-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("lint-baseline.json");

    // Record every current finding as debt, then rerun with the
    // ratchet: nothing fails the build, everything is marked.
    let engine = Engine::from_root(fixture_root()).expect("config parses");
    let report = engine.run().expect("scan succeeds");
    let unbaselined = report.errors().count();
    assert!(unbaselined > 0, "fixture must have findings");
    let baseline = Baseline::from_diagnostics(report.diagnostics.iter());
    std::fs::write(&path, baseline.render()).expect("write baseline");

    let engine = Engine::from_root(fixture_root())
        .expect("config parses")
        .with_baseline(&path);
    let report = engine.run().expect("scan succeeds");
    assert_eq!(report.errors().count(), 0, "all debt tolerated");
    assert_eq!(report.baselined().count(), unbaselined);
    let cert = report
        .certifications
        .iter()
        .find(|c| c.crate_key == "crates/chain")
        .expect("certification row");
    assert!(
        !cert.certified,
        "baselined P debt still voids the certificate"
    );

    // A baseline that allows more than remains is stale: B-001.
    let mut inflated = baseline.clone();
    inflated.entries[0].count += 1;
    std::fs::write(&path, inflated.render()).expect("write baseline");
    let engine = Engine::from_root(fixture_root())
        .expect("config parses")
        .with_baseline(&path);
    let report = engine.run().expect("scan succeeds");
    let stale: Vec<&Diagnostic> = report.errors().filter(|d| d.rule == "B-001").collect();
    assert_eq!(stale.len(), 1, "{stale:?}");
    assert!(stale[0].message.contains("ratchet down"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixture_report_is_deterministic() {
    let a = Engine::from_root(fixture_root())
        .expect("config parses")
        .run()
        .expect("scan succeeds")
        .json();
    let b = Engine::from_root(fixture_root())
        .expect("config parses")
        .run()
        .expect("scan succeeds")
        .json();
    assert_eq!(a, b, "two runs must be byte-identical");
}
