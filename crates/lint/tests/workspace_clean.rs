//! Self-test: the committed workspace lints clean, and the CLI's exit
//! codes match its findings.

use stabl_lint::Engine;
use std::path::PathBuf;
use std::process::Command;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn workspace_lints_clean() {
    let engine = Engine::from_root(repo_root()).expect("lint.toml parses");
    let report = engine.run().expect("scan succeeds");
    let errors: Vec<String> = report
        .errors()
        .map(|d| {
            format!(
                "{}:{}:{}: [{}] {}",
                d.file, d.line, d.col, d.rule, d.message
            )
        })
        .collect();
    assert!(
        errors.is_empty(),
        "workspace must lint clean; found:\n{}",
        errors.join("\n")
    );
    assert!(report.files_scanned > 50, "walked the whole workspace");
    assert_eq!(
        report.baselined().count(),
        0,
        "the committed lint-baseline.json must carry no debt"
    );
    let uncertified: Vec<&str> = report
        .certifications
        .iter()
        .filter(|c| !c.certified)
        .map(|c| c.crate_key.as_str())
        .collect();
    assert!(
        uncertified.is_empty(),
        "kernel and chain crates must certify shard-safe: {uncertified:?}"
    );
    assert_eq!(
        report.certifications.len(),
        7,
        "sim, the five chains and the workload generator are certified"
    );
}

#[test]
fn workspace_suppressions_all_carry_reasons() {
    let engine = Engine::from_root(repo_root()).expect("lint.toml parses");
    let report = engine.run().expect("scan succeeds");
    for diag in report.suppressed() {
        let reason = diag.suppressed.as_deref().unwrap_or("");
        assert!(
            reason.len() >= 10,
            "suppression at {}:{} has a trivial reason: {reason:?}",
            diag.file,
            diag.line
        );
    }
}

#[test]
fn cli_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_stabl-lint"))
        .args(["--root"])
        .arg(repo_root())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_exits_nonzero_on_fixture_violations_with_json() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    let out = Command::new(env!("CARGO_BIN_EXE_stabl-lint"))
        .args(["--format", "json", "--root"])
        .arg(&fixture)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    // Correct rule id, file and line for a known violation
    // (Instant::now on clock.rs line 6).
    assert!(json.contains("\"rule\": \"D-001\""), "{json}");
    assert!(json.contains("\"file\": \"crates/sim/src/clock.rs\""));
    assert!(json.contains("\"line\": 6"));
}

#[test]
fn cli_lists_rules() {
    let out = Command::new(env!("CARGO_BIN_EXE_stabl-lint"))
        .arg("--list-rules")
        .output()
        .expect("binary runs");
    let text = String::from_utf8_lossy(&out.stdout);
    for id in [
        "B-001", "D-001", "D-002", "D-003", "E-001", "E-002", "N-001", "N-002", "N-003", "P-001",
        "P-002", "P-003", "P-004", "P-005", "P-006", "R-001", "R-002", "R-003", "R-004", "S-001",
    ] {
        assert!(text.contains(id), "missing {id} in --list-rules");
    }
}
