//! Seed-compatibility pins: the paper-standard workload routed through
//! this crate must reproduce the submission streams the seed generator
//! produced, byte for byte.
//!
//! The hashes below were computed against the pre-refactor
//! `crates/core/src/workload.rs` generator (the one every committed
//! artifact under `results/` was produced with). If any of these
//! change, every golden artifact in the repository is invalidated —
//! that is a release decision, not a test update.

use stabl_sim::SimTime;
use stabl_types::Sha256;
use stabl_workload::{Submission, WorkloadSpec};

/// Hashes a submission stream exactly as the pinning tool did: for each
/// submission in order, the big-endian micros, client index and
/// transaction id digest.
fn stream_hash(submissions: &[Submission]) -> String {
    let mut hasher = Sha256::new();
    for s in submissions {
        hasher.update(&s.at.as_micros().to_be_bytes());
        hasher.update(&(s.client as u64).to_be_bytes());
        hasher.update(s.transaction.id().hash().as_bytes());
    }
    let digest = hasher.finalize();
    digest
        .as_bytes()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

fn check(end_secs: u64, expected_len: usize, expected_hash: &str) {
    let spec = WorkloadSpec::paper_standard(SimTime::from_secs(end_secs));
    let subs = spec.generate();
    assert_eq!(
        subs.len(),
        expected_len,
        "stream length for end={end_secs}s"
    );
    assert_eq!(
        stream_hash(&subs),
        expected_hash,
        "paper-standard stream for end={end_secs}s diverged from the seed"
    );
    // The seeded entry point must take the identical legacy path.
    for seed in [0, 0xB10C_7357, u64::MAX] {
        assert_eq!(spec.generate_seeded(seed), subs, "seed {seed} perturbed it");
    }
}

#[test]
fn paper_standard_19s_matches_seed() {
    // The quick-scenario window (PaperSetup::quick horizons).
    check(
        19,
        3600,
        "11799b66655f45bf651d639ba2bdb30b13c4eb93bf6237b0f410aeecae713845",
    );
}

#[test]
fn paper_standard_25s_matches_seed() {
    // The RunConfig::default window.
    check(
        25,
        4800,
        "80838a6dc58b064e870793a3596887c9d869f06dc1c8b0694827e1d626322940",
    );
}

#[test]
fn paper_standard_380s_matches_seed() {
    // The full-scale paper window (400 s horizon, submissions to 380 s).
    check(
        380,
        75800,
        "19f35fe89d96a0612cfe7d89c2e233eae436a5b706edb3e10f588fbb86e6bfb5",
    );
}
