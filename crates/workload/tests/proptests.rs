//! Property tests for the production traffic model.
//!
//! The load-bearing properties the campaign machinery relies on: the
//! Zipf sampler is pure in the seed (one stream per seed, forever) and
//! actually rank-skewed; the account population materializes at most
//! its active set no matter how large the declared population; and
//! arrival processes produce event counts consistent with their
//! closed-form mean rates.

use proptest::prelude::*;

use stabl_sim::{DetRng, SimDuration, SimTime};
use stabl_workload::{ArrivalProcess, ConflictProfile, TrafficModel, ZipfSampler};

fn thetas() -> impl Strategy<Value = u32> {
    // The 0..1 arm pins the uniform special case; the other arm spans
    // the skewed range including the θ = 1 harmonic point.
    prop_oneof![0u32..1, 1u32..2000]
}

proptest! {
    /// Purity: the same seed yields the same sample stream, and the
    /// sampler itself carries no hidden state between streams.
    #[test]
    fn zipf_streams_are_pure(seed in any::<u64>(), theta in thetas(), n in 1u64..5_000_000) {
        let zipf = ZipfSampler::new(n, theta);
        let mut a = DetRng::new(seed);
        let first: Vec<u64> = (0..64).map(|_| zipf.sample(&mut a)).collect();
        let mut b = DetRng::new(seed);
        let again: Vec<u64> = (0..64).map(|_| zipf.sample(&mut b)).collect();
        prop_assert_eq!(&first, &again);
        prop_assert!(first.iter().all(|&rank| rank < n));
    }

    /// Rank-frequency monotonicity: binned by rank decade, lower ranks
    /// are sampled at least as often as higher ranks (for skewed θ).
    #[test]
    fn zipf_rank_frequency_is_monotone(seed in any::<u64>(), theta in 600u32..1500) {
        let n = 1000u64;
        let zipf = ZipfSampler::new(n, theta);
        let mut rng = DetRng::new(seed);
        // Equal-width rank bins: per-rank mass is strictly decreasing
        // in rank for any θ > 0, so each bin's count must not exceed
        // its lower-ranked neighbour beyond sampling noise.
        let mut bins = [0u64; 10];
        for _ in 0..8000 {
            bins[(zipf.sample(&mut rng) / 100) as usize] += 1;
        }
        for pair in bins.windows(2) {
            prop_assert!(pair[0] + 200 >= pair[1], "{bins:?}");
        }
        // And the head must genuinely dominate (catches an accidental
        // fallback to uniform, which the slack above would let through).
        prop_assert!(bins[0] >= 2 * bins[9], "head not hot: {bins:?}");
    }

    /// Memory bound: a 10M-account population materializes at most
    /// 2 entries per generated transfer (sender + receiver), however
    /// the model is parameterized.
    #[test]
    fn population_materializes_at_most_the_active_set(
        seed in any::<u64>(),
        theta in thetas(),
        secs in 1u64..8,
        hot_permille in 0u32..1000,
    ) {
        let model = TrafficModel {
            accounts: 10_000_000,
            theta_permille: theta,
            arrival: ArrivalProcess::Poisson { tps: 25 },
            conflict: ConflictProfile::HotSpot { permille: hot_permille },
        };
        let start = SimTime::from_secs(1);
        let end = start + SimDuration::from_secs(secs);
        let (subs, pop) = model.generate_with_population(3, start, end, seed);
        prop_assert_eq!(pop.declared(), 10_000_000);
        prop_assert!(
            pop.materialized() <= 2 * subs.len(),
            "{} materialized for {} transfers", pop.materialized(), subs.len()
        );
    }

    /// Arrival counts track the closed-form mean: over a long window,
    /// the thinned-Poisson count lands within 5σ of mean·window.
    #[test]
    fn arrival_counts_match_closed_form(seed in any::<u64>(), process_idx in 0usize..4) {
        let secs = 60u64;
        let process = match process_idx {
            0 => ArrivalProcess::Poisson { tps: 30 },
            1 => ArrivalProcess::BurstTrain {
                base_tps: 10,
                period: SimDuration::from_secs(6),
                burst_len: SimDuration::from_secs(1),
                factor: 4,
            },
            2 => ArrivalProcess::Diurnal {
                mean_tps: 30,
                period: SimDuration::from_secs(20),
                amplitude_permille: 700,
            },
            _ => ArrivalProcess::Constant { tps: 30 },
        };
        let window = SimDuration::from_secs(secs);
        let expected = (process.mean_tps(window) * secs) as f64;
        let start = SimTime::from_secs(1);
        let got = process
            .arrivals(start, start + window, &mut DetRng::new(seed))
            .len() as f64;
        // Poisson σ = sqrt(mean); 5σ keeps the flake rate ≈ 0 across
        // the proptest case budget while still catching rate bugs.
        let slack = 5.0 * expected.sqrt();
        prop_assert!(
            (got - expected).abs() <= slack,
            "expected {expected} ± {slack}, got {got}"
        );
    }

    /// End-to-end purity: the full schedule is a pure function of the
    /// seed for arbitrary model parameters.
    #[test]
    fn schedules_are_pure(seed in any::<u64>(), theta in thetas(), burst in 1u32..20) {
        let model = TrafficModel::production(theta, burst);
        let start = SimTime::from_secs(1);
        let end = SimTime::from_secs(5);
        prop_assert_eq!(
            model.generate(2, start, end, seed),
            model.generate(2, start, end, seed)
        );
    }
}
