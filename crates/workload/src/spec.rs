//! The workload specification: the paper's constant-rate transfers plus
//! the production traffic extension.
//!
//! The paper fixes 200 TPS total from 5 clients (40 TPS each), each
//! client pinned to one blockchain node, with failures injected only on
//! the nodes that serve no client — so faulty nodes never lose
//! transactions they were the sole recipient of (§3).
//!
//! The legacy deterministic grid generator lives here unchanged (moved
//! from `crates/core/src/workload.rs`, which re-exports these types):
//! a spec whose `traffic` is `None` produces submissions byte-identical
//! to every artifact the suite has ever committed. Setting `traffic`
//! routes generation through [`TrafficModel`] instead, which is where
//! Zipf populations, bursty arrivals and conflict profiles come in.

use stabl_sim::{SimDuration, SimTime};
use stabl_types::{AccountId, Transaction};

use crate::traffic::TrafficModel;

/// The time profile of the offered load.
///
/// The paper's workload is constant-rate (its §8 limitations name
/// fluctuating workloads and request bursts as future work); the other
/// shapes implement that extension. [`crate::ArrivalProcess`]
/// generalizes this family with stochastic arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadShape {
    /// Constant rate (the paper's workload).
    Constant,
    /// Periodic bursts: every `period`, the rate multiplies by `factor`
    /// for `burst_len`.
    Burst {
        /// Distance between burst starts.
        period: SimDuration,
        /// Burst duration (must not exceed `period`).
        burst_len: SimDuration,
        /// Rate multiplier during a burst.
        factor: u32,
    },
    /// Linear ramp from `tps_per_client` at `start` to this per-client
    /// rate at `end`.
    Ramp {
        /// Final per-client rate.
        end_tps_per_client: u64,
    },
}

/// One client's scheduled submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Submission {
    /// When the client sends it.
    pub at: SimTime,
    /// The submitting client's index.
    pub client: usize,
    /// The transfer itself.
    pub transaction: Transaction,
}

/// Specification of a transfer workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of clients (the paper: 5).
    pub clients: usize,
    /// Accounts per client; each account sends a strictly increasing
    /// nonce sequence. (Legacy grid generator only.)
    pub accounts_per_client: u32,
    /// Per-client submission rate (the paper: 40 TPS). (Legacy grid
    /// generator only; a traffic model carries its own rates.)
    pub tps_per_client: u64,
    /// First submission instant.
    pub start: SimTime,
    /// Submissions stop at this instant (exclusive).
    pub end: SimTime,
    /// The time profile of the rate. (Legacy grid generator only.)
    pub shape: WorkloadShape,
    /// Production traffic model; `None` selects the legacy grid
    /// generator (the paper's workload, byte-identical to the seed).
    pub traffic: Option<TrafficModel>,
}

impl WorkloadSpec {
    /// The paper's standard workload: 5 clients × 40 TPS from 1 s until
    /// `end`.
    pub fn paper_standard(end: SimTime) -> WorkloadSpec {
        WorkloadSpec {
            clients: 5,
            accounts_per_client: 4,
            tps_per_client: 40,
            start: SimTime::from_secs(1),
            end,
            shape: WorkloadShape::Constant,
            traffic: None,
        }
    }

    /// The paper-standard window driven by a production traffic model.
    pub fn production(end: SimTime, model: TrafficModel) -> WorkloadSpec {
        WorkloadSpec {
            traffic: Some(model),
            ..WorkloadSpec::paper_standard(end)
        }
    }

    /// The per-client rate in force at instant `at` (TPS).
    pub fn rate_at(&self, at: SimTime) -> u64 {
        match self.shape {
            WorkloadShape::Constant => self.tps_per_client,
            WorkloadShape::Burst {
                period,
                burst_len,
                factor,
            } => {
                let elapsed = at.saturating_since(self.start).as_micros();
                if period.as_micros() > 0 && elapsed % period.as_micros() < burst_len.as_micros() {
                    self.tps_per_client * factor as u64
                } else {
                    self.tps_per_client
                }
            }
            WorkloadShape::Ramp { end_tps_per_client } => {
                let window = self.end.saturating_since(self.start).as_micros().max(1);
                let elapsed = at.saturating_since(self.start).as_micros().min(window);
                let from = self.tps_per_client as i128;
                let to = end_tps_per_client as i128;
                (from + (to - from) * elapsed as i128 / window as i128).max(1) as u64
            }
        }
    }

    /// Total offered rate in transactions per second.
    pub fn total_tps(&self) -> u64 {
        match &self.traffic {
            None => self.clients as u64 * self.tps_per_client,
            Some(model) => {
                let window = self.end.saturating_since(self.start);
                self.clients as u64 * model.arrival.mean_tps(window)
            }
        }
    }

    /// Expected number of submissions (exact for the constant shape,
    /// the mean for stochastic traffic models).
    pub fn expected_count(&self) -> u64 {
        let window = self.end.saturating_since(self.start);
        window.as_micros() * self.total_tps() / 1_000_000
    }

    /// Generates the deterministic submission schedule of a legacy
    /// (grid) spec.
    ///
    /// Clients interleave their accounts round-robin; within an account,
    /// nonces increase by one per submission, so every chain's nonce
    /// rules are satisfiable in submission order.
    ///
    /// # Panics
    ///
    /// Panics on a zero-client, zero-account or zero-rate spec, if
    /// `end <= start`, or if the spec carries a traffic model (those
    /// need a seed — use [`generate_seeded`](Self::generate_seeded)).
    pub fn generate(&self) -> Vec<Submission> {
        assert!(
            self.traffic.is_none(),
            "traffic-model workloads are seeded; call generate_seeded"
        );
        assert!(
            self.clients > 0 && self.accounts_per_client > 0,
            "empty workload"
        );
        assert!(self.tps_per_client > 0, "zero rate");
        assert!(self.start < self.end, "empty submission window");
        if let WorkloadShape::Burst {
            period, burst_len, ..
        } = self.shape
        {
            assert!(burst_len <= period, "burst longer than its period");
        }
        let mut out = Vec::new();
        for client in 0..self.clients {
            let mut nonces = vec![0u64; self.accounts_per_client as usize];
            let mut at = self.start;
            let mut k = 0u64;
            while at < self.end {
                let local = (k % self.accounts_per_client as u64) as u32;
                let account = AccountId::new(client as u32 * self.accounts_per_client + local);
                let sink = AccountId::new(10_000 + account.as_u32());
                let transaction = Transaction::transfer(account, nonces[local as usize], sink, 1);
                nonces[local as usize] += 1;
                out.push(Submission {
                    at,
                    client,
                    transaction,
                });
                at += SimDuration::from_micros(1_000_000 / self.rate_at(at));
                k += 1;
            }
        }
        out.sort_by_key(|s| (s.at, s.client));
        out
    }

    /// Generates the submission schedule under `seed`.
    ///
    /// A legacy (grid) spec ignores the seed entirely — its schedule is
    /// the same byte-identical stream [`generate`](Self::generate)
    /// produces — so threading the run seed through the harness cannot
    /// perturb any committed artifact. A traffic-model spec derives all
    /// of its randomness from the seed.
    pub fn generate_seeded(&self, seed: u64) -> Vec<Submission> {
        match &self.traffic {
            None => self.generate(),
            Some(model) => model.generate(self.clients, self.start, self.end, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            clients: 3,
            accounts_per_client: 2,
            tps_per_client: 10,
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(3),
            shape: WorkloadShape::Constant,
            traffic: None,
        }
    }

    #[test]
    fn count_matches_rate() {
        let subs = spec().generate();
        assert_eq!(subs.len(), 60, "3 clients × 10 TPS × 2 s");
        assert_eq!(spec().expected_count(), 60);
        assert_eq!(spec().total_tps(), 30);
    }

    #[test]
    fn ids_are_unique_and_nonces_sequential() {
        let subs = spec().generate();
        let ids: HashSet<_> = subs.iter().map(|s| s.transaction.id()).collect();
        assert_eq!(ids.len(), subs.len());
        let mut per_account: HashMap<AccountId, Vec<(SimTime, u64)>> = HashMap::new();
        for s in &subs {
            per_account
                .entry(s.transaction.from())
                .or_default()
                .push((s.at, s.transaction.nonce()));
        }
        assert_eq!(per_account.len(), 6);
        for (account, mut seq) in per_account {
            seq.sort();
            for (i, (_, nonce)) in seq.iter().enumerate() {
                assert_eq!(*nonce, i as u64, "{account} nonce gap");
            }
        }
    }

    #[test]
    fn accounts_do_not_collide_across_clients() {
        let subs = spec().generate();
        let by_client: HashMap<usize, HashSet<AccountId>> =
            subs.iter().fold(HashMap::new(), |mut m, s| {
                m.entry(s.client).or_default().insert(s.transaction.from());
                m
            });
        for (a, set_a) in &by_client {
            for (b, set_b) in &by_client {
                if a != b {
                    assert!(set_a.is_disjoint(set_b));
                }
            }
        }
    }

    #[test]
    fn schedule_is_sorted_and_in_window() {
        let subs = spec().generate();
        assert!(subs.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(subs
            .iter()
            .all(|s| s.at >= SimTime::from_secs(1) && s.at < SimTime::from_secs(3)));
    }

    #[test]
    fn paper_standard_shape() {
        let w = WorkloadSpec::paper_standard(SimTime::from_secs(400));
        assert_eq!(w.total_tps(), 200);
        assert_eq!(w.clients, 5);
        assert!(w.traffic.is_none(), "the paper's workload is the grid");
    }

    #[test]
    #[should_panic(expected = "empty submission window")]
    fn inverted_window_rejected() {
        let mut w = spec();
        w.end = w.start;
        let _ = w.generate();
    }

    #[test]
    fn burst_shape_multiplies_rate_periodically() {
        let mut w = spec();
        w.end = SimTime::from_secs(11);
        w.shape = WorkloadShape::Burst {
            period: SimDuration::from_secs(5),
            burst_len: SimDuration::from_secs(1),
            factor: 4,
        };
        assert_eq!(
            w.rate_at(SimTime::from_millis(1_500)),
            40,
            "inside first burst"
        );
        assert_eq!(w.rate_at(SimTime::from_millis(3_000)), 10, "between bursts");
        assert_eq!(w.rate_at(SimTime::from_millis(6_500)), 40, "second burst");
        let subs = w.generate();
        // 10 s window: 2 bursty seconds at 40 + 8 quiet at 10 per client.
        let expected = 3 * (2 * 40 + 8 * 10);
        let got = subs.len() as i64;
        assert!(
            (got - expected as i64).abs() <= 9,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn ramp_shape_increases_rate_linearly() {
        let mut w = spec();
        w.end = SimTime::from_secs(11);
        w.shape = WorkloadShape::Ramp {
            end_tps_per_client: 30,
        };
        assert_eq!(w.rate_at(SimTime::from_secs(1)), 10);
        assert_eq!(w.rate_at(SimTime::from_secs(11)), 30);
        let mid = w.rate_at(SimTime::from_secs(6));
        assert!((19..=21).contains(&mid), "midpoint rate {mid}");
        let subs = w.generate();
        // Average rate 20 TPS per client over 10 s.
        let got = subs.len() as i64;
        assert!((got - 600).abs() <= 15, "expected ≈600, got {got}");
        // Nonces stay sequential per account regardless of shape.
        let mut per_account: std::collections::HashMap<AccountId, u64> =
            std::collections::HashMap::new();
        for s in &subs {
            let next = per_account.entry(s.transaction.from()).or_insert(0);
            assert_eq!(s.transaction.nonce(), *next);
            *next += 1;
        }
    }

    #[test]
    #[should_panic(expected = "burst longer")]
    fn oversized_burst_rejected() {
        let mut w = spec();
        w.shape = WorkloadShape::Burst {
            period: SimDuration::from_secs(1),
            burst_len: SimDuration::from_secs(2),
            factor: 2,
        };
        let _ = w.generate();
    }

    #[test]
    fn seeded_generation_of_legacy_spec_ignores_the_seed() {
        let w = spec();
        assert_eq!(w.generate_seeded(1), w.generate());
        assert_eq!(w.generate_seeded(0xDEAD_BEEF), w.generate());
    }

    #[test]
    fn production_spec_routes_through_the_traffic_model() {
        let w = WorkloadSpec::production(SimTime::from_secs(6), TrafficModel::production(900, 1));
        let subs = w.generate_seeded(42);
        assert_eq!(subs, w.generate_seeded(42));
        assert_ne!(subs, w.generate_seeded(43));
        let expected = w.expected_count() as i64;
        let got = subs.len() as i64;
        assert!(
            (got - expected).abs() < expected / 2,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "call generate_seeded")]
    fn unseeded_generation_of_production_spec_rejected() {
        let w = WorkloadSpec::production(SimTime::from_secs(6), TrafficModel::production(900, 1));
        let _ = w.generate();
    }
}
