//! Deterministic, rejection-free Zipf sampling.
//!
//! Sender/receiver skew is the lever that makes production traffic
//! contend: under Zipf with θ ≈ 0.9–1.1 a handful of accounts absorb a
//! large share of all transfers, which is exactly what collides inside
//! Block-STM speculation and nonce-ordered pools. The sampler uses the
//! Jain–Chlamtac continuous-power-law inversion (the same approximation
//! behind YCSB's "quick" Zipf generator): draw `u ~ U(0,1)` and invert
//!
//! ```text
//! rank + 1 = (1 + u·((N+1)^s − 1))^(1/s),   s = 1 − θ
//! ```
//!
//! which needs no rejection loop and exactly one uniform draw per
//! sample, so the RNG stream position after `k` samples is pure in `k`.
//! All powers run through the pinned Q32.32 fixed-point kernel in
//! [`crate::fixed`] — no libm, so artifacts are byte-identical on every
//! platform.
//!
//! θ is carried in permille (`900` = 0.9) to keep the parameterization
//! itself exact; θ = 0 degenerates to uniform and θ = 1000 (the harmonic
//! point where `s = 0`) uses the exact limit `rank + 1 = (N+1)^u`.

use stabl_sim::DetRng;

use crate::fixed::{div_q32, exp2_q32, log2_q32, pow_q32, ONE_Q32};

/// A Zipf(θ) sampler over ranks `0..n` (rank 0 is the hottest).
///
/// # Examples
///
/// ```
/// use stabl_sim::DetRng;
/// use stabl_workload::ZipfSampler;
///
/// let zipf = ZipfSampler::new(1_000_000, 900);
/// let mut rng = DetRng::new(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000_000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZipfSampler {
    n: u64,
    theta_permille: u32,
    /// `1/s` in Q32.32 (unused at θ ∈ {0, 1000}).
    inv_s_q32: i64,
    /// `(N+1)^s − 1` in signed Q32.32 (negative when θ > 1).
    span_q32: i64,
    /// `log2(N+1)` in Q32.32, for the θ = 1000 limit.
    log2_n1_q32: i64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `theta_permille/1000`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the 32-bit id space (larger
    /// populations would overflow the Q32.32 integer part).
    pub fn new(n: u64, theta_permille: u32) -> Self {
        assert!(n > 0, "empty rank space");
        assert!(n <= 1 << 32, "rank space exceeds Q32.32 integer range");
        let log2_n1_q32 = if n + 1 >= 1 << 32 {
            // log2(N+1) for N+1 ≥ 2^32 is 32 to within Q32.32 resolution
            // (and `(N+1) << 32` would overflow the u64 argument).
            32 * ONE_Q32
        } else {
            log2_q32((n + 1) << 32)
        };
        let s_q32 = ONE_Q32 - (theta_permille as i64 * ONE_Q32) / 1000;
        let (inv_s_q32, span_q32) = if theta_permille == 0 || theta_permille == 1000 {
            (0, 0)
        } else {
            // (N+1)^s = exp2(s·log2(N+1)); signed because s may be < 0.
            let exponent = ((s_q32 as i128 * log2_n1_q32 as i128) >> 32) as i64;
            let pow = exp2_q32(exponent) as i64;
            (div_q32(ONE_Q32, s_q32), pow - ONE_Q32)
        };
        ZipfSampler {
            n,
            theta_permille,
            inv_s_q32,
            span_q32,
            log2_n1_q32,
        }
    }

    /// The rank-space size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// The skew parameter in permille.
    pub fn theta_permille(&self) -> u32 {
        self.theta_permille
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        if self.theta_permille == 0 {
            return rng.next_below(self.n);
        }
        // One uniform draw in (0, 1] as Q32.32 (zero is excluded so the
        // logarithm in pow_q32 is always defined).
        let u_q32 = ((rng.next_u64() >> 32) as i64).max(1);
        let x_q32 = if self.theta_permille == 1000 {
            // rank + 1 = (N+1)^u.
            let exponent = ((u_q32 as i128 * self.log2_n1_q32 as i128) >> 32) as i64;
            exp2_q32(exponent)
        } else {
            // rank + 1 = (1 + u·((N+1)^s − 1))^(1/s).
            let base = ONE_Q32 + ((u_q32 as i128 * self.span_q32 as i128) >> 32) as i64;
            pow_q32(base.max(1) as u64, self.inv_s_q32)
        };
        let rank = (x_q32 >> 32).saturating_sub(1);
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(n: u64, theta: u32, draws: usize) -> Vec<u64> {
        let zipf = ZipfSampler::new(n, theta);
        let mut rng = DetRng::new(0xD15C0);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn theta_zero_is_uniform() {
        let counts = frequencies(8, 0, 16_000);
        for &c in &counts {
            assert!((1700..=2300).contains(&c), "uniform bucket drifted: {c}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let counts = frequencies(1000, 900, 20_000);
        let head: u64 = counts[..10].iter().sum();
        assert!(head > 20_000 / 4, "θ=0.9 head (top 1%) got {head} of 20000");
        let uniform_head: u64 = frequencies(1000, 0, 20_000)[..10].iter().sum();
        assert!(
            uniform_head < 500,
            "uniform head unexpectedly hot: {uniform_head}"
        );
    }

    #[test]
    fn higher_theta_is_hotter() {
        let mut last_head = 0;
        for theta in [0, 600, 900, 1100] {
            let counts = frequencies(10_000, theta, 30_000);
            let head: u64 = counts[..100].iter().sum();
            assert!(
                head >= last_head,
                "θ={theta} head {head} < previous {last_head}"
            );
            last_head = head;
        }
    }

    #[test]
    fn harmonic_point_matches_neighbors() {
        // θ = 1000 uses a separate code path; its head mass must land
        // between θ = 900 and θ = 1100.
        let head = |theta| -> u64 { frequencies(10_000, theta, 30_000)[..100].iter().sum() };
        let (lo, mid, hi) = (head(900), head(1000), head(1100));
        assert!(lo <= mid && mid <= hi, "heads not ordered: {lo} {mid} {hi}");
    }

    #[test]
    fn ranks_stay_in_bounds() {
        for theta in [0, 1, 600, 999, 1000, 1001, 1100, 2000] {
            let zipf = ZipfSampler::new(37, theta);
            let mut rng = DetRng::new(theta as u64);
            for _ in 0..2000 {
                assert!(zipf.sample(&mut rng) < 37, "θ={theta} out of range");
            }
        }
    }

    #[test]
    fn one_draw_per_sample_for_skewed_theta() {
        // Rejection-free: the stream position after k samples equals
        // exactly k draws (θ > 0 paths use one next_u64 each).
        let zipf = ZipfSampler::new(1_000_000, 900);
        let mut a = DetRng::new(5);
        let mut b = DetRng::new(5);
        for _ in 0..100 {
            let _ = zipf.sample(&mut a);
            let _ = b.next_u64();
        }
        assert_eq!(a, b, "sampler consumed a different number of draws");
    }

    #[test]
    fn singleton_population_always_rank_zero() {
        let zipf = ZipfSampler::new(1, 900);
        let mut rng = DetRng::new(9);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}
