//! The production traffic model: who sends what, to whom, and when.
//!
//! A [`TrafficModel`] composes the three production ingredients this
//! crate provides — a declared [`AccountPopulation`], a [`ZipfSampler`]
//! over it, and a per-client [`ArrivalProcess`] — into the same
//! `Submission` schedule format the paper's constant-rate generator
//! emits, so the harness, clients and chains run it unchanged.
//!
//! Determinism contract: the schedule is a pure function of
//! `(model, clients, start, end, seed)`. Each client's arrival stream
//! comes from an independent `DetRng::derive` label, the merged stream
//! is ordered by `(time, client)` (a total order — a single client's
//! arrivals never tie), and sender/receiver sampling walks that merged
//! order with one more derived stream. Nonces are assigned in merged
//! order, so every account's nonce sequence is contiguous and
//! time-monotone, satisfying every chain's sequencing rules.

use stabl_sim::{DetRng, SimTime};
use stabl_types::Transaction;

use crate::arrival::ArrivalProcess;
use crate::population::AccountPopulation;
use crate::spec::Submission;
use crate::zipf::ZipfSampler;

/// How receivers are chosen — the contention dial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictProfile {
    /// Receiver drawn independently from the same Zipf distribution as
    /// the sender: hot accounts appear on both sides of transfers, so
    /// their read-write sets collide in Block-STM and nonce pools.
    Skewed,
    /// Receiver is a dedicated sink derived from the sender (paper-like:
    /// every transfer's read-write set is private to its sender).
    Disjoint,
    /// A `permille` fraction of transfers pay one single hot account;
    /// the rest behave like [`ConflictProfile::Skewed`].
    HotSpot {
        /// Fraction of transfers hitting the hot account, in permille.
        permille: u32,
    },
}

/// A complete production workload description.
///
/// # Examples
///
/// ```
/// use stabl_sim::SimTime;
/// use stabl_workload::{ArrivalProcess, ConflictProfile, TrafficModel};
///
/// let model = TrafficModel {
///     accounts: 10_000_000,
///     theta_permille: 900,
///     arrival: ArrivalProcess::Poisson { tps: 40 },
///     conflict: ConflictProfile::Skewed,
/// };
/// let subs = model.generate(5, SimTime::from_secs(1), SimTime::from_secs(3), 42);
/// assert!(!subs.is_empty());
/// assert_eq!(subs, model.generate(5, SimTime::from_secs(1), SimTime::from_secs(3), 42));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficModel {
    /// Declared population size (lazily materialized; 10M is cheap).
    pub accounts: u64,
    /// Zipf skew over the population, in permille (0 = uniform).
    pub theta_permille: u32,
    /// Per-client arrival process.
    pub arrival: ArrivalProcess,
    /// Read-write-set overlap profile.
    pub conflict: ConflictProfile,
}

/// Label salt for per-client arrival streams.
const ARRIVAL_STREAM: u64 = 0x41_52_52_49_56_41_4C_00; // "ARRIVAL"
/// Label for the sender/receiver sampling stream.
const SAMPLE_STREAM: u64 = 0x5A_49_50_46_00_00_00_00; // "ZIPF"

impl TrafficModel {
    /// The ISSUE's reference production model: 10M accounts, Zipf θ,
    /// Poisson (burst factor 1) or burst-train arrivals at the paper's
    /// 40 TPS per client, with skew-colliding receivers.
    pub fn production(theta_permille: u32, burst_factor: u32) -> TrafficModel {
        use stabl_sim::SimDuration;
        let arrival = if burst_factor <= 1 {
            ArrivalProcess::Poisson { tps: 40 }
        } else {
            // Mean rate stays pinned at 40 TPS per client so θ is the
            // only load-shape difference across a campaign row: solve
            // base·(1 + (factor−1)·duty) = 40 with a 1 s burst every 10.
            let base = 40 * 10 / (10 + burst_factor as u64 - 1);
            ArrivalProcess::BurstTrain {
                base_tps: base.max(1),
                period: SimDuration::from_secs(10),
                burst_len: SimDuration::from_secs(1),
                factor: burst_factor,
            }
        };
        TrafficModel {
            accounts: 10_000_000,
            theta_permille,
            arrival,
            conflict: ConflictProfile::Skewed,
        }
    }

    /// Generates the deterministic submission schedule for `clients`
    /// clients over `[start, end)` under `seed`.
    ///
    /// # Panics
    ///
    /// Panics on zero clients or an invalid arrival window/process (see
    /// [`ArrivalProcess::arrivals`]).
    pub fn generate(
        &self,
        clients: usize,
        start: SimTime,
        end: SimTime,
        seed: u64,
    ) -> Vec<Submission> {
        let (submissions, _) = self.generate_with_population(clients, start, end, seed);
        submissions
    }

    /// [`generate`](Self::generate), also returning the materialized
    /// population (used by tests and the memory-bound proptest).
    pub fn generate_with_population(
        &self,
        clients: usize,
        start: SimTime,
        end: SimTime,
        seed: u64,
    ) -> (Vec<Submission>, AccountPopulation) {
        assert!(clients > 0, "empty workload");
        let root = DetRng::new(seed);
        // Per-client independent arrival streams, merged by (at, client).
        let mut schedule: Vec<(SimTime, usize)> = Vec::new();
        for client in 0..clients {
            let mut rng = root.derive(ARRIVAL_STREAM ^ client as u64);
            for at in self.arrival.arrivals(start, end, &mut rng) {
                schedule.push((at, client));
            }
        }
        schedule.sort_unstable();

        let zipf = ZipfSampler::new(self.accounts, self.theta_permille);
        let mut population = AccountPopulation::new(self.accounts, seed);
        let mut rng = root.derive(SAMPLE_STREAM);
        let mut out = Vec::with_capacity(schedule.len());
        for (at, client) in schedule {
            let sender_rank = zipf.sample(&mut rng);
            let (from, nonce) = population.touch_sender(sender_rank);
            let to = match self.conflict {
                ConflictProfile::Disjoint => population.sink_at(sender_rank),
                ConflictProfile::Skewed => {
                    let mut rank = zipf.sample(&mut rng);
                    if rank == sender_rank {
                        // Self-transfers are rejected by the ledger;
                        // shift to the neighbouring rank (still hot).
                        rank = (rank + 1) % self.accounts;
                    }
                    population.touch_receiver(rank)
                }
                ConflictProfile::HotSpot { permille } => {
                    if rng.next_below(1000) < permille as u64 && sender_rank != 0 {
                        population.touch_receiver(0)
                    } else {
                        let mut rank = zipf.sample(&mut rng);
                        if rank == sender_rank {
                            rank = (rank + 1) % self.accounts;
                        }
                        population.touch_receiver(rank)
                    }
                }
            };
            out.push(Submission {
                at,
                client,
                transaction: Transaction::transfer(from, nonce, to, 1),
            });
        }
        (out, population)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_types::AccountId;
    use std::collections::HashMap;

    fn model(theta: u32) -> TrafficModel {
        TrafficModel {
            accounts: 1_000_000,
            theta_permille: theta,
            arrival: ArrivalProcess::Poisson { tps: 20 },
            conflict: ConflictProfile::Skewed,
        }
    }

    fn generate(theta: u32, seed: u64) -> Vec<Submission> {
        model(theta).generate(3, SimTime::from_secs(1), SimTime::from_secs(11), seed)
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        assert_eq!(generate(900, 1), generate(900, 1));
        assert_ne!(generate(900, 1), generate(900, 2));
    }

    #[test]
    fn schedule_is_sorted_with_contiguous_nonces() {
        let subs = generate(900, 5);
        assert!(subs
            .windows(2)
            .all(|w| (w[0].at, w[0].client) < (w[1].at, w[1].client)));
        let mut next: HashMap<AccountId, u64> = HashMap::new();
        for s in &subs {
            let n = next.entry(s.transaction.from()).or_insert(0);
            assert_eq!(s.transaction.nonce(), *n, "nonce gap at {}", s.transaction);
            *n += 1;
        }
    }

    #[test]
    fn no_self_transfers() {
        for profile in [
            ConflictProfile::Skewed,
            ConflictProfile::Disjoint,
            ConflictProfile::HotSpot { permille: 300 },
        ] {
            let mut m = model(1100);
            m.accounts = 100; // small population stresses collisions
            m.conflict = profile;
            let subs = m.generate(2, SimTime::from_secs(1), SimTime::from_secs(6), 7);
            assert!(subs
                .iter()
                .all(|s| s.transaction.from() != s.transaction.to()));
        }
    }

    #[test]
    fn skew_concentrates_senders() {
        let hot_share = |theta: u32| {
            let subs = generate(theta, 9);
            let mut counts: HashMap<AccountId, usize> = HashMap::new();
            for s in &subs {
                *counts.entry(s.transaction.from()).or_default() += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            (max * 1000) / subs.len().max(1)
        };
        assert!(hot_share(0) <= 5, "uniform senders should not repeat much");
        assert!(hot_share(1100) >= 100, "θ=1.1 hottest sender share too low");
    }

    #[test]
    fn disjoint_profile_never_reuses_senders_as_receivers() {
        let mut m = model(900);
        m.conflict = ConflictProfile::Disjoint;
        let subs = m.generate(3, SimTime::from_secs(1), SimTime::from_secs(6), 3);
        let senders: std::collections::HashSet<_> =
            subs.iter().map(|s| s.transaction.from()).collect();
        assert!(subs.iter().all(|s| !senders.contains(&s.transaction.to())));
    }

    #[test]
    fn hot_spot_profile_routes_to_one_account() {
        let mut m = model(0);
        m.conflict = ConflictProfile::HotSpot { permille: 500 };
        let (subs, pop) =
            m.generate_with_population(3, SimTime::from_secs(1), SimTime::from_secs(11), 3);
        let hot = pop.account_at(0);
        let hits = subs.iter().filter(|s| s.transaction.to() == hot).count();
        assert!(
            hits * 1000 / subs.len() > 350,
            "hot spot got {hits}/{}",
            subs.len()
        );
    }

    #[test]
    fn population_stays_lazy() {
        let (subs, pop) = model(900).generate_with_population(
            3,
            SimTime::from_secs(1),
            SimTime::from_secs(11),
            13,
        );
        assert!(pop.materialized() <= 2 * subs.len());
        assert_eq!(pop.declared(), 1_000_000);
        assert!(pop.materialized() < 10_000, "active set exploded");
    }

    #[test]
    fn production_pins_mean_rate() {
        use stabl_sim::SimDuration;
        for burst in [1, 4, 16] {
            let m = TrafficModel::production(900, burst);
            let mean = m.arrival.mean_tps(SimDuration::from_secs(100));
            assert!(
                (38..=40).contains(&mean),
                "burst={burst} mean {mean} drifted from 40 TPS"
            );
        }
    }
}
