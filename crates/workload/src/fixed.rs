//! Pinned-precision Q32.32 fixed-point transcendentals.
//!
//! The Zipf sampler and the Poisson arrival process need `log`, `exp`
//! and `pow`, but the libm implementations behind `f64::powf`/`f64::ln`
//! are *not* pinned across platforms or libc versions — a workload
//! generated on one machine could differ by one transaction on another,
//! breaking the byte-identical-artifact guarantee. This module
//! implements the three functions over signed Q32.32 fixed point with
//! pure integer arithmetic (shift-and-square logarithms, a
//! square-root-ladder exponential), so every bit of every sample is the
//! same everywhere, forever.
//!
//! Precision: both `log2_q32` and `exp2_q32` run a fixed 32-step ladder,
//! giving ~2⁻³² relative error — far below anything a workload sampler
//! can observe at realistic population sizes.

/// The Q32.32 representation of 1.
pub const ONE_Q32: i64 = 1 << 32;

/// ln(2) in Q32.32 (`0.693147180559945…` scaled by 2³²).
pub const LN2_Q32: i64 = 2_977_044_471;

/// Floor of the square root of a `u128` (Newton's method, exact).
const fn isqrt_u128(x: u128) -> u128 {
    if x < 2 {
        return x;
    }
    // Start from a power-of-two overestimate and contract.
    let mut guess = 1u128 << (x.ilog2() / 2 + 1);
    loop {
        let next = (guess + x / guess) / 2;
        if next >= guess {
            return guess;
        }
        guess = next;
    }
}

/// The ladder constants `2^(2^-k)` for `k = 1..=32`, in Q63: each entry
/// is the square root of the previous, computed with the exact integer
/// square root so the table is identical on every platform.
const EXP_LADDER: [u64; 32] = {
    let mut table = [0u64; 32];
    let mut value: u128 = 2 << 63; // 2.0 in Q63
    let mut k = 0;
    while k < 32 {
        // sqrt(v·2⁶³ · 2⁶³) = sqrt(v)·2⁶³ — one ladder step down.
        value = isqrt_u128(value << 63);
        table[k] = value as u64;
        k += 1;
    }
    table
};

/// Base-2 logarithm of a positive Q32.32 value, in Q32.32.
///
/// Uses the classic shift-and-square bit recurrence: normalise the
/// mantissa to `[1, 2)`, then square 32 times, emitting one fraction
/// bit per squaring.
///
/// # Panics
///
/// Panics if `x` is zero (the logarithm diverges).
pub fn log2_q32(x: u64) -> i64 {
    assert!(x > 0, "log2 of zero");
    let lz = x.leading_zeros();
    let int_part = 31 - lz as i64; // exponent relative to the Q32.32 one
    let mut mantissa = (x as u128) << lz; // value in [1, 2) scaled by 2^63
    let mut frac: u64 = 0;
    let mut step = 0;
    while step < 32 {
        mantissa = (mantissa * mantissa) >> 63;
        frac <<= 1;
        if mantissa >= 1u128 << 64 {
            frac |= 1;
            mantissa >>= 1;
        }
        step += 1;
    }
    int_part * ONE_Q32 + frac as i64
}

/// `2^y` for a Q32.32 exponent, as Q32.32, saturating at the ends.
///
/// The fractional part is assembled from the [`EXP_LADDER`]: one Q63
/// multiplication per set bit, in fixed order.
pub fn exp2_q32(y: i64) -> u64 {
    let int_part = y >> 32; // floor division (sign-correct for i64)
    let frac = (y & 0xFFFF_FFFF) as u64; // in [0, 2^32), frac of 2^-32 units
    if int_part >= 31 {
        return u64::MAX;
    }
    if int_part < -63 {
        return 0;
    }
    let mut acc: u128 = 1 << 63; // 1.0 in Q63
    let mut k = 0;
    while k < 32 {
        if frac & (1 << (31 - k)) != 0 {
            acc = (acc * EXP_LADDER[k] as u128) >> 63;
        }
        k += 1;
    }
    // acc is 2^(frac·2⁻³²) in Q63, in [1, 2); rescale to Q32.32 and
    // apply the integer exponent.
    let shift = 31 - int_part; // in (0, 94]
    if shift >= 128 {
        0
    } else {
        (acc >> shift) as u64
    }
}

/// `base^exponent` for a positive Q32.32 base and a signed Q32.32
/// exponent, as Q32.32 (saturating).
///
/// # Panics
///
/// Panics if `base` is zero.
pub fn pow_q32(base: u64, exponent: i64) -> u64 {
    let log = log2_q32(base);
    let product = (log as i128 * exponent as i128) >> 32;
    let clamped = product.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
    exp2_q32(clamped)
}

/// Q32.32 division `a / b` (both positive), saturating.
///
/// # Panics
///
/// Panics if `b` is zero.
pub fn div_q32(a: i64, b: i64) -> i64 {
    assert!(b != 0, "fixed-point division by zero");
    let q = ((a as i128) << 32) / b as i128;
    q.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// `-ln(u)` for a uniform fraction `u ∈ (0, 1]` given as Q32.32, in
/// Q32.32 — the exponential-distribution inverse CDF used by the
/// Poisson arrival process.
///
/// # Panics
///
/// Panics if `u` is zero.
pub fn neg_ln_q32(u: u64) -> i64 {
    let log2 = log2_q32(u); // ≤ 0 for u ≤ 1
    let ln = (log2 as i128 * LN2_Q32 as i128) >> 32;
    (-ln).clamp(0, i64::MAX as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(x: f64) -> u64 {
        (x * ONE_Q32 as f64).round() as u64
    }

    fn unq(x: u64) -> f64 {
        x as f64 / ONE_Q32 as f64
    }

    #[test]
    fn ladder_head_is_sqrt2() {
        // 2^(1/2) in Q63.
        let sqrt2 = EXP_LADDER[0] as f64 / (1u128 << 63) as f64;
        assert!((sqrt2 - std::f64::consts::SQRT_2).abs() < 1e-12, "{sqrt2}");
    }

    #[test]
    fn log2_matches_float() {
        for x in [0.001, 0.5, 1.0, 1.5, 2.0, 3.7, 1000.0, 1e6] {
            let got = log2_q32(q(x)) as f64 / ONE_Q32 as f64;
            assert!((got - x.log2()).abs() < 1e-7, "log2({x}): {got}");
        }
    }

    #[test]
    fn exp2_matches_float() {
        for y in [-20.0, -1.5, -0.3, 0.0, 0.5, 1.0, 7.25, 20.9] {
            let got = unq(exp2_q32((y * ONE_Q32 as f64).round() as i64));
            let want = 2f64.powf(y);
            assert!(
                (got - want).abs() / want.max(1e-12) < 1e-7,
                "exp2({y}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn pow_roundtrips() {
        for (b, e) in [
            (2.0, 10.0),
            (10.0, -0.4),
            (1_000_000.0, 0.0917),
            (0.25, -1.1),
        ] {
            let got = unq(pow_q32(q(b), (e * ONE_Q32 as f64).round() as i64));
            let want = b.powf(e);
            assert!((got - want).abs() / want < 1e-6, "{b}^{e}: {got} vs {want}");
        }
    }

    #[test]
    fn exp2_saturates() {
        assert_eq!(exp2_q32(i64::MAX), u64::MAX);
        assert_eq!(exp2_q32(i64::MIN), 0);
        assert_eq!(exp2_q32(0), ONE_Q32 as u64);
    }

    #[test]
    fn neg_ln_of_uniform() {
        for u in [0.01, 0.1, 0.5, 0.9, 0.999] {
            let got = neg_ln_q32(q(u)) as f64 / ONE_Q32 as f64;
            assert!((got - (-u.ln())).abs() < 1e-6, "-ln({u}): {got}");
        }
        assert_eq!(neg_ln_q32(ONE_Q32 as u64), 0);
    }

    #[test]
    #[should_panic(expected = "log2 of zero")]
    fn log2_rejects_zero() {
        let _ = log2_q32(0);
    }
}
