//! JSON (de)serialisation for the traffic-model configuration types,
//! so campaign artifacts under `results/contention/` are
//! self-describing: every cell records the exact model that produced
//! it. These types feed the campaign cache and are listed in the
//! `CACHE_SCHEMA_VERSION` manifest in `bench/engine.rs`.

use serde::{Content, DeError, Deserialize, Serialize};

use crate::arrival::ArrivalProcess;
use crate::traffic::{ConflictProfile, TrafficModel};

impl Serialize for ArrivalProcess {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = Vec::new();
        let kind = match self {
            ArrivalProcess::Constant { tps } => {
                map.push(("tps".to_owned(), tps.to_content()));
                "constant"
            }
            ArrivalProcess::Poisson { tps } => {
                map.push(("tps".to_owned(), tps.to_content()));
                "poisson"
            }
            ArrivalProcess::BurstTrain {
                base_tps,
                period,
                burst_len,
                factor,
            } => {
                map.push(("base_tps".to_owned(), base_tps.to_content()));
                map.push(("period".to_owned(), period.to_content()));
                map.push(("burst_len".to_owned(), burst_len.to_content()));
                map.push(("factor".to_owned(), factor.to_content()));
                "burst-train"
            }
            ArrivalProcess::FlashCrowd {
                base_tps,
                at,
                ramp,
                factor,
            } => {
                map.push(("base_tps".to_owned(), base_tps.to_content()));
                map.push(("at".to_owned(), at.to_content()));
                map.push(("ramp".to_owned(), ramp.to_content()));
                map.push(("factor".to_owned(), factor.to_content()));
                "flash-crowd"
            }
            ArrivalProcess::Diurnal {
                mean_tps,
                period,
                amplitude_permille,
            } => {
                map.push(("mean_tps".to_owned(), mean_tps.to_content()));
                map.push(("period".to_owned(), period.to_content()));
                map.push((
                    "amplitude_permille".to_owned(),
                    amplitude_permille.to_content(),
                ));
                "diurnal"
            }
        };
        map.insert(0, ("kind".to_owned(), Content::Str(kind.to_owned())));
        Content::Map(map)
    }
}

impl Deserialize for ArrivalProcess {
    fn from_content(content: &Content) -> Result<ArrivalProcess, DeError> {
        let kind: String = serde::__private::field(content, "kind")?;
        match kind.as_str() {
            "constant" => Ok(ArrivalProcess::Constant {
                tps: serde::__private::field(content, "tps")?,
            }),
            "poisson" => Ok(ArrivalProcess::Poisson {
                tps: serde::__private::field(content, "tps")?,
            }),
            "burst-train" => Ok(ArrivalProcess::BurstTrain {
                base_tps: serde::__private::field(content, "base_tps")?,
                period: serde::__private::field(content, "period")?,
                burst_len: serde::__private::field(content, "burst_len")?,
                factor: serde::__private::field(content, "factor")?,
            }),
            "flash-crowd" => Ok(ArrivalProcess::FlashCrowd {
                base_tps: serde::__private::field(content, "base_tps")?,
                at: serde::__private::field(content, "at")?,
                ramp: serde::__private::field(content, "ramp")?,
                factor: serde::__private::field(content, "factor")?,
            }),
            "diurnal" => Ok(ArrivalProcess::Diurnal {
                mean_tps: serde::__private::field(content, "mean_tps")?,
                period: serde::__private::field(content, "period")?,
                amplitude_permille: serde::__private::field(content, "amplitude_permille")?,
            }),
            other => Err(DeError::custom(format!(
                "unknown arrival process {other:?}"
            ))),
        }
    }
}

impl Serialize for ConflictProfile {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = Vec::new();
        let kind = match self {
            ConflictProfile::Skewed => "skewed",
            ConflictProfile::Disjoint => "disjoint",
            ConflictProfile::HotSpot { permille } => {
                map.push(("permille".to_owned(), permille.to_content()));
                "hot-spot"
            }
        };
        map.insert(0, ("kind".to_owned(), Content::Str(kind.to_owned())));
        Content::Map(map)
    }
}

impl Deserialize for ConflictProfile {
    fn from_content(content: &Content) -> Result<ConflictProfile, DeError> {
        let kind: String = serde::__private::field(content, "kind")?;
        match kind.as_str() {
            "skewed" => Ok(ConflictProfile::Skewed),
            "disjoint" => Ok(ConflictProfile::Disjoint),
            "hot-spot" => Ok(ConflictProfile::HotSpot {
                permille: serde::__private::field(content, "permille")?,
            }),
            other => Err(DeError::custom(format!(
                "unknown conflict profile {other:?}"
            ))),
        }
    }
}

impl Serialize for TrafficModel {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("accounts".to_owned(), self.accounts.to_content()),
            (
                "theta_permille".to_owned(),
                self.theta_permille.to_content(),
            ),
            ("arrival".to_owned(), self.arrival.to_content()),
            ("conflict".to_owned(), self.conflict.to_content()),
        ])
    }
}

impl Deserialize for TrafficModel {
    fn from_content(content: &Content) -> Result<TrafficModel, DeError> {
        Ok(TrafficModel {
            accounts: serde::__private::field(content, "accounts")?,
            theta_permille: serde::__private::field(content, "theta_permille")?,
            arrival: serde::__private::field(content, "arrival")?,
            conflict: serde::__private::field(content, "conflict")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use stabl_sim::{SimDuration, SimTime};

    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let json = serde_json::to_string(&value).expect("serialize");
        let back: T = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, value, "{json}");
    }

    #[test]
    fn arrival_processes_roundtrip() {
        roundtrip(ArrivalProcess::Constant { tps: 40 });
        roundtrip(ArrivalProcess::Poisson { tps: 7 });
        roundtrip(ArrivalProcess::BurstTrain {
            base_tps: 10,
            period: SimDuration::from_secs(10),
            burst_len: SimDuration::from_secs(1),
            factor: 16,
        });
        roundtrip(ArrivalProcess::FlashCrowd {
            base_tps: 10,
            at: SimTime::from_secs(100),
            ramp: SimDuration::from_secs(5),
            factor: 8,
        });
        roundtrip(ArrivalProcess::Diurnal {
            mean_tps: 40,
            period: SimDuration::from_secs(300),
            amplitude_permille: 800,
        });
    }

    #[test]
    fn traffic_model_roundtrips() {
        for conflict in [
            ConflictProfile::Skewed,
            ConflictProfile::Disjoint,
            ConflictProfile::HotSpot { permille: 125 },
        ] {
            roundtrip(TrafficModel {
                accounts: 10_000_000,
                theta_permille: 900,
                arrival: ArrivalProcess::Poisson { tps: 40 },
                conflict,
            });
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(serde_json::from_str::<ConflictProfile>(r#"{"kind":"wat"}"#).is_err());
        assert!(serde_json::from_str::<ArrivalProcess>(r#"{"kind":"wat"}"#).is_err());
    }
}
