//! Lazily-materialized account populations.
//!
//! Production chains serve millions of accounts, but any finite run only
//! ever touches a small active set. `AccountPopulation` lets a workload
//! *declare* an enormous population (10M accounts by default) while
//! paying memory only for the accounts that actually appear in a
//! transaction: state springs into existence on first touch.
//!
//! The index→[`AccountId`] mapping is a pure 4-round Feistel permutation
//! of the 32-bit id space, keyed from the workload seed. Purity means
//! the mapping needs no storage and never draws from the RNG stream;
//! the permutation property means distinct indices can never collide on
//! an id, so Zipf rank 0 is always exactly one account.

use std::collections::BTreeMap;

use stabl_sim::DetRng;
use stabl_types::AccountId;

/// Mixes a 16-bit half with a 32-bit round key into a 16-bit output
/// (the Feistel round function; any deterministic mixer works, this one
/// is two rounds of multiply-xorshift over the combined word).
#[inline]
fn round(half: u16, key: u32) -> u16 {
    let mut z = (half as u64) ^ ((key as u64) << 16);
    z = (z ^ (z >> 16)).wrapping_mul(0x45D9_F3B3_335B_369D);
    z = (z ^ (z >> 29)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (z >> 32) as u16
}

/// Per-account mutable workload state, created on first touch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccountState {
    /// The next nonce this account will sign with.
    pub next_nonce: u64,
    /// How many transfers have named this account as receiver.
    pub received: u64,
}

/// A declared-size account population with O(active set) memory.
///
/// # Examples
///
/// ```
/// use stabl_workload::AccountPopulation;
///
/// let mut pop = AccountPopulation::new(10_000_000, 42);
/// let hot = pop.account_at(0);
/// assert_eq!(pop.account_at(0), hot, "derivation is pure");
/// assert_eq!(pop.materialized(), 0, "nothing stored yet");
/// assert_eq!(pop.touch_sender(0), (hot, 0));
/// assert_eq!(pop.touch_sender(0), (hot, 1), "nonces advance");
/// assert_eq!(pop.materialized(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct AccountPopulation {
    declared: u64,
    keys: [u32; 4],
    state: BTreeMap<AccountId, AccountState>,
}

impl AccountPopulation {
    /// Declares a population of `declared` accounts (at most `2^32`),
    /// with the id permutation keyed from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `declared` is zero or exceeds the 32-bit id space.
    pub fn new(declared: u64, seed: u64) -> Self {
        assert!(declared > 0, "empty population");
        assert!(
            declared <= 1 << 32,
            "population exceeds the 32-bit id space"
        );
        let mut rng = DetRng::new(seed).derive(0x5EED_AC07);
        let keys = [
            rng.next_u64() as u32,
            rng.next_u64() as u32,
            rng.next_u64() as u32,
            rng.next_u64() as u32,
        ];
        AccountPopulation {
            declared,
            keys,
            state: BTreeMap::new(),
        }
    }

    /// The declared population size.
    pub fn declared(&self) -> u64 {
        self.declared
    }

    /// How many accounts have been materialized so far.
    pub fn materialized(&self) -> usize {
        self.state.len()
    }

    /// The pure index→id derivation: a 4-round Feistel permutation of
    /// the 32-bit space, so distinct indices never collide.
    ///
    /// # Panics
    ///
    /// Panics if `index >= declared`.
    pub fn account_at(&self, index: u64) -> AccountId {
        assert!(index < self.declared, "index beyond declared population");
        self.permute(index as u32)
    }

    /// A sink id for the sender at `index`, guaranteed disjoint from
    /// every sender id: it permutes the index range just *above* the
    /// declared population, and a permutation maps disjoint index
    /// ranges to disjoint id sets.
    ///
    /// # Panics
    ///
    /// Panics if `index >= declared`, or if the declared population
    /// exceeds half the id space (no room for sinks).
    pub fn sink_at(&self, index: u64) -> AccountId {
        assert!(index < self.declared, "index beyond declared population");
        assert!(
            2 * self.declared <= 1 << 32,
            "no id space left for disjoint sinks"
        );
        self.permute((index + self.declared) as u32)
    }

    fn permute(&self, x: u32) -> AccountId {
        let mut left = (x >> 16) as u16;
        let mut right = x as u16;
        for key in self.keys {
            let next = left ^ round(right, key);
            left = right;
            right = next;
        }
        AccountId::new(((left as u32) << 16) | right as u32)
    }

    /// Materializes the account at `index` (if new) and consumes its
    /// next nonce; returns the id and the nonce to sign with.
    pub fn touch_sender(&mut self, index: u64) -> (AccountId, u64) {
        let id = self.account_at(index);
        let entry = self.state.entry(id).or_default();
        let nonce = entry.next_nonce;
        entry.next_nonce += 1;
        (id, nonce)
    }

    /// Materializes the account at `index` (if new) as a receiver and
    /// returns its id.
    pub fn touch_receiver(&mut self, index: u64) -> AccountId {
        let id = self.account_at(index);
        self.state.entry(id).or_default().received += 1;
        id
    }

    /// The materialized state of an account, if it has been touched.
    pub fn state_of(&self, id: AccountId) -> Option<&AccountState> {
        self.state.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn permutation_has_no_collisions() {
        let pop = AccountPopulation::new(1 << 16, 7);
        let ids: HashSet<AccountId> = (0..1u64 << 16).map(|i| pop.account_at(i)).collect();
        assert_eq!(ids.len(), 1 << 16);
    }

    #[test]
    fn derivation_is_seed_keyed() {
        let a = AccountPopulation::new(1000, 1);
        let b = AccountPopulation::new(1000, 2);
        let same = (0..1000)
            .filter(|&i| a.account_at(i) == b.account_at(i))
            .count();
        assert!(same < 5, "{same} fixed points across different seeds");
        let a2 = AccountPopulation::new(1000, 1);
        assert!((0..1000).all(|i| a.account_at(i) == a2.account_at(i)));
    }

    #[test]
    fn memory_tracks_active_set_only() {
        let mut pop = AccountPopulation::new(10_000_000, 99);
        for i in 0..100 {
            let _ = pop.touch_sender(i % 10);
        }
        assert_eq!(pop.materialized(), 10);
        assert_eq!(pop.declared(), 10_000_000);
    }

    #[test]
    fn nonces_advance_per_account() {
        let mut pop = AccountPopulation::new(100, 3);
        let (id, n0) = pop.touch_sender(5);
        let (_, n1) = pop.touch_sender(5);
        let (other, m0) = pop.touch_sender(6);
        assert_eq!((n0, n1, m0), (0, 1, 0));
        assert_ne!(id, other);
        assert_eq!(pop.state_of(id).map(|s| s.next_nonce), Some(2));
    }

    #[test]
    fn receivers_materialize_without_nonce_use() {
        let mut pop = AccountPopulation::new(100, 3);
        let id = pop.touch_receiver(7);
        assert_eq!(
            pop.state_of(id),
            Some(&AccountState {
                next_nonce: 0,
                received: 1
            })
        );
    }

    #[test]
    fn sinks_are_disjoint_from_senders() {
        let pop = AccountPopulation::new(1 << 15, 21);
        let senders: HashSet<AccountId> = (0..1u64 << 15).map(|i| pop.account_at(i)).collect();
        assert!((0..1u64 << 15).all(|i| !senders.contains(&pop.sink_at(i))));
    }

    #[test]
    #[should_panic(expected = "no id space left")]
    fn sinks_need_headroom() {
        let pop = AccountPopulation::new(1 << 32, 0);
        let _ = pop.sink_at(0);
    }

    #[test]
    #[should_panic(expected = "beyond declared")]
    fn out_of_range_index_rejected() {
        let pop = AccountPopulation::new(10, 0);
        let _ = pop.account_at(10);
    }
}
