//! Bridges the adversary search (`stabl-adversary`) onto the campaign
//! engine: every genome evaluation becomes one cached [`Job`], so a
//! replayed search is answered almost entirely from the on-disk cache
//! and two runs with the same seed produce byte-identical traces.
//!
//! The module also carries the comparison and replication helpers the
//! `ext_adversary` binary and the `adversary_corpus` regression test
//! share: the paper's worst fixed-scenario key (the bar a discovery
//! must clear), and multi-seed replication of a shrunk schedule into a
//! bootstrap confidence interval.

use stabl::{Chain, PaperSetup, RunConfig, RunResult, ScenarioKind};
use stabl_adversary::{fitness_of, Evaluate, Fitness, Genome, Objective, ScoreCi};
use stabl_sim::DetRng;
use stabl_stats::{percentile_ci, SeedSequence};

use crate::engine::{Engine, Job};

/// Evaluates genomes by running them through the campaign engine
/// against a fixed baseline run.
///
/// Each genome becomes a [`Job::config`] whose cache-key material is
/// the full `RunConfig` Debug form — distinct schedules get distinct
/// cache cells, identical ones replay from disk.
pub struct EngineEval<'a> {
    engine: &'a Engine,
    chain: Chain,
    base: RunConfig,
    baseline: RunResult,
    evals: usize,
}

impl<'a> EngineEval<'a> {
    /// Builds the evaluator: runs (or replays) the chain's baseline
    /// cell, then evaluates every genome against it.
    pub fn new(engine: &'a Engine, setup: &PaperSetup, chain: Chain) -> EngineEval<'a> {
        let base = setup.run_config(chain, ScenarioKind::Baseline);
        let baseline = engine
            .run(vec![Job::scenario(setup, chain, ScenarioKind::Baseline)])
            .remove(0);
        EngineEval {
            engine,
            chain,
            base,
            baseline,
            evals: 0,
        }
    }

    /// The baseline run the fitness deltas are measured against.
    pub fn baseline(&self) -> &RunResult {
        &self.baseline
    }

    /// Evaluations performed so far (search + shrink combined).
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// The engine job that runs `genome` against this chain.
    fn job_for(&self, genome: &Genome, ordinal: usize) -> Job {
        let mut config = self.base.clone();
        config.faults = genome.schedule();
        config.byzantine = genome.byzantine_spec();
        Job::config(
            format!("{}/adv#{ordinal:04}", self.chain.name()),
            self.chain,
            config,
        )
    }
}

impl Evaluate for EngineEval<'_> {
    fn eval_batch(&mut self, genomes: &[Genome]) -> Vec<Fitness> {
        let jobs = genomes
            .iter()
            .enumerate()
            .map(|(i, g)| self.job_for(g, self.evals + i))
            .collect();
        self.evals += genomes.len();
        let results = self.engine.run(jobs);
        results
            .iter()
            .map(|altered| fitness_of(&self.baseline, altered))
            .collect()
    }
}

/// The paper's four fixed scenarios evaluated as fitnesses, plus the
/// worst key among them under `objective` — the bar the adversary
/// search has to clear to claim a new worst case.
///
/// Each altered scenario is paired with the baseline it would be
/// reported against (the secure-client cell compares to the
/// doubled-vCPU baseline, exactly as the campaign does).
pub fn paper_worst(
    engine: &Engine,
    setup: &PaperSetup,
    chain: Chain,
    objective: Objective,
) -> (f64, Vec<(ScenarioKind, Fitness)>) {
    let mut jobs = Vec::new();
    for kind in ScenarioKind::ALTERED {
        jobs.push(Job::scenario_baseline(setup, chain, kind));
        jobs.push(Job::scenario(setup, chain, kind));
    }
    let results = engine.run(jobs);
    let scenarios: Vec<(ScenarioKind, Fitness)> = ScenarioKind::ALTERED
        .into_iter()
        .enumerate()
        .map(|(i, kind)| (kind, fitness_of(&results[2 * i], &results[2 * i + 1])))
        .collect();
    let worst = scenarios
        .iter()
        .map(|(_, fit)| fit.key(objective))
        .fold(f64::NEG_INFINITY, f64::max);
    (worst, scenarios)
}

/// Stream label for the bootstrap rng (independent of every run seed).
const CI_STREAM: u64 = 0xC1;

/// Replays `genome` under `replicates` perturbed master seeds and
/// summarises the finite sensitivity scores as a bootstrap CI.
///
/// Liveness-losing replicates are counted, not averaged (an interval
/// over ∞ is meaningless); when every replicate loses liveness the CI
/// is `None` and `lost_replicates` tells the whole story.
pub fn replicate_ci(
    engine: &Engine,
    setup: &PaperSetup,
    chain: Chain,
    genome: &Genome,
    replicates: usize,
) -> Option<ScoreCi> {
    let horizon_secs = setup.horizon.as_micros() / 1_000_000;
    let seeds = SeedSequence::new(setup.seed).seeds(replicates);
    let fitnesses: Vec<Fitness> = seeds
        .iter()
        .map(|&seed| {
            let replica = PaperSetup::quick(horizon_secs, seed);
            let mut eval = EngineEval::new(engine, &replica, chain);
            eval.eval(genome)
        })
        .collect();
    let finite: Vec<f64> = fitnesses.iter().filter_map(|f| f.score).collect();
    let lost = fitnesses.iter().filter(|f| f.lost_liveness).count();
    let ci = percentile_ci(&finite, &mut DetRng::new(setup.seed).derive(CI_STREAM));
    ci.map(|ci| ScoreCi {
        lo: ci.lo,
        hi: ci.hi,
        finite_replicates: finite.len(),
        lost_replicates: lost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_adversary::SearchSpace;

    fn tiny_setup() -> PaperSetup {
        PaperSetup::quick(20, 1)
    }

    #[test]
    fn engine_eval_matches_direct_run() {
        let setup = tiny_setup();
        let engine = Engine::new(1, None);
        let chain = Chain::Redbelly;
        let space = SearchSpace::paper(&setup, chain);
        let genome = space.random_genome(&mut DetRng::new(5));

        let mut eval = EngineEval::new(&engine, &setup, chain);
        let through_engine = eval.eval(&genome);

        let mut config = setup.run_config(chain, ScenarioKind::Baseline);
        config.faults = genome.schedule();
        config.byzantine = genome.byzantine_spec();
        let direct = chain.run_with_cpu(&config, 1.0);
        let expected = fitness_of(eval.baseline(), &direct);
        assert_eq!(through_engine, expected);
        assert_eq!(eval.evals(), 1);
    }

    #[test]
    fn paper_worst_covers_all_four_scenarios() {
        let setup = tiny_setup();
        let engine = Engine::new(1, None);
        let (worst, scenarios) = paper_worst(&engine, &setup, Chain::Aptos, Objective::Sensitivity);
        assert_eq!(scenarios.len(), 4);
        let max = scenarios
            .iter()
            .map(|(_, f)| f.key(Objective::Sensitivity))
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(worst, max);
    }
}
