//! Fig. 1 — the sensitivity of Aptos to failures, shown as the two
//! latency eCDFs (baseline vs transient failures) whose area difference
//! is the score.

use serde::Serialize;
use stabl::{Chain, ScenarioKind};
use stabl_bench::{BenchOpts, Job};

#[derive(Serialize)]
struct EcdfSeries {
    label: String,
    points: Vec<(f64, f64)>,
    area: f64,
}

fn decimate(points: Vec<(f64, f64)>, max_points: usize) -> Vec<(f64, f64)> {
    if points.len() <= max_points {
        return points;
    }
    let stride = points.len().div_ceil(max_points);
    let mut out: Vec<(f64, f64)> = points.iter().step_by(stride).copied().collect();
    if let Some(last) = points.last() {
        if out.last() != Some(last) {
            out.push(*last);
        }
    }
    out
}

fn main() {
    let opts = BenchOpts::from_args();
    eprintln!(
        "Fig. 1: Aptos baseline vs transient failures ({})",
        opts.setup.horizon
    );
    let mut results = opts.engine().run(vec![
        Job::scenario(&opts.setup, Chain::Aptos, ScenarioKind::Baseline),
        Job::scenario(&opts.setup, Chain::Aptos, ScenarioKind::Transient),
    ]);
    let altered = results.pop().expect("transient cell");
    let baseline = results.pop().expect("baseline cell");

    let b = baseline.ecdf().expect("baseline committed transactions");
    let series = |label: &str, e: &stabl::metrics::Ecdf| EcdfSeries {
        label: label.to_owned(),
        points: decimate(e.steps().collect(), 500),
        area: e.area(),
    };
    let mut out = vec![series("baseline", &b)];
    match altered.ecdf() {
        Ok(a) => {
            let sensitivity = stabl::metrics::Sensitivity::from_ecdfs(&b, &a);
            println!("Aptos sensitivity to transient failures: {sensitivity}");
            out.push(series("altered (transient failures)", &a));
        }
        Err(_) => println!("Aptos sensitivity to transient failures: ∞ (nothing committed)"),
    }
    for s in &out {
        println!(
            "{:<30} area={:.3}  p50={:.3}s  max={:.3}s  n={}",
            s.label,
            s.area,
            s.points[s.points.len() / 2].0,
            s.points.last().map(|p| p.0).unwrap_or(0.0),
            s.points.len(),
        );
    }
    opts.write_json("fig1_aptos_ecdf.json", &out);
}
