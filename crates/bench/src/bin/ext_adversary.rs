//! Extension: the adversary search.
//!
//! The paper measures each chain under four *fixed* failure scenarios.
//! This extension asks the harder question: what is the worst schedule
//! the fault model can express? Per chain it
//!
//! 1. scores the paper's four scenarios (the bar to clear),
//! 2. runs a seeded search (simulated annealing or (μ+λ)) over fault
//!    schedules, maximising the chosen objective through the cached
//!    campaign engine,
//! 3. ddmin-shrinks the winner to a minimal reproducer (≤ 3 actions),
//! 4. replicates the reproducer across perturbed seeds for a bootstrap
//!    CI, and
//! 5. commits the reproducer as `<out>/adversary/corpus/<chain>.json`
//!    — the corpus the `adversary_corpus` regression test replays.
//!
//! Everything is deterministic: same seed ⇒ byte-identical search
//! trace, corpus and summary artefacts, whatever `--jobs` or the cache
//! say.
//!
//! Flags beyond the shared ones: `--budget <evals>` (default 200),
//! `--strategy annealing|mu-lambda`, `--objective
//! sensitivity|liveness-loss`, `--chain <name>` (repeatable; default
//! all five), `--replicates <n>` (CI seeds, default 5).

use std::path::PathBuf;

use stabl::{Chain, PaperSetup};
use stabl_adversary::{shrink, CorpusEntry, Objective, SearchConfig, SearchSpace, Strategy};
use stabl_bench::{paper_worst, replicate_ci, Engine, EngineEval};
use stabl_stats::SeedSequence;

/// Parsed command line (this binary has search flags the shared
/// `BenchOpts` parser would reject, so it parses on its own).
struct Opts {
    setup: PaperSetup,
    out_dir: PathBuf,
    jobs: usize,
    no_cache: bool,
    budget: usize,
    strategy: Strategy,
    objective: Objective,
    chains: Vec<Chain>,
    replicates: usize,
}

fn parse_chain(name: &str) -> Chain {
    Chain::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            panic!("unknown chain {name}; known: Algorand Aptos Avalanche Redbelly Solana")
        })
}

fn parse_args() -> Opts {
    let mut setup = PaperSetup::default();
    let mut quick: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut opts = Opts {
        setup: setup.clone(),
        out_dir: PathBuf::from("results"),
        jobs: Engine::default_workers(),
        no_cache: false,
        budget: 200,
        strategy: Strategy::Annealing,
        objective: Objective::Sensitivity,
        chains: Vec::new(),
        replicates: 5,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{arg} takes {what}"));
        match arg.as_str() {
            "--quick" => quick = Some(value("seconds").parse().expect("--quick takes seconds")),
            "--seed" => seed = Some(value("a u64").parse().expect("--seed takes a u64")),
            "--out" => opts.out_dir = PathBuf::from(value("a directory")),
            "--jobs" => {
                opts.jobs = value("a positive thread count")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .expect("--jobs takes a positive thread count");
            }
            "--no-cache" => opts.no_cache = true,
            "--budget" => {
                opts.budget = value("an eval count")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 1)
                    .expect("--budget takes an eval count > 1");
            }
            "--strategy" => {
                let name = value("annealing|mu-lambda");
                opts.strategy = Strategy::parse(&name).unwrap_or_else(|| {
                    panic!("unknown strategy {name}; known: annealing mu-lambda")
                });
            }
            "--objective" => {
                let name = value("sensitivity|liveness-loss");
                opts.objective = Objective::parse(&name).unwrap_or_else(|| {
                    panic!("unknown objective {name}; known: sensitivity liveness-loss")
                });
            }
            "--chain" => opts.chains.push(parse_chain(&value("a chain name"))),
            "--replicates" => {
                opts.replicates = value("a positive seed count")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .expect("--replicates takes a positive seed count");
            }
            other => panic!(
                "unknown argument {other}; known: --quick --seed --out --jobs --no-cache \
                 --budget --strategy --objective --chain --replicates"
            ),
        }
    }
    if let Some(secs) = quick {
        setup = PaperSetup::quick(secs, seed.unwrap_or(setup.seed));
    } else if let Some(seed) = seed {
        setup.seed = seed;
    }
    opts.setup = setup;
    if opts.chains.is_empty() {
        opts.chains = Chain::ALL.to_vec();
    }
    opts
}

fn fmt_key(key: f64) -> String {
    if key >= stabl_adversary::LIVENESS_LOSS_KEY {
        format!("INF+{:.3}", key - stabl_adversary::LIVENESS_LOSS_KEY)
    } else {
        format!("{key:.3}")
    }
}

fn main() {
    let opts = parse_args();
    let setup = &opts.setup;
    eprintln!(
        "adversary search ({}, budget {}, {} / {})",
        setup.horizon,
        opts.budget,
        opts.strategy.name(),
        opts.objective.name()
    );
    let cache_dir = if opts.no_cache {
        None
    } else {
        Some(opts.out_dir.join(".cache"))
    };
    let engine = Engine::new(opts.jobs, cache_dir);
    let corpus_dir = opts.out_dir.join("adversary").join("corpus");
    std::fs::create_dir_all(&corpus_dir).expect("create corpus directory");

    struct Row {
        chain: &'static str,
        paper_worst_key: f64,
        discovered_key: f64,
        shrunk_key: f64,
        shrunk_actions: usize,
        beat: bool,
    }

    let search_seeds = SeedSequence::new(setup.seed);
    let mut rows: Vec<Row> = Vec::new();
    let mut summary = Vec::new();
    let mut traces = Vec::new();
    for &chain in &opts.chains {
        // The chain's index in Chain::ALL keys its search stream, so a
        // --chain subset searches identically to the full sweep.
        let chain_index = Chain::ALL
            .iter()
            .position(|&c| c == chain)
            .expect("known chain");
        let search_seed = search_seeds.seed(chain_index + 1);

        let (paper_worst_key, scenarios) = paper_worst(&engine, setup, chain, opts.objective);
        let space = SearchSpace::paper(setup, chain);
        let mut eval = EngineEval::new(&engine, setup, chain);
        let config = SearchConfig {
            seed: search_seed,
            budget: opts.budget,
            objective: opts.objective,
        };
        let outcome = opts.strategy.search(&space, &mut eval, &config);
        let discovered_key = outcome.best_fitness.key(opts.objective);
        let beat = discovered_key > paper_worst_key;

        // Shrink down to the tightest threshold that still proves the
        // point: strictly above the paper's worst when the search beat
        // it, else within 10 % of the discovery.
        let min_key = if beat {
            paper_worst_key + (discovered_key - paper_worst_key) * 1e-6
        } else {
            discovered_key - discovered_key.abs() * 0.1
        };
        let shrunk = shrink(
            &outcome.best,
            outcome.best_fitness,
            &mut eval,
            opts.objective,
            min_key,
            opts.budget.min(100),
        );
        let ci = replicate_ci(&engine, setup, chain, &shrunk.genome, opts.replicates);

        let entry = CorpusEntry {
            chain: chain.name().to_owned(),
            horizon_secs: setup.horizon.as_micros() / 1_000_000,
            seed: setup.seed,
            search_seed,
            strategy: opts.strategy,
            objective: opts.objective,
            budget: opts.budget,
            paper_worst_key,
            discovered: outcome.best_fitness,
            genome: shrunk.genome.clone(),
            fitness: shrunk.fitness,
            ci,
            evals: eval.evals(),
        };
        let path = corpus_dir.join(entry.file_name());
        let json = serde_json::to_string_pretty(&entry).expect("serialise corpus entry");
        std::fs::write(&path, json).expect("write corpus entry");
        eprintln!("wrote {}", path.display());

        rows.push(Row {
            chain: chain.name(),
            paper_worst_key,
            discovered_key,
            shrunk_key: shrunk.fitness.key(opts.objective),
            shrunk_actions: shrunk.genome.actions.len(),
            beat,
        });
        summary.push(serde_json::json!({
            "chain": chain.name(),
            "paper_scenarios": scenarios
                .iter()
                .map(|(kind, fit)| serde_json::json!({
                    "scenario": kind.name(),
                    "key": fit.key(opts.objective),
                    "lost_liveness": fit.lost_liveness,
                }))
                .collect::<Vec<_>>(),
            "paper_worst_key": paper_worst_key,
            "discovered_key": discovered_key,
            "beat_paper": beat,
            "shrunk_key": shrunk.fitness.key(opts.objective),
            "shrunk_actions": shrunk.genome.actions.len(),
            "evals": eval.evals(),
        }));
        traces.push(serde_json::json!({
            "chain": chain.name(),
            "search_seed": search_seed,
            "trace": outcome.trace,
        }));
    }

    let write_json = |name: &str, json: String| {
        let path = opts.out_dir.join(name);
        std::fs::write(&path, json).expect("write artefact");
        eprintln!("wrote {}", path.display());
    };
    write_json(
        "ext_adversary.json",
        serde_json::to_string_pretty(&summary).expect("serialise summary"),
    );
    write_json(
        "adversary_traces.json",
        serde_json::to_string_pretty(&traces).expect("serialise traces"),
    );

    let title = format!(
        "Extension — adversary search vs the paper's scenarios ({})",
        opts.objective.name()
    );
    println!("\n{title}\n{}", "─".repeat(title.chars().count()));
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "chain", "paper-worst", "discovered", "shrunk", "actions", "beat?"
    );
    for row in &rows {
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>8} {:>8}",
            row.chain,
            fmt_key(row.paper_worst_key),
            fmt_key(row.discovered_key),
            fmt_key(row.shrunk_key),
            row.shrunk_actions,
            if row.beat { "yes" } else { "no" },
        );
    }
    let beaten = rows.iter().filter(|r| r.beat).count();
    println!(
        "\n{beaten}/{} chains: discovered schedule strictly worse than every paper scenario",
        opts.chains.len()
    );
}
