//! Fig. 6 — throughput of the five blockchains over time in the
//! baseline and under the "Partition" alteration (1-second bins).

use stabl::{Chain, ScenarioKind};
use stabl_bench::{throughput_csv, BenchOpts, Job};

fn main() {
    let opts = BenchOpts::from_args();
    eprintln!(
        "Fig. 6: throughput over time, scenario = Partition ({})",
        opts.setup.horizon
    );
    let jobs = Chain::ALL
        .iter()
        .flat_map(|&chain| {
            [
                Job::scenario(&opts.setup, chain, ScenarioKind::Baseline),
                Job::scenario(&opts.setup, chain, ScenarioKind::Partition),
            ]
        })
        .collect();
    let results = opts.engine().run(jobs);
    for (i, &chain) in Chain::ALL.iter().enumerate() {
        let (baseline, altered) = (&results[2 * i], &results[2 * i + 1]);
        let csv = throughput_csv(baseline, altered);
        opts.write_text(
            &format!(
                "fig6_throughput_partition.{}.csv",
                chain.name().to_lowercase()
            ),
            &csv,
        );
        let base_tp = baseline.throughput();
        let alt_tp = altered.throughput();
        let fault_s = (opts.setup.fault_at.as_micros() / 1_000_000) as usize;
        let recover_s = (opts.setup.recover_at.as_micros() / 1_000_000) as usize;
        let end_s = (opts.setup.horizon.as_micros() / 1_000_000) as usize;
        println!(
            "{:<10} baseline {:>6.1} tps | altered: pre {:>6.1}  during {:>6.1}  after {:>6.1} tps | peak after {:>5}",
            chain.name(),
            base_tp.mean_over(5, end_s - 5),
            alt_tp.mean_over(5, fault_s),
            alt_tp.mean_over(fault_s, recover_s.min(end_s - 1)),
            alt_tp.mean_over(recover_s.min(end_s - 1), end_s),
            alt_tp.peak_over(recover_s.min(end_s - 1), end_s),
        );
    }
}
