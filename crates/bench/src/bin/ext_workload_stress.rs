//! Extension: fluctuating workloads.
//!
//! The paper's §8 names request bursts and fluctuating workloads as an
//! explicit limitation of its constant-rate methodology. This extension
//! subjects every chain to (i) periodic 4× bursts and (ii) a linear ramp
//! from 200 to 400 TPS, without any fault, and reports the sensitivity
//! relative to the constant-rate baseline — i.e. how gracefully each
//! chain absorbs load variation.
//!
//! Generation rides the `stabl-workload` grid generator (via the
//! `stabl::WorkloadSpec` shim), so these cells are byte-identical to
//! the pre-subsystem artifact; the stochastic production model is
//! exercised by `ext_contention` instead.

use stabl::{report_from_runs, Chain, ScenarioKind, WorkloadShape};
use stabl_bench::{sensitivity_table, BenchOpts, Job};
use stabl_sim::SimDuration;

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    eprintln!("workload-stress extension ({})", setup.horizon);
    let shapes = [
        (
            "bursts (4x for 5 s every 60 s)",
            WorkloadShape::Burst {
                period: SimDuration::from_secs(60),
                burst_len: SimDuration::from_secs(5),
                factor: 4,
            },
        ),
        (
            "ramp (200 → 400 TPS)",
            WorkloadShape::Ramp {
                end_tps_per_client: 80,
            },
        ),
    ];
    // One baseline per chain (shared by both shapes) followed by one
    // altered run per shape × chain.
    let mut jobs: Vec<Job> = Chain::ALL
        .iter()
        .map(|&chain| Job::scenario(setup, chain, ScenarioKind::Baseline))
        .collect();
    for (label, shape) in &shapes {
        for &chain in &Chain::ALL {
            let mut config = setup.run_config(chain, ScenarioKind::Baseline);
            config.workload.shape = *shape;
            jobs.push(Job::config(
                format!("{}/{label}", chain.name()),
                chain,
                config,
            ));
        }
    }
    let results = opts.engine().run(jobs);
    let mut artefact = Vec::new();
    for (s, (label, _)) in shapes.iter().enumerate() {
        let mut reports = Vec::new();
        for (c, &chain) in Chain::ALL.iter().enumerate() {
            let baseline = &results[c];
            let altered = &results[Chain::ALL.len() * (s + 1) + c];
            reports.push(report_from_runs(
                chain,
                ScenarioKind::Baseline,
                baseline,
                altered,
            ));
        }
        println!(
            "\n{}",
            sensitivity_table(&format!("Extension — {label}"), &reports)
        );
        for r in &reports {
            artefact.push(serde_json::json!({
                "shape": label,
                "chain": r.chain.name(),
                "score": r.sensitivity.score(),
                "unresolved": r.altered.unresolved,
                "lost_liveness": r.altered.lost_liveness,
            }));
        }
    }
    opts.write_json("ext_workload_stress.json", &artefact);
}
