//! Fig. 7 — the radar synthesis: every chain's sensitivity to crashes,
//! transient failures, partitions and the secure client, on one chart.

use stabl_bench::{radar_rows, run_campaign, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    eprintln!("Fig. 7: radar synthesis ({})", opts.setup.horizon);
    let reports = run_campaign(&opts.engine(), &opts.setup);
    let rows = radar_rows(&reports);

    println!(
        "\n{:<10} {:>14} {:>14} {:>14} {:>16}",
        "chain", "crash", "transient", "partition", "secure-client"
    );
    let fmt = |r: &stabl::report::SensitivityRecord| match r.score {
        None => "∞".to_owned(),
        Some(s) if r.improved => format!("{s:.3}↓"),
        Some(s) => format!("{s:.3}"),
    };
    for row in &rows {
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>16}",
            row.chain,
            fmt(&row.crash),
            fmt(&row.transient),
            fmt(&row.partition),
            fmt(&row.secure_client),
        );
    }
    println!(
        "\n(↓ marks scenarios where the alteration improved responsiveness; ∞ = liveness lost)"
    );
    opts.write_json("fig7_radar.json", &rows);
}
