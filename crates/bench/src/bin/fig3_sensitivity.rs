//! Fig. 3 — sensitivity of the five blockchains to (a) `f = t` crashes,
//! (b) `f = t + 1` transient failures, (c) a partition of `f = t + 1`
//! nodes and (d) the secure client. Bars marked "improved" correspond to
//! the paper's striped bars (the altered environment outperformed the
//! baseline); `∞` marks liveness violations.

use stabl::report::{ScenarioReport, SensitivityRecord};
use stabl::ScenarioKind;
use stabl_bench::{run_campaign_with_telemetry, sensitivity_table, BenchOpts};

#[derive(serde::Serialize)]
struct Fig3Row {
    chain: String,
    scenario: String,
    sensitivity: SensitivityRecord,
    baseline: stabl::report::RunSummary,
    altered: stabl::report::RunSummary,
}

fn main() {
    let opts = BenchOpts::from_args();
    eprintln!("Fig. 3: full sensitivity campaign ({})", opts.setup.horizon);
    let (reports, telemetry) = run_campaign_with_telemetry(&opts.engine(), &opts.setup);

    for (part, kind, title) in [
        ('a', ScenarioKind::Crash, "Fig. 3a — f = t crashes"),
        (
            'b',
            ScenarioKind::Transient,
            "Fig. 3b — f = t+1 transient failures",
        ),
        (
            'c',
            ScenarioKind::Partition,
            "Fig. 3c — partition of f = t+1 nodes",
        ),
        (
            'd',
            ScenarioKind::SecureClient,
            "Fig. 3d — secure client (t+1 = 4 nodes)",
        ),
    ] {
        let part_reports: Vec<ScenarioReport> =
            reports.iter().filter(|r| r.kind == kind).cloned().collect();
        println!("\n{}", sensitivity_table(title, &part_reports));
        let _ = part;
    }

    let rows: Vec<Fig3Row> = reports
        .iter()
        .map(|r| Fig3Row {
            chain: r.chain.name().to_owned(),
            scenario: r.kind.name().to_owned(),
            sensitivity: r.sensitivity.into(),
            baseline: r.baseline,
            altered: r.altered,
        })
        .collect();
    opts.write_json("fig3_sensitivity.json", &rows);
    // Wall-clock data goes to its own artefact: fig3_sensitivity.json
    // stays byte-identical across machines, jobs counts and cache state.
    opts.write_json("fig3_telemetry.json", &telemetry);
}
