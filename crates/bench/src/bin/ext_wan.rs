//! Extension: geo-distributed (WAN) deployment.
//!
//! The paper's testbed is a single cluster (5–10 ms links) and it argues
//! (§8, citing its Redbelly evaluation) that small-scale results carry
//! over. This extension re-runs the baseline and crash scenarios with
//! WAN-like links (40–120 ms one way) and compares latency profiles and
//! crash sensitivities across the two latency regimes.

use stabl::{Chain, PaperSetup, ScenarioKind};
use stabl_bench::BenchOpts;
use stabl_sim::{LatencyModel, LatencyTopology};

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "chain", "LAN p50", "WAN p50", "geo p50", "LAN crash", "WAN crash", "geo crash"
    );
    let mut artefact = Vec::new();
    for &chain in &Chain::ALL {
        eprintln!("· {} …", chain.name());
        let lan = opts.setup.clone();
        let wan = PaperSetup { latency: LatencyModel::wan(), ..opts.setup.clone() };
        let lan_report = lan.sensitivity(chain, ScenarioKind::Crash);
        let wan_report = wan.sensitivity(chain, ScenarioKind::Crash);
        // Five regions, nodes spread round-robin: LAN inside a region,
        // WAN across regions.
        let geo_report = {
            let setup = opts.setup.clone();
            let mut base_cfg = setup.run_config(chain, ScenarioKind::Baseline);
            base_cfg.topology = Some(LatencyTopology::geo(5, setup.n));
            let mut alt_cfg = setup.run_config(chain, ScenarioKind::Crash);
            alt_cfg.topology = Some(LatencyTopology::geo(5, setup.n));
            let baseline = chain.run(&base_cfg);
            let altered = chain.run(&alt_cfg);
            stabl::report_from_runs(chain, ScenarioKind::Crash, &baseline, &altered)
        };
        let p50 = |s: &stabl::report::RunSummary| {
            s.p50_latency.map(|p| format!("{p:.3}s")).unwrap_or_else(|| "—".into())
        };
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
            chain.name(),
            p50(&lan_report.baseline),
            p50(&wan_report.baseline),
            p50(&geo_report.baseline),
            lan_report.sensitivity.to_string(),
            wan_report.sensitivity.to_string(),
            geo_report.sensitivity.to_string(),
        );
        artefact.push(serde_json::json!({
            "chain": chain.name(),
            "lan_p50": lan_report.baseline.p50_latency,
            "wan_p50": wan_report.baseline.p50_latency,
            "geo_p50": geo_report.baseline.p50_latency,
            "lan_crash": lan_report.sensitivity.score(),
            "wan_crash": wan_report.sensitivity.score(),
            "geo_crash": geo_report.sensitivity.score(),
        }));
    }
    opts.write_json("ext_wan.json", &artefact);
}
