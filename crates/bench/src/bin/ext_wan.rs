//! Extension: geo-distributed (WAN) deployment.
//!
//! The paper's testbed is a single cluster (5–10 ms links) and it argues
//! (§8, citing its Redbelly evaluation) that small-scale results carry
//! over. This extension re-runs the baseline and crash scenarios with
//! WAN-like links (40–120 ms one way) and compares latency profiles and
//! crash sensitivities across the two latency regimes.

use stabl::{report_from_runs, Chain, PaperSetup, ScenarioKind};
use stabl_bench::{BenchOpts, Job};
use stabl_sim::{LatencyModel, LatencyTopology};

fn main() {
    let opts = BenchOpts::from_args();
    let lan = opts.setup.clone();
    let wan = PaperSetup {
        latency: LatencyModel::wan(),
        ..opts.setup.clone()
    };
    let jobs = Chain::ALL
        .iter()
        .flat_map(|&chain| {
            // Five regions, nodes spread round-robin: LAN inside a
            // region, WAN across regions.
            let geo = |kind: ScenarioKind| {
                let mut config = lan.run_config(chain, kind);
                config.topology = Some(LatencyTopology::geo(5, lan.n));
                Job::config(
                    format!("{}/geo-{}", chain.name(), kind.name()),
                    chain,
                    config,
                )
            };
            [
                Job::scenario_baseline(&lan, chain, ScenarioKind::Crash),
                Job::scenario(&lan, chain, ScenarioKind::Crash),
                Job::scenario_baseline(&wan, chain, ScenarioKind::Crash),
                Job::scenario(&wan, chain, ScenarioKind::Crash),
                geo(ScenarioKind::Baseline),
                geo(ScenarioKind::Crash),
            ]
        })
        .collect();
    let results = opts.engine().run(jobs);
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "chain", "LAN p50", "WAN p50", "geo p50", "LAN crash", "WAN crash", "geo crash"
    );
    let mut artefact = Vec::new();
    for (i, &chain) in Chain::ALL.iter().enumerate() {
        let cell = |j: usize| &results[6 * i + j];
        let lan_report = report_from_runs(chain, ScenarioKind::Crash, cell(0), cell(1));
        let wan_report = report_from_runs(chain, ScenarioKind::Crash, cell(2), cell(3));
        let geo_report = report_from_runs(chain, ScenarioKind::Crash, cell(4), cell(5));
        let p50 = |s: &stabl::report::RunSummary| {
            s.p50_latency
                .map(|p| format!("{p:.3}s"))
                .unwrap_or_else(|| "—".into())
        };
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
            chain.name(),
            p50(&lan_report.baseline),
            p50(&wan_report.baseline),
            p50(&geo_report.baseline),
            lan_report.sensitivity.to_string(),
            wan_report.sensitivity.to_string(),
            geo_report.sensitivity.to_string(),
        );
        artefact.push(serde_json::json!({
            "chain": chain.name(),
            "lan_p50": lan_report.baseline.p50_latency,
            "wan_p50": wan_report.baseline.p50_latency,
            "geo_p50": geo_report.baseline.p50_latency,
            "lan_crash": lan_report.sensitivity.score(),
            "wan_crash": wan_report.sensitivity.score(),
            "geo_crash": geo_report.sensitivity.score(),
        }));
    }
    opts.write_json("ext_wan.json", &artefact);
}
