//! Extension: contention sensitivity under production-shaped traffic.
//!
//! The paper's workload is deliberately contention-free: a handful of
//! accounts per client, constant rate, disjoint read-write sets (§3).
//! This extension replays the fig. 3 crash scenario under the
//! production traffic model — a 10M-account Zipf population with
//! skew-colliding receivers and Poisson/burst-train arrivals — and
//! sweeps the Zipf exponent θ ∈ {0.0, 0.6, 0.9, 1.1} against burst
//! factors {1, 4, 16} while the *mean* offered rate stays pinned at
//! the paper's 200 TPS. The question: does account skew amplify a
//! chain's sensitivity to the same fault, at the same load?
//!
//! Every (chain, θ, burst) cell is replicated over a [`SeedSequence`]
//! and folded into a [`ReplicatedCell`] with 95 % bootstrap CIs, the
//! same machinery as `fig3_sensitivity_ci`. Artefacts go under
//! `<out>/contention/`.

use stabl::{report_from_runs, Chain, PaperSetup, ScenarioKind, TrafficModel, WorkloadSpec};
use stabl_bench::{BenchOpts, Job};
use stabl_stats::{CellObservation, ReplicatedCell, SeedSequence};

/// Zipf exponents swept, in permille (0 = uniform … 1100 = past-unit
/// skew where the head accounts dominate).
const THETAS: [u32; 4] = [0, 600, 900, 1100];
/// Burst-train factors swept; 1 is pure Poisson. The traffic model
/// rescales the base rate so every factor keeps the same mean TPS.
const BURSTS: [u32; 3] = [1, 4, 16];
/// The fig. 3 fault scenario the sweep replays (`f = t_B` crashes).
const FAULT: ScenarioKind = ScenarioKind::Crash;
/// Default seeds per cell; below the fig3_ci default because the grid
/// is 12× wider than a campaign column.
const DEFAULT_REPLICATES: usize = 3;

/// One cell's coordinates in the sweep grid.
#[derive(Clone, Copy)]
struct GridPoint {
    chain: Chain,
    theta_permille: u32,
    burst: u32,
}

/// The contention counters of one run, lifted out of `SimStats`.
fn contention_json(stats: &stabl_sim::SimStats) -> serde_json::Value {
    serde_json::json!({
        "speculative_reexecutions": stats.speculative_reexecutions,
        "conflict_aborts": stats.conflict_aborts,
        "pool_evictions": stats.pool_evictions,
        "pool_replacements": stats.pool_replacements,
    })
}

/// A cell's position on the degradation axis: infinite replicates
/// first (a liveness loss outranks any finite score), then the
/// bootstrap point estimate.
fn severity(cell: &ReplicatedCell) -> (u64, f64) {
    let point = cell.score.ci.as_ref().map_or(f64::INFINITY, |ci| ci.point);
    (cell.infinite, point)
}

/// `true` if severity never decreases along consecutive θ steps.
fn monotone_in_theta(row: &[&ReplicatedCell]) -> bool {
    row.windows(2).all(|w| {
        let (inf_a, pt_a) = severity(w[0]);
        let (inf_b, pt_b) = severity(w[1]);
        inf_b > inf_a || (inf_b == inf_a && pt_b + 1e-12 >= pt_a)
    })
}

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    let replicates = opts.replicates.unwrap_or(DEFAULT_REPLICATES);
    eprintln!(
        "contention extension ({}, {} replicates, {} scenario)",
        setup.horizon,
        replicates,
        FAULT.name()
    );

    // The grid, chain-major so the artefact reads like fig. 3.
    let mut grid = Vec::new();
    for &chain in &Chain::ALL {
        for &theta_permille in &THETAS {
            for &burst in &BURSTS {
                grid.push(GridPoint {
                    chain,
                    theta_permille,
                    burst,
                });
            }
        }
    }

    // One flat seed-major batch: replicate r occupies the job range
    // [r * 2 * grid.len(), (r + 1) * 2 * grid.len()), two jobs per
    // cell (baseline then altered) — both under the *same* production
    // workload, so the score isolates the fault, not the traffic.
    let seeds = SeedSequence::new(setup.seed);
    let stride = 2 * grid.len();
    let mut jobs = Vec::with_capacity(replicates * stride);
    let mut replicate_setups = Vec::with_capacity(replicates);
    for r in 0..replicates {
        let rsetup = PaperSetup {
            seed: seeds.seed(r),
            ..setup.clone()
        };
        for point in &grid {
            let model = TrafficModel::production(point.theta_permille, point.burst);
            let workload = WorkloadSpec::production(rsetup.submit_until, model);
            let label = format!(
                "{}/theta{}/burst{}",
                point.chain.name(),
                point.theta_permille,
                point.burst
            );
            let mut baseline = rsetup.run_config(point.chain, ScenarioKind::Baseline);
            baseline.workload = workload.clone();
            jobs.push(Job::config(
                format!("{label}/baseline"),
                point.chain,
                baseline,
            ));
            let mut altered = rsetup.run_config(point.chain, FAULT);
            altered.workload = workload;
            jobs.push(Job::config(
                format!("{label}/{}", FAULT.name()),
                point.chain,
                altered,
            ));
        }
        replicate_setups.push(rsetup);
    }
    let results = opts.engine().run(jobs);

    // Fold each cell across its replicates.
    let mut cells: Vec<ReplicatedCell> = Vec::with_capacity(grid.len());
    let mut artefact_cells = Vec::with_capacity(grid.len());
    for (i, point) in grid.iter().enumerate() {
        let observations: Vec<CellObservation> = (0..replicates)
            .map(|r| {
                let baseline = &results[r * stride + 2 * i];
                let altered = &results[r * stride + 2 * i + 1];
                let report = report_from_runs(point.chain, FAULT, baseline, altered);
                let record: stabl::report::SensitivityRecord = report.sensitivity.into();
                CellObservation {
                    seed: replicate_setups[r].seed,
                    score: record.score,
                    improved: record.improved,
                    commit_ratio: altered.commit_ratio(),
                    mean_latency: report.altered.mean_latency,
                }
            })
            .collect();
        let scenario = format!(
            "{}/theta{}/burst{}",
            FAULT.name(),
            point.theta_permille,
            point.burst
        );
        let cell = ReplicatedCell::from_observations(
            point.chain.name(),
            &scenario,
            &observations,
            setup.seed,
        );
        // Counters from replicate 0 (the base seed) keep the artefact
        // auditable without averaging integer event counts.
        artefact_cells.push(serde_json::json!({
            "chain": point.chain.name(),
            "theta_permille": point.theta_permille,
            "burst": point.burst,
            "cell": &cell,
            "contention_baseline": contention_json(&results[2 * i].stats),
            "contention_altered": contention_json(&results[2 * i + 1].stats),
        }));
        cells.push(cell);
    }

    // The θ-degradation table: one row per (chain, burst), severity
    // across θ in sweep order.
    let cell_at = |chain: Chain, theta: u32, burst: u32| -> &ReplicatedCell {
        let gi = grid
            .iter()
            .position(|p| p.chain == chain && p.theta_permille == theta && p.burst == burst)
            .expect("grid covers the full sweep");
        &cells[gi]
    };
    let mut monotone_rows = Vec::new();
    println!(
        "\nContention sweep — {} sensitivity vs Zipf θ (200 TPS mean)\n{}",
        FAULT.name(),
        "─".repeat(58)
    );
    println!(
        "{:<10} {:>5} {:>12} {:>12} {:>12} {:>12}  monotone",
        "chain", "burst", "θ=0.0", "θ=0.6", "θ=0.9", "θ=1.1"
    );
    for &chain in &Chain::ALL {
        for &burst in &BURSTS {
            let row: Vec<&ReplicatedCell> = THETAS
                .iter()
                .map(|&theta| cell_at(chain, theta, burst))
                .collect();
            let monotone = monotone_in_theta(&row);
            let fmt = |cell: &ReplicatedCell| -> String {
                match (&cell.score.ci, cell.infinite) {
                    (_, n) if n == cell.replicates => "∞".to_owned(),
                    (Some(ci), 0) => format!("{:.3}", ci.point),
                    (Some(ci), n) => format!("{:.3}+{n}∞", ci.point),
                    (None, n) => format!("{n}∞"),
                }
            };
            println!(
                "{:<10} {:>5} {:>12} {:>12} {:>12} {:>12}  {}",
                chain.name(),
                burst,
                fmt(row[0]),
                fmt(row[1]),
                fmt(row[2]),
                fmt(row[3]),
                if monotone { "yes" } else { "no" }
            );
            monotone_rows.push(serde_json::json!({
                "chain": chain.name(),
                "burst": burst,
                "monotone_in_theta": monotone,
            }));
        }
    }
    let monotone_chains: Vec<&str> = Chain::ALL
        .iter()
        .filter(|&&chain| {
            BURSTS.iter().any(|&burst| {
                let row: Vec<&ReplicatedCell> = THETAS
                    .iter()
                    .map(|&theta| cell_at(chain, theta, burst))
                    .collect();
                monotone_in_theta(&row)
            })
        })
        .map(|chain| chain.name())
        .collect();
    println!(
        "\nchains degrading monotonically with θ (some burst factor): {}",
        if monotone_chains.is_empty() {
            "none".to_owned()
        } else {
            monotone_chains.join(", ")
        }
    );

    // CSV companion for plotting: one row per cell.
    let mut csv = String::from(
        "chain,theta_permille,burst,score_point,score_lo,score_hi,infinite,\
         commit_ratio,pool_evictions,pool_replacements,conflict_aborts\n",
    );
    for (i, point) in grid.iter().enumerate() {
        let cell = &cells[i];
        let (pt, lo, hi) = match &cell.score.ci {
            Some(ci) => (
                format!("{:.6}", ci.point),
                format!("{:.6}", ci.lo),
                format!("{:.6}", ci.hi),
            ),
            None => ("inf".into(), "inf".into(), "inf".into()),
        };
        let ratio = cell
            .commit_ratio
            .ci
            .as_ref()
            .map_or("".to_owned(), |ci| format!("{:.6}", ci.point));
        let stats = &results[2 * i + 1].stats;
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            point.chain.name(),
            point.theta_permille,
            point.burst,
            pt,
            lo,
            hi,
            cell.infinite,
            ratio,
            stats.pool_evictions,
            stats.pool_replacements,
            stats.conflict_aborts,
        ));
    }

    std::fs::create_dir_all(opts.out_dir.join("contention")).expect("create contention dir");
    let artefact = serde_json::json!({
        "base_seed": setup.seed,
        "replicates": replicates as u64,
        "horizon_secs": setup.horizon.as_secs_f64().round() as u64,
        "scenario": FAULT.name(),
        "thetas_permille": THETAS,
        "bursts": BURSTS,
        "mean_tps": 200,
        "cells": artefact_cells,
        "monotonicity": monotone_rows,
        "monotone_chains": monotone_chains,
    });
    opts.write_json("contention/contention.json", &artefact);
    opts.write_text("contention/contention.csv", &csv);
}
