//! Extension: stake centralisation.
//!
//! The paper counts fault tolerance in *nodes* (its testbed distributes
//! stake uniformly). Real networks concentrate stake; for the chains
//! whose quorums are stake-weighted, "how many machines can fail" is the
//! wrong question. This extension crashes a single validator holding
//! 40 % of Solana's stake — far below the nominal t = 3 node threshold —
//! and contrasts it with crashing a minnow.

use stabl::{report_from_runs, run_protocol, Chain, ScenarioKind};
use stabl_bench::{BenchOpts, Job};
use stabl_solana::{SolanaConfig, SolanaNode};

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    eprintln!("stake-centralisation extension ({})", setup.horizon);
    // Validator 9 (a fault-eligible back node) holds 40% of the stake.
    let config = SolanaConfig {
        stakes: Some(vec![1, 1, 1, 1, 1, 1, 1, 1, 1, 6]),
        ..SolanaConfig::default()
    };
    let salt = format!("SolanaNode|{config:?}");
    let job = |label: &str, crash: Option<u32>| {
        let mut run_cfg = setup.run_config(Chain::Solana, ScenarioKind::Baseline);
        if let Some(node) = crash {
            run_cfg.faults =
                stabl::FaultSchedule::crash(vec![stabl_sim::NodeId::new(node)], setup.fault_at);
        }
        Job::custom(format!("Solana/{label}"), run_cfg, salt.clone(), {
            let config = config.clone();
            move |cfg| run_protocol::<SolanaNode>(cfg, config.clone())
        })
    };
    let results = opts.engine().run(vec![
        job("stake-baseline", None),
        job("whale-crash", Some(9)),
        job("minnow-crash", Some(8)),
    ]);
    let (baseline, whale, minnow) = (&results[0], &results[1], &results[2]);

    let whale_report = report_from_runs(Chain::Solana, ScenarioKind::Crash, baseline, whale);
    let minnow_report = report_from_runs(Chain::Solana, ScenarioKind::Crash, baseline, minnow);
    println!(
        "crash 1 minnow (6.7% stake): sensitivity {}",
        minnow_report.sensitivity
    );
    println!(
        "crash 1 whale (40% stake):   sensitivity {}",
        whale_report.sensitivity
    );
    println!(
        "\nOne machine with 40% of the stake takes the cluster below the 2/3\n\
         supermajority: node-count thresholds (t = 3 of 10 here) say nothing\n\
         once stake concentrates."
    );
    opts.write_json(
        "ext_stake.json",
        &serde_json::json!({
            "minnow_crash": minnow_report.sensitivity.score(),
            "whale_crash": whale_report.sensitivity.score(),
            "whale_lost_liveness": whale.lost_liveness,
        }),
    );
}
