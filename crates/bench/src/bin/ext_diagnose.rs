//! Diagnosis extension: explain *why* each chain slows down or loses
//! liveness, per run, from the structured event stream.
//!
//! For every chain this binary diagnoses the paper's four altered
//! scenarios plus (when present) the committed adversary-search
//! reproducer from `results/adversary/corpus/<chain>.json`, producing
//! under `<out>/diagnose/`:
//!
//! * `<chain>_<scenario>.json` — the full [`Diagnosis`]: metrics
//!   timeline, latency blame table and (for stalled runs) the liveness
//!   post-mortem with its verdict;
//! * `<chain>_<scenario>.html` — a self-contained timeline report with
//!   per-gauge sparklines, fault-window shading and the blame table;
//! * `<chain>_<scenario>_timeline.jsonl` — the metric frames, one JSON
//!   object per line;
//! * `diagnose_summary.json` — one row per run: commit counts, the
//!   dominant latency cause and the stall verdict.
//!
//! Every cell is also re-run untraced and byte-compared — diagnosis
//! must observe, never steer. All artifacts are pure functions of the
//! deterministic run artifacts, so two invocations produce identical
//! bytes (the CI smoke job asserts this).
//!
//! [`Diagnosis`]: stabl::diagnose::Diagnosis

use std::fs;

use stabl::diagnose::{diagnose_run, diagnosis_json, html_report, timeline_jsonl, DEFAULT_CADENCE};
use stabl::{CaptureLevel, Chain, RunConfig, RunResult, ScenarioKind};
use stabl_adversary::CorpusEntry;
use stabl_bench::{engine::scenario_cores, BenchOpts};

/// One diagnosable cell: a label, its config and the CPU-cores factor.
struct Cell {
    label: String,
    file_stem: String,
    config: RunConfig,
    cores: f64,
}

fn paper_cells(opts: &BenchOpts, chain: Chain) -> Vec<Cell> {
    ScenarioKind::ALTERED
        .iter()
        .map(|&kind| Cell {
            label: format!("{}/{}", chain.name(), kind.name()),
            file_stem: format!("{}_{}", chain.name().to_lowercase(), kind.name()),
            config: opts.setup.run_config(chain, kind),
            cores: scenario_cores(kind),
        })
        .collect()
}

/// The committed worst-case reproducer for `chain`, replayed exactly as
/// the adversary search evaluated it (baseline config of the corpus
/// entry's quick setup, plus the shrunk genome's schedule and spec).
fn corpus_cell(opts: &BenchOpts, chain: Chain) -> Option<Cell> {
    let path = opts
        .out_dir
        .join("adversary/corpus")
        .join(format!("{}.json", chain.name().to_lowercase()));
    let text = fs::read_to_string(&path).ok()?;
    let entry: CorpusEntry = match serde_json::from_str(&text) {
        Ok(entry) => entry,
        Err(err) => {
            eprintln!("skipping {}: {err}", path.display());
            return None;
        }
    };
    let setup = stabl::PaperSetup::quick(entry.horizon_secs, entry.seed);
    let mut config = setup.run_config(chain, ScenarioKind::Baseline);
    config.faults = entry.genome.schedule();
    config.byzantine = entry.genome.byzantine_spec();
    Some(Cell {
        label: format!("{}/adversary", chain.name()),
        file_stem: format!("{}_adversary", chain.name().to_lowercase()),
        config,
        cores: 1.0,
    })
}

fn main() {
    let opts = BenchOpts::from_args();
    fs::create_dir_all(opts.out_dir.join("diagnose")).expect("create diagnose directory");

    let mut summary = Vec::new();
    println!(
        "{:<22} {:>8} {:>8} {:>9}  diagnosis",
        "run", "commits", "events", "liveness"
    );
    for chain in Chain::ALL {
        let mut cells = paper_cells(&opts, chain);
        cells.extend(corpus_cell(&opts, chain));
        for cell in cells {
            let traced = chain.run_traced_with_cpu(&cell.config, cell.cores, CaptureLevel::Full);
            let untraced: RunResult = chain.run_with_cpu(&cell.config, cell.cores);
            assert_eq!(
                serde_json::to_string(&traced.result).expect("serialise traced result"),
                serde_json::to_string(&untraced).expect("serialise untraced result"),
                "{}: Full-capture run diverged from the untraced run",
                cell.label
            );

            let run = diagnose_run(
                &cell.label,
                &cell.config,
                &traced.result,
                &traced.trace,
                DEFAULT_CADENCE,
            );
            let diagnosis = &run.diagnosis;
            opts.write_text(
                &format!("diagnose/{}.json", cell.file_stem),
                &diagnosis_json(diagnosis),
            );
            opts.write_text(
                &format!("diagnose/{}.html", cell.file_stem),
                &html_report(&run),
            );
            opts.write_text(
                &format!("diagnose/{}_timeline.jsonl", cell.file_stem),
                &timeline_jsonl(&run.timeline),
            );

            // The dominant latency cause: most commits attributed, ties
            // broken by the (already sorted) cause label.
            let top_cause = diagnosis.blame.as_ref().and_then(|blame| {
                blame
                    .causes
                    .iter()
                    .max_by(|a, b| a.commits.cmp(&b.commits).then(b.cause.cmp(&a.cause)))
                    .map(|c| c.cause.clone())
            });
            let verdict = diagnosis
                .post_mortem
                .as_ref()
                .map(|post_mortem| post_mortem.verdict.clone());
            println!(
                "{:<22} {:>8} {:>8} {:>9}  {}",
                cell.label,
                diagnosis.committed,
                traced.trace.events.len(),
                if diagnosis.lost_liveness {
                    "LOST"
                } else {
                    "ok"
                },
                verdict.as_deref().or(top_cause.as_deref()).unwrap_or("-"),
            );
            summary.push(serde_json::json!({
                "label": diagnosis.label.clone(),
                "chain": chain.name(),
                "committed": diagnosis.committed,
                "submitted": diagnosis.submitted,
                "lost_liveness": diagnosis.lost_liveness,
                "events_recorded": traced.trace.events.len() as u64,
                "events_dropped": diagnosis.dropped_events,
                "dropped_trace_lines": diagnosis.dropped_trace_lines,
                "top_cause": top_cause,
                "verdict": verdict,
            }));
        }
    }
    opts.write_json("diagnose/diagnose_summary.json", &summary);
    println!("\ndiagnoses verified byte-neutral: Full capture and Off produced identical results");
}
