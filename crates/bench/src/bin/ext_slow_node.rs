//! Extension: the single-slow-node experiment.
//!
//! §4 of the paper argues that leader-based chains suffer from one slow
//! node ("Redbelly is not affected by the slow responsive node that
//! affects Solana because no individual slow node can significantly slow
//! down the DBFT consensus protocol"). The paper only *crashes* nodes;
//! this extension slows one non-client validator down (300 ms extra on
//! every message it sends, between the usual fault and recovery marks)
//! and scores all five chains.

use stabl::{report_from_runs, Chain, FaultSchedule, ScenarioKind};
use stabl_bench::{sensitivity_table, BenchOpts, Job};
use stabl_sim::SimDuration;

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    eprintln!("slow-node extension ({})", setup.horizon);
    let extra = SimDuration::from_millis(300);
    let jobs = Chain::ALL
        .iter()
        .flat_map(|&chain| {
            let mut config = setup.run_config(chain, ScenarioKind::Baseline);
            config.faults =
                FaultSchedule::slowdown(setup.victims(1), extra, setup.fault_at, setup.recover_at);
            [
                Job::scenario(setup, chain, ScenarioKind::Baseline),
                Job::config(format!("{}/slow-node", chain.name()), chain, config),
            ]
        })
        .collect();
    let results = opts.engine().run(jobs);
    let reports: Vec<_> = Chain::ALL
        .iter()
        .enumerate()
        // Reuse the crash kind for reporting (the label is printed
        // separately).
        .map(|(i, &chain)| {
            report_from_runs(
                chain,
                ScenarioKind::Crash,
                &results[2 * i],
                &results[2 * i + 1],
            )
        })
        .collect();
    println!(
        "\n{}",
        sensitivity_table(
            "Extension — one node slowed by 300 ms (133 s → 266 s)",
            &reports
        )
    );
    let rows: Vec<serde_json::Value> = reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "chain": r.chain.name(),
                "score": r.sensitivity.score(),
            })
        })
        .collect();
    opts.write_json("ext_slow_node.json", &rows);
}
