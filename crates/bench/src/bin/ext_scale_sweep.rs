//! Extension: sensitivity at larger network sizes.
//!
//! The paper's future work asks how sensitivity evolves in larger
//! networks, "especially for probabilistic consensus protocols that rely
//! on the law of large numbers". This extension sweeps the crash
//! scenario over n ∈ {10, 16, 22} validators (5 clients throughout,
//! faults on trailing nodes, f = t_B(n)).

use stabl::{Chain, PaperSetup, ScenarioKind};
use stabl_bench::BenchOpts;

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "{:<10} {:>6} {:>6} {:>14} {:>14}",
        "chain", "n", "f=t", "crash score", "baseline p50"
    );
    let mut artefact = Vec::new();
    for n in [10usize, 16, 22] {
        let mut setup = PaperSetup { n, ..opts.setup.clone() };
        setup.seed ^= n as u64;
        for &chain in &Chain::ALL {
            eprintln!("· {} n={} …", chain.name(), n);
            let report = setup.sensitivity(chain, ScenarioKind::Crash);
            println!(
                "{:<10} {:>6} {:>6} {:>14} {:>14}",
                chain.name(),
                n,
                chain.tolerated_faults(n),
                report.sensitivity.to_string(),
                report
                    .baseline
                    .p50_latency
                    .map(|p| format!("{p:.3}s"))
                    .unwrap_or_else(|| "—".into()),
            );
            artefact.push(serde_json::json!({
                "chain": chain.name(),
                "n": n,
                "f": chain.tolerated_faults(n),
                "score": report.sensitivity.score(),
            }));
        }
    }
    opts.write_json("ext_scale_sweep.json", &artefact);
}
