//! Extension: sensitivity at larger network sizes.
//!
//! The paper's future work asks how sensitivity evolves in larger
//! networks, "especially for probabilistic consensus protocols that rely
//! on the law of large numbers". This extension sweeps the crash
//! scenario over n ∈ {10, 16, 22} validators (5 clients throughout,
//! faults on trailing nodes, f = t_B(n)).

use stabl::{report_from_runs, Chain, PaperSetup, ScenarioKind};
use stabl_bench::{BenchOpts, Job};
use stabl_stats::SeedSequence;

const SIZES: [usize; 3] = [10, 16, 22];

fn main() {
    let opts = BenchOpts::from_args();
    // Each sweep point gets its own decorrelated seed from the audited
    // derivation path (index 0 = the base seed itself for n = SIZES[0]).
    let seeds = SeedSequence::new(opts.setup.seed);
    let sweep: Vec<PaperSetup> = SIZES
        .iter()
        .enumerate()
        .map(|(i, &n)| PaperSetup {
            n,
            seed: seeds.seed(i),
            ..opts.setup.clone()
        })
        .collect();
    let jobs = sweep
        .iter()
        .flat_map(|setup| {
            Chain::ALL.iter().flat_map(move |&chain| {
                [
                    Job::scenario_baseline(setup, chain, ScenarioKind::Crash),
                    Job::scenario(setup, chain, ScenarioKind::Crash),
                ]
            })
        })
        .collect();
    let results = opts.engine().run(jobs);
    println!(
        "{:<10} {:>6} {:>6} {:>14} {:>14}",
        "chain", "n", "f=t", "crash score", "baseline p50"
    );
    let mut artefact = Vec::new();
    for (s, n) in SIZES.into_iter().enumerate() {
        for (c, &chain) in Chain::ALL.iter().enumerate() {
            let cell = 2 * (s * Chain::ALL.len() + c);
            let report = report_from_runs(
                chain,
                ScenarioKind::Crash,
                &results[cell],
                &results[cell + 1],
            );
            println!(
                "{:<10} {:>6} {:>6} {:>14} {:>14}",
                chain.name(),
                n,
                chain.tolerated_faults(n),
                report.sensitivity.to_string(),
                report
                    .baseline
                    .p50_latency
                    .map(|p| format!("{p:.3}s"))
                    .unwrap_or_else(|| "—".into()),
            );
            artefact.push(serde_json::json!({
                "chain": chain.name(),
                "n": n,
                "f": chain.tolerated_faults(n),
                "score": report.sensitivity.score(),
            }));
        }
    }
    opts.write_json("ext_scale_sweep.json", &artefact);
}
