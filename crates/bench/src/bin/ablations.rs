//! Ablations: remove the mechanism the paper blames for each finding and
//! show the finding disappears.
//!
//! | Ablation | Paper's causal claim (§) | Expectation without it |
//! |---|---|---|
//! | Solana, no warmup epochs | short (< 360-slot) warmup epochs make the EAH panic reachable (§5) | transient failures no longer crash the cluster |
//! | Avalanche, no throttling | the CPU/buffer throttlers cause the post-outage metastable congestion (§5) | liveness recovers after the restart |
//! | Aptos, no leader reputation | reputation-based exclusion ends the §4 oscillation | crash sensitivity grows |
//! | Algorand, no dynamic round time | DRT's adaptive timing shapes the §4 crash behaviour | degradation turns uniform (and larger in mean) instead of bursty |
//! | Redbelly, capped superblock | uncapped collaborative blocks drain the §5 backlog at once | recovery slows towards Aptos's |

use stabl::metrics::Sensitivity;
use stabl::{report_from_runs, run_protocol, Chain, RunResult, ScenarioKind};
use stabl_algorand::{AlgorandConfig, AlgorandNode};
use stabl_aptos::{AptosConfig, AptosNode};
use stabl_avalanche::{AvalancheConfig, AvalancheNode};
use stabl_bench::BenchOpts;
use stabl_redbelly::{RedbellyConfig, RedbellyNode};
use stabl_solana::{EpochSchedule, SolanaConfig, SolanaNode};

fn describe(name: &str, baseline: &RunResult, altered: &RunResult, chain: Chain, kind: ScenarioKind) {
    let report = report_from_runs(chain, kind, baseline, altered);
    println!(
        "{name:<44} {:<13} sensitivity {:>12}  ({} unresolved, {} panics)",
        kind.name(),
        report.sensitivity.to_string(),
        altered.unresolved,
        altered.panics.len()
    );
}

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    println!("ablation campaign at {} (seed {})\n", setup.horizon, setup.seed);
    let mut summary: Vec<(String, Option<f64>, bool)> = Vec::new();
    let mut record =
        |name: &str, baseline: &RunResult, altered: &RunResult, chain: Chain, kind: ScenarioKind| {
            describe(name, baseline, altered, chain, kind);
            let report = report_from_runs(chain, kind, baseline, altered);
            summary.push((
                name.to_owned(),
                report.sensitivity.score(),
                matches!(report.sensitivity, Sensitivity::Finite { improved: true, .. }),
            ));
        };

    // 1. Solana without warmup epochs: the EAH windows of a full-length
    //    epoch fall outside the run, so the panic is unreachable.
    {
        let config = SolanaConfig {
            schedule: EpochSchedule::constant(8192),
            ..SolanaConfig::default()
        };
        let base_cfg = setup.run_config(Chain::Solana, ScenarioKind::Baseline);
        let alt_cfg = setup.run_config(Chain::Solana, ScenarioKind::Transient);
        let baseline = run_protocol::<SolanaNode>(&base_cfg, config.clone());
        let altered = run_protocol::<SolanaNode>(&alt_cfg, config);
        assert!(
            altered.panics.is_empty(),
            "without warmup epochs there is no EAH panic"
        );
        record("solana/no-warmup-epochs", &baseline, &altered, Chain::Solana, ScenarioKind::Transient);
    }

    // 2. Avalanche without throttling: unlimited CPU quota — the
    //    re-gossip storm is absorbed and consensus resumes.
    {
        let config = AvalancheConfig { cpu_quota: f64::INFINITY, ..AvalancheConfig::default() };
        let base_cfg = setup.run_config(Chain::Avalanche, ScenarioKind::Baseline);
        let alt_cfg = setup.run_config(Chain::Avalanche, ScenarioKind::Transient);
        let baseline = run_protocol::<AvalancheNode>(&base_cfg, config.clone());
        let altered = run_protocol::<AvalancheNode>(&alt_cfg, config);
        assert!(
            !altered.lost_liveness,
            "without throttling the congestion is not metastable"
        );
        record("avalanche/no-throttling", &baseline, &altered, Chain::Avalanche, ScenarioKind::Transient);
    }

    // 3. Aptos without leader reputation: crashed leaders stay in the
    //    rotation, the oscillation never stabilises.
    {
        let with = setup.sensitivity(Chain::Aptos, ScenarioKind::Crash);
        let config = AptosConfig { reputation_strikes: u32::MAX, ..AptosConfig::default() };
        let base_cfg = setup.run_config(Chain::Aptos, ScenarioKind::Baseline);
        let alt_cfg = setup.run_config(Chain::Aptos, ScenarioKind::Crash);
        let baseline = run_protocol::<AptosNode>(&base_cfg, config.clone());
        let altered = run_protocol::<AptosNode>(&alt_cfg, config);
        record("aptos/no-leader-reputation", &baseline, &altered, Chain::Aptos, ScenarioKind::Crash);
        println!(
            "{:<44} (with reputation the crash score was {})",
            "", with.sensitivity
        );
    }

    // 4. Algorand without dynamic round time: the filter never shrinks,
    //    so there is nothing to reset — slower baseline, no sawtooth.
    {
        let base = AlgorandConfig::default();
        let config = AlgorandConfig {
            min_filter: base.default_filter,
            filter_shrink_permille: 1_000,
            ..base
        };
        let base_cfg = setup.run_config(Chain::Algorand, ScenarioKind::Baseline);
        let alt_cfg = setup.run_config(Chain::Algorand, ScenarioKind::Crash);
        let baseline = run_protocol::<AlgorandNode>(&base_cfg, config.clone());
        let altered = run_protocol::<AlgorandNode>(&alt_cfg, config);
        record("algorand/no-dynamic-round-time", &baseline, &altered, Chain::Algorand, ScenarioKind::Crash);
    }

    // 5. Redbelly with capped (non-collaborative) proposals: the backlog
    //    drains over many heights instead of one superblock.
    {
        let config = RedbellyConfig { max_proposal_txs: 150, ..RedbellyConfig::default() };
        let base_cfg = setup.run_config(Chain::Redbelly, ScenarioKind::Baseline);
        let alt_cfg = setup.run_config(Chain::Redbelly, ScenarioKind::Transient);
        let baseline = run_protocol::<RedbellyNode>(&base_cfg, config.clone());
        let altered = run_protocol::<RedbellyNode>(&alt_cfg, config);
        record("redbelly/capped-superblock", &baseline, &altered, Chain::Redbelly, ScenarioKind::Transient);
        let uncapped = setup.sensitivity(Chain::Redbelly, ScenarioKind::Transient);
        println!(
            "{:<44} (with uncapped superblocks the score was {})",
            "", uncapped.sensitivity
        );
    }

    let rows: Vec<serde_json::Value> = summary
        .iter()
        .map(|(name, score, improved)| {
            serde_json::json!({ "ablation": name, "score": score, "improved": improved })
        })
        .collect();
    opts.write_json("ablations.json", &rows);
}
