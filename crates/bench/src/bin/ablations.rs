//! Ablations: remove the mechanism the paper blames for each finding and
//! show the finding disappears.
//!
//! | Ablation | Paper's causal claim (§) | Expectation without it |
//! |---|---|---|
//! | Solana, no warmup epochs | short (< 360-slot) warmup epochs make the EAH panic reachable (§5) | transient failures no longer crash the cluster |
//! | Avalanche, no throttling | the CPU/buffer throttlers cause the post-outage metastable congestion (§5) | liveness recovers after the restart |
//! | Aptos, no leader reputation | reputation-based exclusion ends the §4 oscillation | crash sensitivity grows |
//! | Algorand, no dynamic round time | DRT's adaptive timing shapes the §4 crash behaviour | degradation turns uniform (and larger in mean) instead of bursty |
//! | Redbelly, capped superblock | uncapped collaborative blocks drain the §5 backlog at once | recovery slows towards Aptos's |

use stabl::metrics::Sensitivity;
use stabl::{report_from_runs, run_protocol, Chain, RunResult, ScenarioKind};
use stabl_algorand::{AlgorandConfig, AlgorandNode};
use stabl_aptos::{AptosConfig, AptosNode};
use stabl_avalanche::{AvalancheConfig, AvalancheNode};
use stabl_bench::{BenchOpts, Job};
use stabl_redbelly::{RedbellyConfig, RedbellyNode};
use stabl_solana::{EpochSchedule, SolanaConfig, SolanaNode};

fn describe(
    name: &str,
    baseline: &RunResult,
    altered: &RunResult,
    chain: Chain,
    kind: ScenarioKind,
) {
    let report = report_from_runs(chain, kind, baseline, altered);
    println!(
        "{name:<44} {:<13} sensitivity {:>12}  ({} unresolved, {} panics)",
        kind.name(),
        report.sensitivity.to_string(),
        altered.unresolved,
        altered.panics.len()
    );
}

/// An ablated baseline/altered pair as two cache-aware engine jobs.
macro_rules! ablation_jobs {
    ($name:literal, $node:ty, $config:expr, $base_cfg:expr, $alt_cfg:expr) => {{
        let config = $config;
        let salt = format!("{}|{:?}", stringify!($node), config);
        [
            Job::custom(concat!($name, "/baseline"), $base_cfg, salt.clone(), {
                let pc = config.clone();
                move |cfg| run_protocol::<$node>(cfg, pc.clone())
            }),
            Job::custom(concat!($name, "/altered"), $alt_cfg, salt, {
                let pc = config.clone();
                move |cfg| run_protocol::<$node>(cfg, pc.clone())
            }),
        ]
    }};
}

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    println!(
        "ablation campaign at {} (seed {})\n",
        setup.horizon, setup.seed
    );

    // Schedule everything up front — the five ablated pairs plus the two
    // unablated reference pairs the commentary compares against — and
    // let the engine run the cells concurrently.
    let mut jobs = Vec::new();
    // 1. Solana without warmup epochs: the EAH windows of a full-length
    //    epoch fall outside the run, so the panic is unreachable.
    jobs.extend(ablation_jobs!(
        "solana/no-warmup-epochs",
        SolanaNode,
        SolanaConfig {
            schedule: EpochSchedule::constant(8192),
            ..SolanaConfig::default()
        },
        setup.run_config(Chain::Solana, ScenarioKind::Baseline),
        setup.run_config(Chain::Solana, ScenarioKind::Transient)
    ));
    // 2. Avalanche without throttling: unlimited CPU quota — the
    //    re-gossip storm is absorbed and consensus resumes.
    jobs.extend(ablation_jobs!(
        "avalanche/no-throttling",
        AvalancheNode,
        AvalancheConfig {
            cpu_quota: f64::INFINITY,
            ..AvalancheConfig::default()
        },
        setup.run_config(Chain::Avalanche, ScenarioKind::Baseline),
        setup.run_config(Chain::Avalanche, ScenarioKind::Transient)
    ));
    // 3. Aptos without leader reputation: crashed leaders stay in the
    //    rotation, the oscillation never stabilises.
    jobs.extend(ablation_jobs!(
        "aptos/no-leader-reputation",
        AptosNode,
        AptosConfig {
            reputation_strikes: u32::MAX,
            ..AptosConfig::default()
        },
        setup.run_config(Chain::Aptos, ScenarioKind::Baseline),
        setup.run_config(Chain::Aptos, ScenarioKind::Crash)
    ));
    // 4. Algorand without dynamic round time: the filter never shrinks,
    //    so there is nothing to reset — slower baseline, no sawtooth.
    jobs.extend(ablation_jobs!(
        "algorand/no-dynamic-round-time",
        AlgorandNode,
        {
            let base = AlgorandConfig::default();
            AlgorandConfig {
                min_filter: base.default_filter,
                filter_shrink_permille: 1_000,
                ..base
            }
        },
        setup.run_config(Chain::Algorand, ScenarioKind::Baseline),
        setup.run_config(Chain::Algorand, ScenarioKind::Crash)
    ));
    // 5. Redbelly with capped (non-collaborative) proposals: the backlog
    //    drains over many heights instead of one superblock.
    jobs.extend(ablation_jobs!(
        "redbelly/capped-superblock",
        RedbellyNode,
        RedbellyConfig {
            max_proposal_txs: 150,
            ..RedbellyConfig::default()
        },
        setup.run_config(Chain::Redbelly, ScenarioKind::Baseline),
        setup.run_config(Chain::Redbelly, ScenarioKind::Transient)
    ));
    // References: the unablated aptos crash and redbelly transient runs.
    jobs.push(Job::scenario_baseline(
        setup,
        Chain::Aptos,
        ScenarioKind::Crash,
    ));
    jobs.push(Job::scenario(setup, Chain::Aptos, ScenarioKind::Crash));
    jobs.push(Job::scenario_baseline(
        setup,
        Chain::Redbelly,
        ScenarioKind::Transient,
    ));
    jobs.push(Job::scenario(
        setup,
        Chain::Redbelly,
        ScenarioKind::Transient,
    ));

    let results = opts.engine().run(jobs);
    let pair = |i: usize| (&results[2 * i], &results[2 * i + 1]);

    let mut summary: Vec<(String, Option<f64>, bool)> = Vec::new();
    let mut record = |name: &str,
                      baseline: &RunResult,
                      altered: &RunResult,
                      chain: Chain,
                      kind: ScenarioKind| {
        describe(name, baseline, altered, chain, kind);
        let report = report_from_runs(chain, kind, baseline, altered);
        summary.push((
            name.to_owned(),
            report.sensitivity.score(),
            matches!(
                report.sensitivity,
                Sensitivity::Finite { improved: true, .. }
            ),
        ));
    };

    {
        let (baseline, altered) = pair(0);
        assert!(
            altered.panics.is_empty(),
            "without warmup epochs there is no EAH panic"
        );
        record(
            "solana/no-warmup-epochs",
            baseline,
            altered,
            Chain::Solana,
            ScenarioKind::Transient,
        );
    }
    {
        let (baseline, altered) = pair(1);
        assert!(
            !altered.lost_liveness,
            "without throttling the congestion is not metastable"
        );
        record(
            "avalanche/no-throttling",
            baseline,
            altered,
            Chain::Avalanche,
            ScenarioKind::Transient,
        );
    }
    {
        let (baseline, altered) = pair(2);
        record(
            "aptos/no-leader-reputation",
            baseline,
            altered,
            Chain::Aptos,
            ScenarioKind::Crash,
        );
        let (ref_base, ref_alt) = pair(5);
        let with = report_from_runs(Chain::Aptos, ScenarioKind::Crash, ref_base, ref_alt);
        println!(
            "{:<44} (with reputation the crash score was {})",
            "", with.sensitivity
        );
    }
    {
        let (baseline, altered) = pair(3);
        record(
            "algorand/no-dynamic-round-time",
            baseline,
            altered,
            Chain::Algorand,
            ScenarioKind::Crash,
        );
    }
    {
        let (baseline, altered) = pair(4);
        record(
            "redbelly/capped-superblock",
            baseline,
            altered,
            Chain::Redbelly,
            ScenarioKind::Transient,
        );
        let (ref_base, ref_alt) = pair(6);
        let uncapped =
            report_from_runs(Chain::Redbelly, ScenarioKind::Transient, ref_base, ref_alt);
        println!(
            "{:<44} (with uncapped superblocks the score was {})",
            "", uncapped.sensitivity
        );
    }

    let rows: Vec<serde_json::Value> = summary
        .iter()
        .map(|(name, score, improved)| {
            serde_json::json!({ "ablation": name, "score": score, "improved": improved })
        })
        .collect();
    opts.write_json("ablations.json", &rows);
}
