//! Fig. 3 under replication — the sensitivity campaign fanned out over
//! N seeds with 95 % percentile-bootstrap confidence intervals per
//! (chain, scenario) cell.
//!
//! The paper reports each score from a single run; this binary reports
//! `score ± CI` plus commit-ratio and mean-latency intervals, and
//! counts the replicates whose sensitivity was infinite (liveness
//! loss) instead of averaging them away. The artifact
//! (`fig3_sensitivity_ci.json`) is what the `stabl-stats gate` diffs
//! against the committed golden tree in CI.

use stabl_bench::{
    replication_table, run_replicated_campaign_with_telemetry, BenchOpts, DEFAULT_REPLICATES,
};

fn main() {
    let opts = BenchOpts::from_args();
    let replicates = opts.replicates.unwrap_or(DEFAULT_REPLICATES);
    eprintln!(
        "Fig. 3 with CIs: {} replicates x full campaign ({})",
        replicates, opts.setup.horizon
    );
    let (campaign, telemetry) =
        run_replicated_campaign_with_telemetry(&opts.engine(), &opts.setup, replicates);

    println!(
        "\n{}",
        replication_table("Fig. 3 — sensitivity with 95% bootstrap CIs", &campaign)
    );

    opts.write_json("fig3_sensitivity_ci.json", &campaign);
    // Wall-clock data goes to its own artefact; the name deliberately
    // does not end in `_ci.json` so the regression gate never diffs
    // machine-dependent timings.
    opts.write_json("fig3_sensitivity_ci_telemetry.json", &telemetry);
}
