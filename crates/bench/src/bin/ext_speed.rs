//! Speed trajectory: measures kernel and per-chain simulation throughput
//! and writes `BENCH_speed.json`, the artifact CI tracks across PRs.
//!
//! The artifact mixes two kinds of fields:
//!
//! * **Deterministic fields** (event counts, committed transactions,
//!   configuration) — identical on every run of the same build and seed.
//!   CI runs this binary twice and byte-compares the artifact with every
//!   `wall_*` field stripped; any difference is a determinism regression.
//! * **Timing fields**, all named with a `wall_` prefix — wall-clock
//!   measurements that vary run to run. The reported number is the
//!   *minimum* over the configured repetitions: on shared, noisy
//!   machines interruptions only ever inflate a sample, so the minimum
//!   is the robust throughput estimator.
//!
//! Usage: `ext_speed [--out FILE] [--seed N] [--reps N] [--quick SECS]`
//! (`--quick` is accepted for CI-harness uniformity and lowers the
//! repetition count; the chain horizon stays fixed so the deterministic
//! fields never depend on it).

use std::time::Instant;

use serde_json::{json, Value};
use stabl::{Chain, RunConfig};
use stabl_bench::speed_bench::{agenda_round_trip, event_times, Chatty, Churny};
use stabl_sim::{SimTime, Simulation};

/// Schema identifier; bump when the artifact layout changes.
const SCHEMA: &str = "stabl-speed/v1";

/// Simulated horizon of the per-chain runs.
const CHAIN_HORIZON_SECS: u64 = 10;

struct Opts {
    out: std::path::PathBuf,
    seed: u64,
    reps: usize,
}

fn parse_args() -> Opts {
    let mut out = std::path::PathBuf::from("BENCH_speed.json");
    let mut seed = 42u64;
    let mut reps = 9usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out takes a file path").into(),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a u64");
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--reps takes a positive count");
            }
            // Harness-uniformity flag: fewer repetitions, same workload.
            "--quick" => {
                let _secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--quick takes seconds");
                reps = reps.min(3);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    Opts { out, seed, reps }
}

/// Runs `workload` `reps` times; returns the deterministic result of the
/// first run (all runs must agree) and the minimum wall nanoseconds.
fn time_min<F: FnMut() -> u64>(reps: usize, mut workload: F) -> (u64, u128) {
    let mut result = None;
    let mut min_ns = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let r = workload();
        let elapsed = start.elapsed().as_nanos();
        min_ns = min_ns.min(elapsed);
        match result {
            None => result = Some(r),
            Some(prev) => assert_eq!(prev, r, "non-deterministic workload"),
        }
    }
    (result.unwrap_or(0), min_ns)
}

/// Events per wall second, from an event count and a wall time.
fn per_sec(count: u64, wall_ns: u128) -> f64 {
    if wall_ns == 0 {
        return 0.0;
    }
    count as f64 * 1e9 / wall_ns as f64
}

fn main() {
    let opts = parse_args();
    let mut kernel: Vec<(String, Value)> = Vec::new();

    // Headline kernel run: chatty protocol, 10 nodes, 1 simulated second.
    let (events, wall) = time_min(opts.reps, || {
        let mut sim = Simulation::<Chatty>::new(10, opts.seed, ());
        sim.run_until(SimTime::from_secs(1));
        sim.stats().events_processed
    });
    kernel.push((
        "chatty_10nodes_1s".into(),
        json!({
            "events_processed": events,
            "wall_ns_min": wall as u64,
            "wall_events_per_s": per_sec(events, wall),
        }),
    ));

    // Agenda round trips at the three horizon distributions.
    let near = event_times(10_000, 64_000, 7);
    let far = event_times(10_000, 10_000_000, 7);
    let burst: Vec<u64> = event_times(10_000, 32, 7)
        .into_iter()
        .map(|t| t * 1_000)
        .collect();
    for (name, times) in [
        ("agenda_near_10k", &near),
        ("agenda_far_10k", &far),
        ("agenda_burst_10k", &burst),
    ] {
        let (acc, wall) = time_min(opts.reps, || agenda_round_trip(times));
        kernel.push((
            name.into(),
            json!({
                "checksum": acc,
                "events": times.len() as u64,
                "wall_ns_min": wall as u64,
                "wall_events_per_s": per_sec(times.len() as u64, wall),
            }),
        ));
    }

    // Timer churn with heavy cancellation.
    let (stale, wall) = time_min(opts.reps, || {
        let mut sim = Simulation::<Churny>::new(10, opts.seed, ());
        sim.run_until(SimTime::from_secs(1));
        sim.stats().timers_stale
    });
    kernel.push((
        "timer_churn_10nodes_1s".into(),
        json!({
            "timers_stale": stale,
            "wall_ns_min": wall as u64,
        }),
    ));

    // Broadcast fanout as the cluster grows.
    for (n, millis) in [(10usize, 400u64), (50, 200), (100, 100)] {
        let (delivered, wall) = time_min(opts.reps, || {
            let mut sim = Simulation::<Chatty>::new(n, opts.seed, ());
            sim.run_until(SimTime::from_millis(millis));
            sim.stats().messages_delivered
        });
        kernel.push((
            format!("fanout_{n}nodes_{millis}ms"),
            json!({
                "messages_delivered": delivered,
                "wall_ns_min": wall as u64,
                "wall_msgs_per_s": per_sec(delivered, wall),
            }),
        ));
    }

    // End-to-end chain throughput: committed transactions per wall
    // second over a 10-simulated-second baseline run.
    let mut chains: Vec<(String, Value)> = Vec::new();
    for &chain in &Chain::ALL {
        let (committed, wall) = time_min(opts.reps.min(5), || {
            let mut config = RunConfig::quick(opts.seed);
            config.horizon = SimTime::from_secs(CHAIN_HORIZON_SECS);
            config.workload.end = SimTime::from_secs(CHAIN_HORIZON_SECS - 2);
            chain.run(&config).latencies.len() as u64
        });
        chains.push((
            chain.name().into(),
            json!({
                "horizon_s": CHAIN_HORIZON_SECS,
                "txs_committed": committed,
                "wall_ns_min": wall as u64,
                "wall_tx_per_s": per_sec(committed, wall),
                "wall_sim_s_per_wall_s": per_sec(CHAIN_HORIZON_SECS, wall),
            }),
        ));
    }

    let artifact = json!({
        "schema": SCHEMA,
        "seed": opts.seed,
        "kernel": Value::Map(kernel),
        "chains": Value::Map(chains),
    });
    let rendered = serde_json::to_string_pretty(&artifact).expect("render artifact");
    std::fs::write(&opts.out, rendered + "\n").expect("write artifact");
    println!("wrote {}", opts.out.display());
}
