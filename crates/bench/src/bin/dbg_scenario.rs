//! `dbg_scenario <chain> <scenario>` — run one (chain, scenario) pair at
//! full paper scale and print latency statistics plus the throughput
//! timeline; the calibration workhorse behind the figure binaries.

use std::path::PathBuf;

use stabl::{Chain, PaperSetup, ScenarioKind};
use stabl_bench::{Engine, Job};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!(
            "usage: dbg_scenario <algorand|aptos|avalanche|redbelly|solana> \
                   <baseline|crash|transient|partition|secure>"
        );
        std::process::exit(2);
    }
    let chain = match args[1].as_str() {
        "algorand" => Chain::Algorand,
        "aptos" => Chain::Aptos,
        "avalanche" => Chain::Avalanche,
        "redbelly" => Chain::Redbelly,
        "solana" => Chain::Solana,
        other => panic!("unknown chain {other}"),
    };
    let kind = match args[2].as_str() {
        "baseline" => ScenarioKind::Baseline,
        "crash" => ScenarioKind::Crash,
        "transient" => ScenarioKind::Transient,
        "partition" => ScenarioKind::Partition,
        "secure" => ScenarioKind::SecureClient,
        other => panic!("unknown scenario {other}"),
    };
    let setup = PaperSetup::default();
    let engine = Engine::new(
        Engine::default_workers(),
        Some(PathBuf::from("results/.cache")),
    );
    let mut results = engine.run(vec![
        Job::scenario(&setup, chain, kind),
        Job::scenario_baseline(&setup, chain, kind),
    ]);
    let base = results.pop().expect("baseline cell");
    let result = results.pop().expect("scenario cell");
    if let (Ok(b), Ok(a)) = (base.ecdf(), result.ecdf()) {
        println!(
            "baseline mean={:.3} p95={:.3} | altered mean={:.3} p95={:.3}",
            b.mean(),
            b.quantile(0.95),
            a.mean(),
            a.quantile(0.95)
        );
    }
    println!(
        "submitted={} committed={} unresolved={} lost_liveness={} panics={}",
        result.submitted,
        result.latencies.len(),
        result.unresolved,
        result.lost_liveness,
        result.panics.len()
    );
    let tp = result.throughput();
    for (i, chunk) in tp.bins().chunks(10).enumerate() {
        let sum: u32 = chunk.iter().sum();
        print!("{:4}s {:5} |", i * 10, sum);
        if i % 4 == 3 {
            println!();
        }
    }
    println!();
}
