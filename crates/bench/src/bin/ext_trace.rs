//! Observability extension: export the structured event stream of one
//! crash-scenario run per chain as Perfetto-loadable Chrome-trace JSON
//! and a greppable JSON-Lines event dump, plus the per-transaction
//! latency decomposition (queueing / consensus / delivery).
//!
//! Artefacts per chain (under `--out`, default `results/`):
//!
//! * `trace_<chain>.json` — Chrome trace-event JSON; drop it onto
//!   <https://ui.perfetto.dev> for a per-validator timeline of
//!   consensus-phase spans, fault windows, crashes and commits;
//! * `events_<chain>.jsonl` — every recorded event, one JSON object per
//!   line;
//! * `stats_<chain>.json` — the run's aggregate kernel counters
//!   (traffic plus the contention-model counts);
//! * `trace_summary.json` — event counters and stage-latency
//!   decompositions for all chains (deterministic: no wall-clock data).
//!
//! The binary also re-runs each cell untraced and asserts the
//! [`RunResult`]s are byte-identical — tracing must observe, never
//! steer.

use stabl::{CaptureLevel, Chain, RunResult, ScenarioKind};
use stabl_bench::{engine::scenario_cores, BenchOpts};

fn main() {
    let opts = BenchOpts::from_args();
    let kind = ScenarioKind::Crash;
    let cores = scenario_cores(kind);
    let mut summary = Vec::new();
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>8}  stage decomposition (mean)",
        "chain", "events", "dropped", "commits", "spans"
    );
    for chain in Chain::ALL {
        let config = opts.setup.run_config(chain, kind);
        let traced = chain.run_traced_with_cpu(&config, cores, CaptureLevel::Full);
        let untraced: RunResult = chain.run_with_cpu(&config, cores);
        assert_eq!(
            serde_json::to_string(&traced.result).expect("serialise traced result"),
            serde_json::to_string(&untraced).expect("serialise untraced result"),
            "{chain}: Full-capture run diverged from the untraced run"
        );

        let lower = chain.name().to_lowercase();
        opts.write_text(
            &format!("trace_{lower}.json"),
            &stabl::observe::chrome_trace_json(&traced.trace, chain.name()),
        );
        opts.write_text(
            &format!("events_{lower}.jsonl"),
            &stabl::observe::events_jsonl(&traced.trace),
        );
        opts.write_text(
            &format!("stats_{lower}.json"),
            &stabl::observe::stats_json(&traced.result.stats),
        );

        if traced.result.stats.dropped_trace_lines > 0 {
            eprintln!(
                "WARNING: {}: {} free-text trace lines were dropped at the kernel ring — \
                 the textual trace is incomplete",
                chain.name(),
                traced.result.stats.dropped_trace_lines
            );
        }

        let counters = &traced.trace.counters;
        let stages = &traced.result.stages;
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>8}  {}",
            chain.name(),
            traced.trace.events.len(),
            traced.trace.dropped_events,
            counters.commits,
            counters.phase_marks,
            stages.summary(),
        );
        let stage = |h: &stabl::metrics::LatencyHistogram| {
            serde_json::json!({
                "samples": h.count(),
                "mean_s": h.mean_secs(),
                "p50_upper_s": h.quantile_upper_micros(0.5) as f64 / 1e6,
                "p99_upper_s": h.quantile_upper_micros(0.99) as f64 / 1e6,
                "max_s": h.max_micros as f64 / 1e6,
            })
        };
        summary.push(serde_json::json!({
            "chain": chain.name(),
            "scenario": kind.name(),
            "capture": traced.trace.capture.name(),
            "events_recorded": traced.trace.events.len() as u64,
            "events_dropped": traced.trace.dropped_events,
            "trace_lines_dropped": traced.result.stats.dropped_trace_lines,
            "counters": serde_json::to_value(counters),
            "contention": serde_json::json!({
                "speculative_reexecutions": traced.result.stats.speculative_reexecutions,
                "conflict_aborts": traced.result.stats.conflict_aborts,
                "pool_evictions": traced.result.stats.pool_evictions,
                "pool_replacements": traced.result.stats.pool_replacements,
            }),
            "queueing": stage(&stages.queueing),
            "consensus": stage(&stages.consensus),
            "delivery": stage(&stages.delivery),
        }));
    }
    opts.write_json("trace_summary.json", &summary);
    println!("\ntraces verified byte-neutral: Full capture and Off produced identical results");
}
