//! Extension: the credence.js-style quorum client — the paper's §9
//! future work ("evaluating Byzantine fault tolerance using recommended
//! specialized client libraries, such as credence.js").
//!
//! Three client strategies face one *withholding* Byzantine RPC node
//! (it participates in consensus correctly but never confirms commits
//! to its clients):
//!
//! * the SDK default (trust one node) loses every transaction routed
//!   through the liar;
//! * the paper's wait-for-all secure client is *worse*: every client
//!   whose replica set contains the liar stalls;
//! * a credence-style quorum client (accept at `t + 1` of `t + 2`
//!   observations) rides through it — and is faster than wait-for-all
//!   even without an adversary.

use stabl::{report_from_runs, Chain, ClientMode, ScenarioKind};
use stabl_bench::{BenchOpts, Job};
use stabl_sim::NodeId;

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    eprintln!("credence extension ({})", setup.horizon);
    let jobs = Chain::ALL
        .iter()
        .flat_map(|&chain| {
            let byzantine = |mode: ClientMode, label: &str| {
                let mut config = setup.run_config(chain, ScenarioKind::Baseline);
                config.client_mode = mode;
                // Node 2 (client-facing) withholds confirmations.
                config.byzantine_rpc = vec![NodeId::new(2)];
                Job::config_with_cpu(format!("{}/{label}", chain.name()), chain, config, 2.0)
            };
            [
                Job::config_with_cpu(
                    format!("{}/honest-baseline", chain.name()),
                    chain,
                    setup.run_config(chain, ScenarioKind::Baseline),
                    2.0,
                ),
                byzantine(ClientMode::Single, "single"),
                byzantine(ClientMode::paper_secure(), "wait-all"),
                byzantine(ClientMode::credence(3), "credence"),
            ]
        })
        .collect();
    let results = opts.engine().run(jobs);
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>14}",
        "chain", "single: lost", "wait-all: lost", "credence: lost", "credence Δμ"
    );
    let mut artefact = Vec::new();
    for (i, &chain) in Chain::ALL.iter().enumerate() {
        let honest_baseline = &results[4 * i];
        let single = &results[4 * i + 1];
        let wait_all = &results[4 * i + 2];
        let credence = &results[4 * i + 3];
        let report = report_from_runs(chain, ScenarioKind::SecureClient, honest_baseline, credence);
        println!(
            "{:<10} {:>15.1}% {:>15.1}% {:>15.1}% {:>14}",
            chain.name(),
            (1.0 - single.commit_ratio()) * 100.0,
            (1.0 - wait_all.commit_ratio()) * 100.0,
            (1.0 - credence.commit_ratio()) * 100.0,
            report.sensitivity.to_string(),
        );
        artefact.push(serde_json::json!({
            "chain": chain.name(),
            "single_lost": 1.0 - single.commit_ratio(),
            "wait_all_lost": 1.0 - wait_all.commit_ratio(),
            "credence_lost": 1.0 - credence.commit_ratio(),
            "credence_vs_honest_baseline": report.sensitivity.score(),
        }));
    }
    println!(
        "\nΔμ compares the credence client under attack against an honest-network\n\
         single-client baseline: tolerating the liar costs little (and on some\n\
         chains quorum reads are even faster than trusting one node)."
    );
    opts.write_json("ext_credence.json", &artefact);
}
