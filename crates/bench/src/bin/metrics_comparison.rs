//! §3's argument, made runnable: how the sensitivity score relates to
//! the classic dependability metrics (latency deltas, throughput drop,
//! downtime) across the crash and transient scenarios.
//!
//! The claim: latency/throughput deltas capture the *amplitude* of an
//! impact but miss its *duration*; downtime captures duration but not
//! amplitude; the sensitivity score captures both and needs no sliding
//! window or threshold parameter.

use stabl::metrics::{downtime_seconds, throughput_drop, RecoveryReport};
use stabl::{Chain, ScenarioKind};
use stabl_bench::{BenchOpts, Job};

const KINDS: [ScenarioKind; 2] = [ScenarioKind::Crash, ScenarioKind::Transient];

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    let fault_s = (setup.fault_at.as_micros() / 1_000_000) as usize;
    let end_s = (setup.horizon.as_micros() / 1_000_000) as usize;
    let jobs = KINDS
        .iter()
        .flat_map(|&kind| {
            Chain::ALL.iter().flat_map(move |&chain| {
                [
                    Job::scenario_baseline(setup, chain, kind),
                    Job::scenario(setup, chain, kind),
                ]
            })
        })
        .collect();
    let results = opts.engine().run(jobs);
    let mut artefact = Vec::new();
    for (k, kind) in KINDS.into_iter().enumerate() {
        println!(
            "\n{} scenario\n{:<10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            kind.name(),
            "chain",
            "sensitivity",
            "Δp50 (s)",
            "Δp95 (s)",
            "tput drop",
            "downtime",
            "recovery"
        );
        for (c, &chain) in Chain::ALL.iter().enumerate() {
            let cell = 2 * (k * Chain::ALL.len() + c);
            let (baseline, altered) = (&results[cell], &results[cell + 1]);
            let report = stabl::report_from_runs(chain, kind, baseline, altered);
            let (dp50, dp95) = match (baseline.ecdf(), altered.ecdf()) {
                (Ok(b), Ok(a)) => (
                    a.quantile(0.5) - b.quantile(0.5),
                    a.quantile(0.95) - b.quantile(0.95),
                ),
                _ => (f64::NAN, f64::NAN),
            };
            let drop = throughput_drop(
                &baseline.throughput(),
                &altered.throughput(),
                fault_s,
                end_s,
            )
            .expect("fault window fits the run horizon");
            let downtime = downtime_seconds(&altered.throughput(), 10, fault_s, end_s)
                .expect("fault window fits the run horizon");
            let recovery = if kind == ScenarioKind::Transient {
                RecoveryReport::measure(
                    &altered.throughput(),
                    setup.fault_at,
                    setup.recover_at,
                    200,
                )
                .expect("fault/recovery marks fit the run horizon")
                .recovery_seconds
            } else {
                None
            };
            println!(
                "{:<10} {:>12} {:>10.3} {:>10.3} {:>9.1}% {:>9}s {:>10}",
                chain.name(),
                report.sensitivity.to_string(),
                dp50,
                dp95,
                drop * 100.0,
                downtime,
                recovery
                    .map(|r| format!("{r}s"))
                    .unwrap_or_else(|| "—".into()),
            );
            artefact.push(serde_json::json!({
                "chain": chain.name(),
                "scenario": kind.name(),
                "sensitivity": report.sensitivity.score(),
                "delta_p50": dp50,
                "delta_p95": dp95,
                "throughput_drop": drop,
                "downtime_s": downtime,
                "recovery_s": recovery,
            }));
        }
    }
    println!(
        "\nNote how downtime alone ranks the transient failures of Algorand and\n\
         Aptos identically (both ≈ the outage length) while their sensitivities\n\
         differ 2x — the backlog Aptos drags behind is amplitude, not duration.\n\
         Conversely the crash scenario shows latency deltas without downtime."
    );
    opts.write_json("metrics_comparison.json", &artefact);
}
