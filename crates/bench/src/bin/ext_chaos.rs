//! Extension: the composed-adversity (chaos) experiment.
//!
//! The paper studies each failure class in isolation; real outages
//! compose them. This extension drives every chain through one
//! schedule combining, between the usual fault and recovery marks:
//!
//! * **message-level degradation** — 5 % loss, 5 % duplication and 5 %
//!   reordering on every link;
//! * **a flapping asymmetric partition** — all inbound traffic to one
//!   back node severed in two windows (outbound stays up);
//! * **a slow node** — +200 ms on everything another back node sends;
//! * **an equivocating Byzantine node** — a third back node replays
//!   stale payloads to half its peers;
//!
//! while the clients run a retry policy (timeout, bounded exponential
//! backoff, resubmission to alternate nodes) instead of the paper's
//! fire-and-forget submission.
//!
//! The artefact reports, per chain, the sensitivity against an honest
//! baseline plus the retry/give-up and drop/duplicate counters that
//! show the adversity actually engaged.

use stabl::{
    report_from_runs, Chain, FaultAction, FaultSchedule, FaultWindow, LinkFault, RetryPolicy,
    ScenarioKind,
};
use stabl_bench::{sensitivity_table, BenchOpts, Job};
use stabl_sim::{ByzantineBehavior, ByzantineSpec, NodeId, SimDuration};

fn main() {
    let opts = BenchOpts::from_args();
    let setup = &opts.setup;
    eprintln!("chaos extension ({})", setup.horizon);

    // Scale the schedule to the campaign: adversity runs between the
    // standard fault and recovery marks; the flap cuts the second and
    // fourth quarters of that window (shared FaultWindow arithmetic —
    // the same helper the adversary search's genome operators use).
    let window = FaultWindow::new(setup.fault_at, setup.recover_at);

    // Distinct back nodes per role so the schedule validates: node 9
    // equivocates, node 8 loses its inbound links, node 7 is slow.
    let equivocator = NodeId::new(9);
    let flap_target = NodeId::new(8);
    let slow_node = NodeId::new(7);

    let degrade = LinkFault::all()
        .with_drop(0.05)
        .with_duplicate(0.05)
        .with_reorder(0.05, SimDuration::from_millis(30));
    let inbound_cut = LinkFault::from_parts(
        None,
        Some(vec![flap_target]),
        1.0,
        0.0,
        0.0,
        SimDuration::ZERO,
    );
    let flap_early = window.slice(1, 4);
    let flap_late = window.slice(3, 4);
    let schedule = FaultSchedule::link_degrade(degrade, window.at, window.until)
        .and(FaultAction::LinkDegrade {
            fault: inbound_cut.clone(),
            at: flap_early.at,
            until: flap_early.until,
        })
        .and(FaultAction::LinkDegrade {
            fault: inbound_cut,
            at: flap_late.at,
            until: flap_late.until,
        })
        .and(FaultAction::Slowdown {
            nodes: vec![slow_node],
            extra: SimDuration::from_millis(200),
            at: window.at,
            until: window.until,
        });

    // Retry timings scale with the horizon so quick profiles still
    // exercise resubmission (full campaign: 10 s timeout).
    let timeout = SimDuration::from_micros((setup.horizon.as_micros() / 40).max(1_000_000));
    let retry = RetryPolicy {
        timeout,
        max_retries: 3,
        backoff_base: timeout / 4,
        backoff_factor_permille: 2000,
        backoff_cap: timeout,
    };

    let jobs = Chain::ALL
        .iter()
        .flat_map(|&chain| {
            let mut config = setup.run_config(chain, ScenarioKind::Baseline);
            config.faults = schedule.clone();
            config.byzantine = ByzantineSpec::new([equivocator], ByzantineBehavior::Equivocate);
            config.retry = Some(retry);
            [
                Job::scenario(setup, chain, ScenarioKind::Baseline),
                Job::config(format!("{}/chaos", chain.name()), chain, config),
            ]
        })
        .collect();
    let results = opts.engine().run(jobs);

    let reports: Vec<_> = Chain::ALL
        .iter()
        .enumerate()
        // Reuse the crash kind for reporting (the label is printed
        // separately).
        .map(|(i, &chain)| {
            report_from_runs(
                chain,
                ScenarioKind::Crash,
                &results[2 * i],
                &results[2 * i + 1],
            )
        })
        .collect();
    println!(
        "\n{}",
        sensitivity_table(
            "Extension — composed chaos (loss + flap + slow + equivocation), retrying clients",
            &reports
        )
    );
    println!(
        "{:<10} {:>9} {:>9} {:>11} {:>12} {:>12}",
        "chain", "retries", "give-ups", "unresolved", "link drops", "link dups"
    );
    let mut artefact = Vec::new();
    for (i, &chain) in Chain::ALL.iter().enumerate() {
        let chaos = &results[2 * i + 1];
        println!(
            "{:<10} {:>9} {:>9} {:>11} {:>12} {:>12}",
            chain.name(),
            chaos.retries,
            chaos.give_ups,
            chaos.unresolved,
            chaos.stats.messages_dropped_link,
            chaos.stats.messages_duplicated_link,
        );
        artefact.push(serde_json::json!({
            "chain": chain.name(),
            "score": reports[i].sensitivity.score(),
            "retries": chaos.retries,
            "give_ups": chaos.give_ups,
            "unresolved": chaos.unresolved,
            "messages_dropped_link": chaos.stats.messages_dropped_link,
            "messages_duplicated_link": chaos.stats.messages_duplicated_link,
            "messages_reordered_link": chaos.stats.messages_reordered_link,
        }));
    }
    opts.write_json("ext_chaos.json", &artefact);
}
