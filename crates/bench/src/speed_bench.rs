//! Shared workloads behind the kernel speed benchmarks.
//!
//! Both the criterion suite (`benches/kernel.rs`) and the speed-artifact
//! binary (`ext_speed`) run exactly these workloads, so the numbers in
//! `BENCH_speed.json` describe the same code paths the microbenchmarks
//! measure.

use stabl_sim::{Agenda, Ctx, DetRng, NodeId, Protocol, SimDuration};

/// A chatty protocol stressing the event queue: every node broadcasts on
/// a 10 ms timer and ignores what it hears back.
pub struct Chatty;

impl Protocol for Chatty {
    type Msg = u64;
    type Request = u64;
    type Commit = u64;
    type Timer = ();
    type Config = ();
    fn new(_: NodeId, _: usize, _: &(), ctx: &mut Ctx<'_, Self>) -> Self {
        ctx.set_timer(SimDuration::from_millis(10), ());
        Chatty
    }
    fn on_message(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, Self>) {}
    fn on_timer(&mut self, _: (), ctx: &mut Ctx<'_, Self>) {
        ctx.broadcast(1);
        ctx.set_timer(SimDuration::from_millis(10), ());
    }
    fn on_request(&mut self, _: u64, _: &mut Ctx<'_, Self>) {}
    fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
}

/// A timer-churn protocol: every fire arms a fresh batch of eight timers
/// and immediately cancels all but one, so the agenda carries a steady
/// load of stale, generation-bumped slots next to the live ones.
pub struct Churny;

impl Protocol for Churny {
    type Msg = u64;
    type Request = u64;
    type Commit = u64;
    type Timer = u32;
    type Config = ();
    fn new(_: NodeId, _: usize, _: &(), ctx: &mut Ctx<'_, Self>) -> Self {
        ctx.set_timer(SimDuration::from_millis(1), 0);
        Churny
    }
    fn on_message(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, Self>) {}
    fn on_timer(&mut self, _: u32, ctx: &mut Ctx<'_, Self>) {
        for i in 0..8u32 {
            let delay = SimDuration::from_micros(500 + 137 * u64::from(i));
            let id = ctx.set_timer(delay, i);
            if i < 7 {
                ctx.cancel_timer(id);
            }
        }
    }
    fn on_request(&mut self, _: u64, _: &mut Ctx<'_, Self>) {}
    fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
}

/// Pre-generates `count` event times drawn uniformly from
/// `[0, horizon_micros)`, shared by the agenda workloads.
pub fn event_times(count: usize, horizon_micros: u64, seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    (0..count).map(|_| rng.next_below(horizon_micros)).collect()
}

/// Pushes every time into a fresh agenda and pops them all back out,
/// returning a payload checksum that forces the work to happen.
pub fn agenda_round_trip(times: &[u64]) -> u64 {
    let mut agenda: Agenda<u64> = Agenda::new();
    for (i, &t) in times.iter().enumerate() {
        agenda.push(t, i as u64);
    }
    let mut acc = 0u64;
    while let Some((_, payload)) = agenda.pop() {
        acc = acc.wrapping_add(payload);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{SimTime, Simulation};

    #[test]
    fn agenda_round_trip_sums_all_payloads() {
        let times = event_times(1_000, 64_000, 7);
        let expected: u64 = (0..1_000u64).sum();
        assert_eq!(agenda_round_trip(&times), expected);
    }

    #[test]
    fn chatty_delivers_broadcasts() {
        let mut sim = Simulation::<Chatty>::new(5, 42, ());
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.stats().messages_delivered > 0);
    }

    #[test]
    fn churny_leaves_stale_timers() {
        let mut sim = Simulation::<Churny>::new(5, 42, ());
        sim.run_until(SimTime::from_secs(1));
        let stats = sim.stats();
        // Seven of every eight armed timers are cancelled before firing.
        assert!(stats.timers_stale > stats.timers_fired);
    }
}
