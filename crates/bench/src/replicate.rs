//! The replication engine: fans the full campaign matrix out over a
//! [`SeedSequence`] of N seeds and folds the per-seed reports into
//! [`ReplicatedCell`] summaries with bootstrap confidence intervals.
//!
//! All `replicates × 30` cells go to the worker pool as **one** batch,
//! so the pool never drains between replicates and every cell is
//! individually memoised by the content-addressed cache (replicate 0
//! reuses the unreplicated campaign's cached cells — its seed is the
//! base seed itself). Assembly is per-seed-chunk in submission order,
//! so the artifact is byte-identical whatever the `--jobs` count or
//! cache state.

use stabl::report::{ScenarioReport, SensitivityRecord};
use stabl::{Chain, PaperSetup, ScenarioKind};
use stabl_stats::{CellObservation, ReplicatedCampaign, ReplicatedCell, SeedSequence};

use crate::engine::{
    campaign_cells, reports_from_campaign_results, Engine, EngineTelemetry, CELLS_PER_CHAIN,
};

/// Default replicate count for the CI-bearing figure binaries: 8 seeds
/// keeps the quick campaign in CI budget while giving the bootstrap
/// enough spread to resolve a 95 % interval.
pub const DEFAULT_REPLICATES: usize = 8;

/// The altered-run commit ratio a [`ScenarioReport`] implies (mirrors
/// `RunResult::commit_ratio`: a run that submitted nothing trivially
/// committed everything).
fn commit_ratio(report: &ScenarioReport) -> f64 {
    let summary = &report.altered;
    if summary.submitted == 0 {
        return 1.0;
    }
    (summary.submitted - summary.unresolved) as f64 / summary.submitted as f64
}

/// Runs the campaign at `replicates` seeds and folds each (chain,
/// scenario) cell into a replicated summary.
pub fn run_replicated_campaign(
    engine: &Engine,
    setup: &PaperSetup,
    replicates: usize,
) -> ReplicatedCampaign {
    run_replicated_campaign_with_telemetry(engine, setup, replicates).0
}

/// [`run_replicated_campaign`], also returning the batch's wall-clock
/// telemetry (machine-dependent, for a *separate* artefact).
///
/// # Panics
///
/// Panics if `replicates` is zero.
pub fn run_replicated_campaign_with_telemetry(
    engine: &Engine,
    setup: &PaperSetup,
    replicates: usize,
) -> (ReplicatedCampaign, EngineTelemetry) {
    assert!(replicates > 0, "a replication needs at least one seed");
    let seeds = SeedSequence::new(setup.seed);
    let cells = campaign_cells();
    // One flat batch, seed-major: replicate r occupies the job range
    // [r * cells.len(), (r + 1) * cells.len()).
    let mut jobs = Vec::with_capacity(replicates * cells.len());
    let mut setups = Vec::with_capacity(replicates);
    for r in 0..replicates {
        let replicate_setup = PaperSetup {
            seed: seeds.seed(r),
            ..setup.clone()
        };
        jobs.extend(cells.iter().map(|cell| cell.job(&replicate_setup)));
        setups.push(replicate_setup);
    }
    let (results, telemetry) = engine.run_with_telemetry(jobs);

    // Per-replicate report assembly, then a per-cell fold across seeds.
    let per_seed: Vec<Vec<ScenarioReport>> = results
        .chunks(cells.len())
        .map(reports_from_campaign_results)
        .collect();
    let reports_per_chain = CELLS_PER_CHAIN - 2; // the four altered scenarios
    let mut folded = Vec::with_capacity(Chain::ALL.len() * reports_per_chain);
    for (i, &chain) in Chain::ALL.iter().enumerate() {
        for (j, kind) in ScenarioKind::ALTERED.into_iter().enumerate() {
            let index = i * reports_per_chain + j;
            let observations: Vec<CellObservation> = per_seed
                .iter()
                .zip(&setups)
                .map(|(reports, replicate_setup)| {
                    let report = &reports[index];
                    let record: SensitivityRecord = report.sensitivity.into();
                    CellObservation {
                        seed: replicate_setup.seed,
                        score: record.score,
                        improved: record.improved,
                        commit_ratio: commit_ratio(report),
                        mean_latency: report.altered.mean_latency,
                    }
                })
                .collect();
            folded.push(ReplicatedCell::from_observations(
                chain.name(),
                kind.name(),
                &observations,
                setup.seed,
            ));
        }
    }
    let campaign = ReplicatedCampaign {
        base_seed: setup.seed,
        replicates: replicates as u64,
        horizon_secs: setup.horizon.as_secs_f64().round() as u64,
        cells: folded,
    };
    (campaign, telemetry)
}

/// Formats a replicated campaign as a human table: one row per cell,
/// `score ± CI` (or the infinite count) plus the commit-ratio interval.
pub fn replication_table(title: &str, campaign: &ReplicatedCampaign) -> String {
    let mut out = format!(
        "{title}\n{}\n{:<10} {:<13} {:>24} {:>22}\n",
        "─".repeat(title.chars().count()),
        "chain",
        "scenario",
        "sensitivity (95% CI)",
        "commit ratio (95% CI)",
    );
    for cell in &campaign.cells {
        let score = match (&cell.score.ci, cell.infinite) {
            (_, n) if n == cell.replicates => "∞ (all replicates)".to_owned(),
            (Some(ci), 0) => format!("{:.3} [{:.3}, {:.3}]", ci.point, ci.lo, ci.hi),
            (Some(ci), n) => format!("{:.3} [{:.3}, {:.3}] +{n}∞", ci.point, ci.lo, ci.hi),
            (None, n) => format!("no finite scores ({n}∞)"),
        };
        let ratio = match &cell.commit_ratio.ci {
            Some(ci) => format!("{:.3} [{:.3}, {:.3}]", ci.point, ci.lo, ci.hi),
            None => "—".to_owned(),
        };
        out.push_str(&format!(
            "{:<10} {:<13} {:>24} {:>22}\n",
            cell.chain, cell.scenario, score, ratio
        ));
    }
    out.push_str(&format!(
        "({} replicates per cell, seeds from SeedSequence({:#x}))\n",
        campaign.replicates, campaign.base_seed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end replication: 2 seeds over the quickest
    /// campaign the harness supports, twice, byte-identical.
    #[test]
    fn replicated_campaign_is_deterministic() {
        let setup = PaperSetup::quick(8, 42);
        let engine = Engine::new(2, None);
        let a = run_replicated_campaign(&engine, &setup, 2);
        let b = run_replicated_campaign(&engine, &setup, 2);
        let ja = serde_json::to_string(&a).expect("serialise");
        let jb = serde_json::to_string(&b).expect("serialise");
        assert_eq!(ja, jb, "replication must replay byte-identically");
        assert_eq!(
            a.cells.len(),
            Chain::ALL.len() * ScenarioKind::ALTERED.len()
        );
        assert_eq!(a.replicates, 2);
        for cell in &a.cells {
            assert_eq!(cell.replicates, 2);
            assert_eq!(cell.scores.len(), 2);
            // Replicate 0 runs under the base seed itself.
            assert_eq!(cell.scores[0].seed, 42);
            assert!(
                cell.commit_ratio.ci.is_some(),
                "commit-ratio CI must exist for {}/{}",
                cell.chain,
                cell.scenario
            );
        }
    }

    #[test]
    fn single_replicate_matches_unreplicated_campaign() {
        let setup = PaperSetup::quick(8, 42);
        let engine = Engine::new(2, None);
        let replicated = run_replicated_campaign(&engine, &setup, 1);
        let reports = crate::engine::run_campaign(&engine, &setup);
        for (cell, report) in replicated.cells.iter().zip(&reports) {
            assert_eq!(cell.chain, report.chain.name());
            assert_eq!(cell.scenario, report.kind.name());
            let record: SensitivityRecord = report.sensitivity.into();
            assert_eq!(cell.scores[0].score, record.score);
        }
    }
}
