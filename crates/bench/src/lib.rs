//! # stabl-bench — the figure-regeneration harness
//!
//! One binary per figure of the paper:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `fig1_aptos_ecdf` | Fig. 1 — Aptos latency eCDFs, baseline vs failures |
//! | `fig3_sensitivity` | Fig. 3a–d — sensitivity scores of the 5 chains per fault type |
//! | `fig3_sensitivity_ci` | Fig. 3 replicated over N seeds with 95 % bootstrap CIs |
//! | `fig4_throughput_crash` | Fig. 4 — throughput over time under `f = t` crashes |
//! | `fig5_throughput_transient` | Fig. 5 — throughput over time under transient failures |
//! | `fig6_throughput_partition` | Fig. 6 — throughput over time under a partition |
//! | `fig7_radar` | Fig. 7 — the radar synthesis of all sensitivities |
//!
//! Extension binaries (`ext_*`) go beyond the paper; notably
//! `ext_chaos` scores every chain under a *composed* adversity
//! schedule — message loss, a flapping asymmetric partition, a slow
//! node and an equivocating Byzantine node — with retrying clients,
//! and `ext_adversary` *searches* the fault-schedule space for each
//! chain's worst case (see the [`adversary`] bridge module) and
//! commits shrunk reproducers under `results/adversary/corpus/`.
//!
//! Every binary accepts:
//!
//! * `--quick <secs>` — scale the 400 s campaign down (useful: 100–150);
//! * `--seed <u64>` — change the master seed;
//! * `--out <dir>` — where JSON/CSV artefacts go (default `results/`);
//! * `--jobs <n>` — worker threads for the campaign [`engine`] (default:
//!   all hardware threads);
//! * `--no-cache` — recompute every cell instead of replaying the
//!   content-addressed cache under `<out>/.cache/`;
//! * `--replicates <n>` — seeds per cell for replicated campaigns (only
//!   the `*_ci` binaries read it; default 8).
//!
//! All runs go through the campaign [`engine`]: cells execute
//! concurrently and memoise their results, but artefacts are assembled
//! in deterministic chain/scenario order and are byte-identical
//! whatever the `--jobs`/cache settings.

pub mod adversary;
pub mod engine;
pub mod replicate;
pub mod speed_bench;

use std::fs;
use std::path::{Path, PathBuf};

pub use adversary::{paper_worst, replicate_ci, EngineEval};
pub use engine::{
    run_campaign, run_campaign_with_telemetry, run_part, CampaignCell, CellTelemetry, Engine,
    EngineSummary, EngineTelemetry, Job,
};
pub use replicate::{
    replication_table, run_replicated_campaign, run_replicated_campaign_with_telemetry,
    DEFAULT_REPLICATES,
};

use stabl::report::{RadarRow, ScenarioReport, SensitivityRecord};
use stabl::{Chain, PaperSetup, RunResult, ScenarioKind};

/// Command-line options shared by all figure binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// The experimental campaign parameters.
    pub setup: PaperSetup,
    /// Output directory for artefacts.
    pub out_dir: PathBuf,
    /// Worker threads for the campaign engine.
    pub jobs: usize,
    /// Skip the on-disk run cache and recompute every cell.
    pub no_cache: bool,
    /// Seeds per cell for replicated campaigns (`--replicates`); `None`
    /// leaves the binary's default in force.
    pub replicates: Option<usize>,
}

impl BenchOpts {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> BenchOpts {
        let mut setup = PaperSetup::default();
        let mut out_dir = PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        let mut quick: Option<u64> = None;
        let mut seed: Option<u64> = None;
        let mut jobs = Engine::default_workers();
        let mut no_cache = false;
        let mut replicates: Option<usize> = None;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    let secs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--quick takes seconds");
                    quick = Some(secs);
                }
                "--seed" => {
                    seed = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--seed takes a u64"),
                    );
                }
                "--out" => {
                    out_dir = PathBuf::from(args.next().expect("--out takes a directory"));
                }
                "--jobs" => {
                    jobs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .expect("--jobs takes a positive thread count");
                }
                "--no-cache" => no_cache = true,
                "--replicates" => {
                    replicates = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n: &usize| n > 0)
                            .expect("--replicates takes a positive seed count"),
                    );
                }
                other => panic!(
                    "unknown argument {other}; known: --quick --seed --out --jobs \
                     --no-cache --replicates"
                ),
            }
        }
        if let Some(secs) = quick {
            setup = PaperSetup::quick(secs, seed.unwrap_or(setup.seed));
        } else if let Some(seed) = seed {
            setup.seed = seed;
        }
        BenchOpts {
            setup,
            out_dir,
            jobs,
            no_cache,
            replicates,
        }
    }

    /// The campaign engine these options describe: `--jobs` workers,
    /// memoising into `<out>/.cache/` unless `--no-cache` was given.
    pub fn engine(&self) -> Engine {
        let cache_dir = if self.no_cache {
            None
        } else {
            Some(self.out_dir.join(".cache"))
        };
        Engine::new(self.jobs, cache_dir)
    }

    /// Writes a serialisable artefact as pretty JSON under the output
    /// directory.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (benchmark binaries fail loudly).
    pub fn write_json<T: serde::Serialize>(&self, name: &str, value: &T) {
        fs::create_dir_all(&self.out_dir).expect("create output directory");
        let path = self.out_dir.join(name);
        let json = serde_json::to_string_pretty(value).expect("serialise artefact");
        fs::write(&path, json).expect("write artefact");
        eprintln!("wrote {}", path.display());
    }

    /// Writes raw text (CSV) under the output directory.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure.
    pub fn write_text(&self, name: &str, contents: &str) {
        fs::create_dir_all(&self.out_dir).expect("create output directory");
        let path: &Path = &self.out_dir.join(name);
        fs::write(path, contents).expect("write artefact");
        eprintln!("wrote {}", path.display());
    }
}

/// Folds campaign reports into Fig. 7's radar rows.
pub fn radar_rows(reports: &[ScenarioReport]) -> Vec<RadarRow> {
    Chain::ALL
        .iter()
        .map(|&chain| {
            let pick = |kind: ScenarioKind| -> SensitivityRecord {
                reports
                    .iter()
                    .find(|r| r.chain == chain && r.kind == kind)
                    .map(|r| r.sensitivity.into())
                    .unwrap_or(SensitivityRecord {
                        score: None,
                        improved: false,
                    })
            };
            RadarRow {
                chain: chain.name().to_owned(),
                crash: pick(ScenarioKind::Crash),
                transient: pick(ScenarioKind::Transient),
                partition: pick(ScenarioKind::Partition),
                secure_client: pick(ScenarioKind::SecureClient),
            }
        })
        .collect()
}

/// Renders two throughput series as a CSV: `second,baseline,altered`.
pub fn throughput_csv(baseline: &RunResult, altered: &RunResult) -> String {
    let b = baseline.throughput();
    let a = altered.throughput();
    let mut out = String::from("second,baseline_tps,altered_tps\n");
    for (i, (bb, aa)) in b.bins().iter().zip(a.bins().iter()).enumerate() {
        out.push_str(&format!("{i},{bb},{aa}\n"));
    }
    out
}

/// Formats a sensitivity table (one part of Fig. 3) with ASCII bars.
pub fn sensitivity_table(title: &str, reports: &[ScenarioReport]) -> String {
    let mut out = format!("{title}\n{}\n", "─".repeat(title.chars().count()));
    let max = reports
        .iter()
        .filter_map(|r| r.sensitivity.score())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for report in reports {
        let record: SensitivityRecord = report.sensitivity.into();
        out.push_str(&format!(
            "{:<10} {}\n",
            report.chain.name(),
            stabl::report::ascii_bar(record, max, 40)
        ));
    }
    out
}
