//! The campaign engine: expands a [`PaperSetup`] into an explicit matrix
//! of run cells, executes the cells on a bounded worker pool and
//! memoises every cell in a content-addressed on-disk cache.
//!
//! Every cell is one deterministic simulation run (same seed ⇒
//! bit-identical [`RunResult`]), which makes the campaign embarrassingly
//! parallel *and* safely cacheable:
//!
//! * **Parallelism** — [`Engine::run`] pulls cells off a shared index
//!   with `--jobs N` scoped worker threads; results come back in
//!   submission order, so report assembly is deterministic regardless
//!   of completion order.
//! * **Memoisation** — each cell is keyed by the SHA-256 of its full
//!   [`RunConfig`] (Debug form), its CPU-scaling factor, a
//!   caller-supplied salt for non-config inputs (custom protocol
//!   configurations) and the code version (`git describe`). A warm
//!   cache replays a campaign without running a single simulation;
//!   `--no-cache` forces recomputation.
//!
//! Cached artefacts are bit-identical to fresh ones: floats are written
//! in shortest round-trip form, so a [`RunResult`] survives the JSON
//! round trip exactly.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use stabl::report::ScenarioReport;
use stabl::{report_from_runs, Chain, PaperSetup, RunConfig, RunResult, ScenarioKind};
use stabl_types::Sha256;

/// Bumped whenever the serialised [`RunResult`] layout changes, so stale
/// cache entries miss instead of misparsing. v2: `RunResult` gained
/// retry counters; `RunConfig` gained the adversity surface (fault
/// schedules, Byzantine specs, retry policies). v3: `RunResult` gained
/// the per-stage latency decomposition (`stages`); `SimStats` gained
/// `dropped_trace_lines`. v4: `RunSummary` quantiles moved onto the
/// `stabl-stats` quantile-sketch grid and the replication artifacts
/// (`ReplicatedCampaign` and friends) joined the serialised surface.
/// v5: the adversary-search types (`Genome`, `Fitness`, `CorpusEntry`
/// and friends) joined the serialised surface, and `FaultError` grew
/// window-validity variants that tightened which schedules ever reach a
/// run. v6: the diagnosis types (`MetricsTimeline`, `BlameTable`,
/// `LivenessPostMortem`, `Diagnosis` and friends) joined the serialised
/// surface, `SimEvent` gained the `Gauge` variant (`EventCounters`
/// gained `gauge_samples`), `RunSummary` gained `dropped_trace_lines`,
/// and `GateReport` gained the optional utilisation summary. v7: the
/// production workload model (`TrafficModel`, `ArrivalProcess`,
/// `ConflictProfile`) joined the serialised surface via `RunConfig`'s
/// workload spec, and `SimStats` gained the four contention counters
/// (`speculative_reexecutions`, `conflict_aborts`, `pool_evictions`,
/// `pool_replacements`).
pub const CACHE_SCHEMA_VERSION: u32 = 7;

// The cache-schema manifest: every type with a `Serialize` impl in the
// `RunResult`-reachable crates must be listed here, and `stabl-lint`
// (rule S-001/S-002) fails the build when the list drifts from the
// sources. Adding a name here is the reviewed moment to ask whether
// CACHE_SCHEMA_VERSION needs a bump.
// The speed artifact (`ext_speed` → `BENCH_speed.json`) is deliberately
// outside this surface: it is assembled from untyped `serde_json`
// values, never passes through the run cache (wall-clock timings must
// not be memoised), and so adds no `Serialize` types to the manifest.
// The kernel's internal calendar-queue types (`Agenda`, `MsgArena`,
// `TimerRegistry`) carry no `Serialize` impls either — the serialised
// surface (`SimStats`, `RunResult`, …) was unchanged by the kernel
// rewrite, which is why that refactor needed no version bump.
// stabl-lint: cache-schema: RunResult, RunSummary, SensitivityRecord, RadarRow
// stabl-lint: cache-schema: LatencyHistogram, StageLatencies
// stabl-lint: cache-schema: CellTelemetry, EngineTelemetry
// stabl-lint: cache-schema: RetryPolicy, FaultAction, FaultSchedule
// stabl-lint: cache-schema: SimTime, SimDuration, NodeId, PanicRecord, SimStats
// stabl-lint: cache-schema: CaptureLevel, SimEvent, TimedEvent, EventCounters
// stabl-lint: cache-schema: LinkFault, ByzantineBehavior, ByzantineSpec
// stabl-lint: cache-schema: MeanVar, QuantileSketch, SeedSequence
// stabl-lint: cache-schema: ConfidenceInterval, CellObservation, ReplicateScore
// stabl-lint: cache-schema: MetricCi, ReplicatedCell, ReplicatedCampaign
// stabl-lint: cache-schema: ArrivalProcess, ConflictProfile, TrafficModel
// stabl-lint: cache-schema: MetricVerdict, GateReport, UtilizationSummary
// stabl-lint: cache-schema: Genome, ByzGene, Fitness, Objective
// stabl-lint: cache-schema: Strategy, SearchConfig, SearchTrace, TraceStep
// stabl-lint: cache-schema: SearchOutcome, ShrinkOutcome, CorpusEntry, ScoreCi
// stabl-lint: cache-schema: FrameCounts, GaugeSeries, MetricsFrame, MetricsTimeline
// stabl-lint: cache-schema: BlameCause, TxBlame, StageSplit, BlameTable
// stabl-lint: cache-schema: FaultDescription, StalledPhase, LivenessPostMortem
// stabl-lint: cache-schema: Diagnosis

/// One simulation run the engine can schedule: a display label, the
/// material its cache key is derived from, and the work itself.
pub struct Job {
    label: String,
    material: String,
    run: Box<dyn Fn() -> RunResult + Send + Sync>,
}

impl Job {
    /// Wraps an arbitrary runnable cell.
    ///
    /// `material` must capture *every* input that influences the result
    /// (the engine adds the code version and schema version itself).
    pub fn new(
        label: impl Into<String>,
        material: String,
        run: impl Fn() -> RunResult + Send + Sync + 'static,
    ) -> Job {
        Job {
            label: label.into(),
            material,
            run: Box::new(run),
        }
    }

    /// A run of `chain` under `config` with its default CPU budget.
    pub fn config(label: impl Into<String>, chain: Chain, config: RunConfig) -> Job {
        Job::config_with_cpu(label, chain, config, 1.0)
    }

    /// A run of `chain` under `config` with `cores` times the default
    /// CPU budget (the paper's doubled-vCPU secure-client machines).
    pub fn config_with_cpu(
        label: impl Into<String>,
        chain: Chain,
        config: RunConfig,
        cores: f64,
    ) -> Job {
        let material = format!("chain={chain:?}|cores={cores:?}|{config:?}");
        Job::new(label, material, move || chain.run_with_cpu(&config, cores))
    }

    /// A run with inputs beyond the [`RunConfig`] — a custom protocol
    /// configuration, for instance. `salt` must describe those extra
    /// inputs (typically their `Debug` form); the closure receives the
    /// config back when the cell executes.
    pub fn custom(
        label: impl Into<String>,
        config: RunConfig,
        salt: impl Into<String>,
        run: impl Fn(&RunConfig) -> RunResult + Send + Sync + 'static,
    ) -> Job {
        let material = format!("salt={}|{config:?}", salt.into());
        Job::new(label, material, move || run(&config))
    }

    /// The scenario run [`PaperSetup::run`] would execute.
    pub fn scenario(setup: &PaperSetup, chain: Chain, kind: ScenarioKind) -> Job {
        let cores = scenario_cores(kind);
        let label = cell_label(chain, kind, cores);
        Job::config_with_cpu(label, chain, setup.run_config(chain, kind), cores)
    }

    /// The reference run [`PaperSetup::run_baseline`] would execute: the
    /// baseline scenario, on the same hardware `kind` runs on.
    pub fn scenario_baseline(setup: &PaperSetup, chain: Chain, kind: ScenarioKind) -> Job {
        let cores = scenario_cores(kind);
        let label = cell_label(chain, ScenarioKind::Baseline, cores);
        Job::config_with_cpu(
            label,
            chain,
            setup.run_config(chain, ScenarioKind::Baseline),
            cores,
        )
    }

    /// The display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The cache-key material (the hashed cell identity, minus the code
    /// version the engine mixes in).
    pub fn material(&self) -> &str {
        &self.material
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("label", &self.label)
            .field("material", &self.material)
            .finish_non_exhaustive()
    }
}

/// The CPU-scaling factor a scenario runs with: the secure-client
/// experiment (and its dedicated baseline) ran on doubled-vCPU machines.
pub fn scenario_cores(kind: ScenarioKind) -> f64 {
    match kind {
        ScenarioKind::SecureClient => 2.0,
        _ => 1.0,
    }
}

fn cell_label(chain: Chain, kind: ScenarioKind, cores: f64) -> String {
    if cores == 1.0 {
        format!("{}/{}", chain.name(), kind.name())
    } else {
        format!("{}/{}@{cores}x", chain.name(), kind.name())
    }
}

/// The content-addressed cache key of a cell: SHA-256 over the schema
/// version, the code version and the cell's key material.
pub fn cache_key(material: &str, code_version: &str) -> String {
    let mut hasher = Sha256::new();
    hasher.update(b"stabl-cell-cache\n");
    hasher.update(CACHE_SCHEMA_VERSION.to_le_bytes().as_slice());
    hasher.update(code_version.as_bytes());
    hasher.update(b"\n");
    hasher.update(material.as_bytes());
    hasher.finalize().to_string()
}

/// What one [`Engine::run_all`] invocation did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineSummary {
    /// Cells scheduled.
    pub cells: usize,
    /// Cells answered from the cache.
    pub cache_hits: usize,
    /// Cells actually simulated.
    pub executed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole batch, milliseconds.
    pub wall_ms: u128,
}

/// How one cell of a batch was answered: from the cache or by actually
/// simulating, and how long that took on its worker.
///
/// Wall-clock numbers are machine-dependent by nature, so telemetry is
/// written to its *own* artefact (`*_telemetry.json`) and never mixed
/// into the determinism-gated campaign JSON.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CellTelemetry {
    /// The cell's display label (`chain/scenario[@cores]`).
    pub label: String,
    /// Whether the cache answered (no simulation ran).
    pub cached: bool,
    /// Time the cell occupied its worker, milliseconds (cache probes
    /// included).
    pub wall_ms: u64,
}

/// Wall-clock telemetry for one whole [`Engine::run_with_telemetry`]
/// batch: per-cell timings plus pool-level utilisation.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineTelemetry {
    /// Per-cell outcomes, in submission order.
    pub cells: Vec<CellTelemetry>,
    /// Cells answered from the cache.
    pub cache_hits: u64,
    /// Cells actually simulated.
    pub executed: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Wall-clock time of the whole batch, milliseconds.
    pub wall_ms: u64,
    /// Fraction of the pool's capacity (`workers × wall_ms`) that was
    /// busy running cells: 1.0 means no worker ever idled, low values
    /// mean the batch was starved by stragglers or too few cells.
    pub utilization: f64,
}

impl EngineTelemetry {
    /// The slowest executed cells, most expensive first — the ones worth
    /// caching, splitting or scheduling early.
    pub fn slowest(&self, top: usize) -> Vec<&CellTelemetry> {
        let mut executed: Vec<&CellTelemetry> = self.cells.iter().filter(|c| !c.cached).collect();
        executed.sort_by(|a, b| b.wall_ms.cmp(&a.wall_ms).then(a.label.cmp(&b.label)));
        executed.truncate(top);
        executed
    }
}

/// Executes [`Job`]s on a bounded worker pool with an optional
/// content-addressed result cache.
#[derive(Clone, Debug)]
pub struct Engine {
    workers: usize,
    cache_dir: Option<PathBuf>,
    code_version: String,
}

impl Engine {
    /// An engine with `workers` threads and an optional cache directory
    /// (`None` disables memoisation).
    pub fn new(workers: usize, cache_dir: Option<PathBuf>) -> Engine {
        Engine {
            workers: workers.max(1),
            cache_dir,
            code_version: code_version(),
        }
    }

    /// The default worker count: one per available hardware thread.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// The cache directory, if memoisation is enabled.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Runs every job and returns the results in submission order.
    pub fn run(&self, jobs: Vec<Job>) -> Vec<RunResult> {
        self.run_all(jobs).0
    }

    /// Runs every job, returning results in submission order plus the
    /// batch summary, and prints per-cell progress lines and a final
    /// wall-clock/cache-hit summary to stderr.
    pub fn run_all(&self, jobs: Vec<Job>) -> (Vec<RunResult>, EngineSummary) {
        let (results, telemetry) = self.run_with_telemetry(jobs);
        let summary = EngineSummary {
            cells: telemetry.cells.len(),
            cache_hits: telemetry.cache_hits as usize,
            executed: telemetry.executed as usize,
            workers: telemetry.workers as usize,
            wall_ms: u128::from(telemetry.wall_ms),
        };
        (results, summary)
    }

    /// Runs every job, returning results in submission order plus full
    /// wall-clock telemetry (per-cell timings, cache hit/miss, worker
    /// utilisation). Prints per-cell progress lines and a final summary
    /// to stderr.
    pub fn run_with_telemetry(&self, jobs: Vec<Job>) -> (Vec<RunResult>, EngineTelemetry) {
        let total = jobs.len();
        let workers = self.workers.min(total).max(1);
        let width = jobs
            .iter()
            .map(|j| j.label.chars().count())
            .max()
            .unwrap_or(0);
        let started = Instant::now();
        let slots: Vec<OnceLock<(RunResult, bool, u64)>> =
            (0..total).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let job = &jobs[index];
                    let cell_started = Instant::now();
                    let (result, cached) = self.run_one(job);
                    let cell_ms = cell_started.elapsed().as_millis() as u64;
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    let status = if cached {
                        "cached".to_owned()
                    } else {
                        format!("{:.1}s", cell_ms as f64 / 1e3)
                    };
                    eprintln!(
                        "[{finished:>3}/{total}] {:<width$}  {status}",
                        job.label,
                        width = width
                    );
                    assert!(
                        slots[index].set((result, cached, cell_ms)).is_ok(),
                        "cell executed twice"
                    );
                });
            }
        });
        let mut results = Vec::with_capacity(total);
        let mut cells = Vec::with_capacity(total);
        for (slot, job) in slots.into_iter().zip(&jobs) {
            let (result, cached, wall_ms) = slot.into_inner().expect("every cell completed");
            results.push(result);
            cells.push(CellTelemetry {
                label: job.label.clone(),
                cached,
                wall_ms,
            });
        }
        let wall_ms = started.elapsed().as_millis() as u64;
        let cache_hits = cells.iter().filter(|c| c.cached).count() as u64;
        let busy_ms: u64 = cells.iter().map(|c| c.wall_ms).sum();
        let capacity_ms = (workers as u64) * wall_ms;
        let telemetry = EngineTelemetry {
            cache_hits,
            executed: total as u64 - cache_hits,
            workers: workers as u64,
            wall_ms,
            utilization: if capacity_ms == 0 {
                1.0
            } else {
                (busy_ms as f64 / capacity_ms as f64).min(1.0)
            },
            cells,
        };
        eprintln!(
            "engine: {} cells in {:.1}s — {} cached, {} executed, {} worker(s), {:.0}% busy",
            total,
            telemetry.wall_ms as f64 / 1e3,
            telemetry.cache_hits,
            telemetry.executed,
            telemetry.workers,
            telemetry.utilization * 100.0,
        );
        (results, telemetry)
    }

    /// Runs (or replays) one job; the flag reports a cache hit.
    fn run_one(&self, job: &Job) -> (RunResult, bool) {
        let path = self.cache_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}.json",
                cache_key(&job.material, &self.code_version)
            ))
        });
        if let Some(path) = &path {
            if let Some(result) = load_cached(path) {
                return (result, true);
            }
        }
        let result = (job.run)();
        if let Some(path) = &path {
            store_cached(path, &result);
        }
        (result, false)
    }
}

/// The code version mixed into every cache key: `git describe
/// --always --dirty`, or the crate version when git is unavailable
/// (a release tarball, say).
pub fn code_version() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|v| v.trim().to_owned())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| concat!("pkg-", env!("CARGO_PKG_VERSION")).to_owned())
}

fn load_cached(path: &Path) -> Option<RunResult> {
    let text = fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn store_cached(path: &Path, result: &RunResult) {
    // Failing to persist is not fatal — the run itself succeeded — but
    // a partially written entry must never be visible, so write to a
    // sibling temp file and rename into place.
    let Some(dir) = path.parent() else { return };
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let json = serde_json::to_string(result).expect("serialise run result");
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if fs::write(&tmp, json).is_ok() && fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
    }
}

/// One cell of the paper's campaign matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CampaignCell {
    /// The evaluated blockchain.
    pub chain: Chain,
    /// The scenario run in this cell.
    pub kind: ScenarioKind,
    /// CPU-scaling factor (2.0 on the 8-vCPU secure-client machines).
    pub cores: f64,
}

/// Cells this chain's campaign expands to, in report-assembly order:
/// the two baselines (standard and doubled-vCPU secure-client
/// reference), then the four altered scenarios.
pub const CELLS_PER_CHAIN: usize = 2 + ScenarioKind::ALTERED.len();

/// Expands the full campaign into its explicit cell matrix:
/// chain-major, `CELLS_PER_CHAIN` cells per chain.
pub fn campaign_cells() -> Vec<CampaignCell> {
    let mut cells = Vec::new();
    for &chain in &Chain::ALL {
        cells.push(CampaignCell {
            chain,
            kind: ScenarioKind::Baseline,
            cores: 1.0,
        });
        // The secure-client experiment ran on doubled-vCPU machines, so
        // it is compared against a doubled-vCPU baseline — its own cell.
        cells.push(CampaignCell {
            chain,
            kind: ScenarioKind::Baseline,
            cores: 2.0,
        });
        for kind in ScenarioKind::ALTERED {
            cells.push(CampaignCell {
                chain,
                kind,
                cores: scenario_cores(kind),
            });
        }
    }
    cells
}

impl CampaignCell {
    /// The cell as a schedulable job.
    pub fn job(&self, setup: &PaperSetup) -> Job {
        Job::config_with_cpu(
            cell_label(self.chain, self.kind, self.cores),
            self.chain,
            setup.run_config(self.chain, self.kind),
            self.cores,
        )
    }
}

/// Runs the complete campaign — every chain × every altered scenario,
/// reusing each chain's baseline runs — and returns the reports in
/// deterministic chain-major, scenario-minor order (the same order the
/// serial implementation produced).
pub fn run_campaign(engine: &Engine, setup: &PaperSetup) -> Vec<ScenarioReport> {
    run_campaign_with_telemetry(engine, setup).0
}

/// [`run_campaign`], also returning the batch's wall-clock telemetry so
/// binaries can write it as a *separate* artefact (telemetry is
/// machine-dependent and must stay out of determinism-gated JSON).
pub fn run_campaign_with_telemetry(
    engine: &Engine,
    setup: &PaperSetup,
) -> (Vec<ScenarioReport>, EngineTelemetry) {
    let cells = campaign_cells();
    let (results, telemetry) =
        engine.run_with_telemetry(cells.iter().map(|cell| cell.job(setup)).collect());
    (reports_from_campaign_results(&results), telemetry)
}

/// Assembles the campaign reports from one [`campaign_cells`]-ordered
/// result slice (chain-major, [`CELLS_PER_CHAIN`] cells per chain).
/// Shared by the single-seed campaign and the per-replicate assembly of
/// the replication engine.
///
/// # Panics
///
/// Panics if `results` is shorter than the campaign matrix.
pub fn reports_from_campaign_results(results: &[RunResult]) -> Vec<ScenarioReport> {
    assert!(
        results.len() >= Chain::ALL.len() * CELLS_PER_CHAIN,
        "campaign result slice is truncated: {} of {} cells",
        results.len(),
        Chain::ALL.len() * CELLS_PER_CHAIN
    );
    let mut reports = Vec::new();
    for (i, &chain) in Chain::ALL.iter().enumerate() {
        let base = &results[i * CELLS_PER_CHAIN];
        let base_8vcpu = &results[i * CELLS_PER_CHAIN + 1];
        for (j, kind) in ScenarioKind::ALTERED.into_iter().enumerate() {
            let altered = &results[i * CELLS_PER_CHAIN + 2 + j];
            let reference = if kind == ScenarioKind::SecureClient {
                base_8vcpu
            } else {
                base
            };
            reports.push(report_from_runs(chain, kind, reference, altered));
        }
    }
    reports
}

/// Runs baseline + one altered scenario for every chain and returns the
/// reports in chain order.
pub fn run_part(engine: &Engine, setup: &PaperSetup, kind: ScenarioKind) -> Vec<ScenarioReport> {
    let mut jobs = Vec::new();
    for &chain in &Chain::ALL {
        jobs.push(Job::scenario_baseline(setup, chain, kind));
        jobs.push(Job::scenario(setup, chain, kind));
    }
    let results = engine.run(jobs);
    Chain::ALL
        .iter()
        .enumerate()
        .map(|(i, &chain)| report_from_runs(chain, kind, &results[2 * i], &results[2 * i + 1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RunConfig {
        RunConfig::quick(7)
    }

    #[test]
    fn cache_key_is_stable() {
        let material = format!("chain=Aptos|cores=1.0|{:?}", config());
        assert_eq!(cache_key(&material, "v1"), cache_key(&material, "v1"));
    }

    #[test]
    fn cache_key_covers_every_field() {
        let base = config();
        let base_key = cache_key(&format!("chain=Aptos|cores=1.0|{base:?}"), "v1");
        // Any change to any RunConfig field must change the Debug form
        // and therefore the key.
        let variants: Vec<RunConfig> = vec![
            RunConfig {
                n: base.n + 1,
                ..base.clone()
            },
            RunConfig {
                // Derive the perturbed seed the way every replicated
                // campaign does, not with ad-hoc arithmetic.
                seed: stabl_stats::SeedSequence::new(base.seed).seed(1),
                ..base.clone()
            },
            RunConfig {
                horizon: base.horizon + stabl_sim::SimDuration::from_secs(1),
                ..base.clone()
            },
            RunConfig {
                client_mode: stabl::ClientMode::credence(3),
                ..base.clone()
            },
            RunConfig {
                faults: stabl::FaultSchedule::crash(
                    vec![stabl_sim::NodeId::new(9)],
                    stabl_sim::SimTime::from_secs(10),
                ),
                ..base.clone()
            },
            RunConfig {
                byzantine: stabl::ByzantineSpec::new(
                    [stabl_sim::NodeId::new(9)],
                    stabl::ByzantineBehavior::Equivocate,
                ),
                ..base.clone()
            },
            RunConfig {
                byzantine_rpc: vec![stabl_sim::NodeId::new(2)],
                ..base.clone()
            },
            RunConfig {
                retry: Some(stabl::RetryPolicy::standard()),
                ..base.clone()
            },
            RunConfig {
                stall_grace: base.stall_grace + stabl_sim::SimDuration::from_secs(1),
                ..base.clone()
            },
            RunConfig {
                model_contention: true,
                ..base.clone()
            },
            RunConfig {
                workload: stabl::WorkloadSpec::production(
                    base.workload.end,
                    stabl::TrafficModel::production(900, 4),
                ),
                ..base.clone()
            },
        ];
        for variant in &variants {
            let key = cache_key(&format!("chain=Aptos|cores=1.0|{variant:?}"), "v1");
            assert_ne!(
                key, base_key,
                "field change must change the key: {variant:?}"
            );
        }
        // The non-config key inputs matter too.
        let material = format!("chain=Aptos|cores=1.0|{base:?}");
        assert_ne!(
            cache_key(&format!("chain=Solana|cores=1.0|{base:?}"), "v1"),
            base_key
        );
        assert_ne!(
            cache_key(&format!("chain=Aptos|cores=2.0|{base:?}"), "v1"),
            base_key
        );
        assert_ne!(cache_key(&material, "v2"), base_key);
    }

    #[test]
    fn cache_key_distinguishes_link_fault_probabilities() {
        // Two cells identical except for one LinkFault probability must
        // hash to different cache keys: the Debug form of the schedule
        // carries the full adversity config.
        let base = config();
        let cell = |drop_p: f64| RunConfig {
            faults: stabl::FaultSchedule::link_degrade(
                stabl::LinkFault::all().with_drop(drop_p),
                stabl_sim::SimTime::from_secs(5),
                stabl_sim::SimTime::from_secs(15),
            ),
            ..base.clone()
        };
        let a = cell(0.05);
        let b = cell(0.06);
        let key_a = cache_key(&format!("chain=Aptos|cores=1.0|{a:?}"), "v1");
        let key_b = cache_key(&format!("chain=Aptos|cores=1.0|{b:?}"), "v1");
        assert_ne!(key_a, key_b);
    }

    #[test]
    fn campaign_matrix_shape() {
        let cells = campaign_cells();
        assert_eq!(cells.len(), Chain::ALL.len() * CELLS_PER_CHAIN);
        for chunk in cells.chunks(CELLS_PER_CHAIN) {
            assert_eq!(chunk[0].kind, ScenarioKind::Baseline);
            assert_eq!(chunk[0].cores, 1.0);
            assert_eq!(chunk[1].kind, ScenarioKind::Baseline);
            assert_eq!(chunk[1].cores, 2.0);
            assert_eq!(chunk[2].kind, ScenarioKind::Crash);
            assert_eq!(chunk[5].kind, ScenarioKind::SecureClient);
            assert_eq!(chunk[5].cores, 2.0);
        }
    }
}
