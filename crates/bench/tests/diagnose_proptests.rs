//! Property tests for the diagnosis subsystem (`stabl::diagnose`).
//!
//! Two load-bearing properties:
//!
//! 1. **Frames are capture-level independent.** The Full==Off guarantee
//!    (tracing observes, never steers) extends to the metrics pipeline:
//!    a run's serialised `RunResult` is identical whether it was traced
//!    or not, and the gauge series plus every non-bulky frame counter of
//!    a timeline built from an `Events`-level trace equal the ones built
//!    from a `Full`-level trace (only the per-message counters, which
//!    `Events` deliberately does not record, may differ).
//! 2. **Timeline merge is associative and order-insensitive.** Folding
//!    per-chunk timelines in any grouping or order equals the one-shot
//!    timeline over the concatenated event stream, bit-for-bit — the
//!    same contract the stats sketches give the replication engine.

use proptest::prelude::*;

use stabl::diagnose::{timeline_jsonl, MetricsTimeline};
use stabl::{CaptureLevel, Chain, PaperSetup, ScenarioKind, SimEvent};
use stabl_bench::engine::scenario_cores;
use stabl_sim::{EventCounters, NodeId, SimDuration, SimTime, TimedEvent};

const METRICS: [&str; 3] = ["mempool_depth", "round", "connections"];

/// A synthetic gauge stream: `(time_ms, node, metric_idx, value)`.
fn gauge_stream() -> impl Strategy<Value = Vec<(u64, u32, usize, u64)>> {
    proptest::collection::vec(
        (0u64..10_000, 0u32..5, 0usize..METRICS.len(), 0u64..1_000),
        0..80,
    )
}

fn trace_of(events: Vec<TimedEvent>) -> stabl::RunTrace {
    stabl::RunTrace {
        capture: CaptureLevel::Events,
        n: 5,
        horizon: SimTime::from_secs(10),
        events,
        counters: EventCounters::default(),
        dropped_events: 0,
    }
}

fn timed_gauges(samples: &[(u64, u32, usize, u64)], seq_base: u64) -> Vec<TimedEvent> {
    samples
        .iter()
        .enumerate()
        .map(|(i, &(t_ms, node, metric, value))| TimedEvent {
            time: SimTime::from_millis(t_ms),
            seq: seq_base + i as u64,
            event: SimEvent::Gauge {
                node: NodeId::new(node),
                metric: METRICS[metric],
                value,
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chunked folds equal the one-shot timeline bit-for-bit, for any
    /// split points, any grouping and either merge order.
    #[test]
    fn timeline_merge_is_associative_and_order_insensitive(
        samples in gauge_stream(),
        cut_a in 0usize..80,
        cut_b in 0usize..80,
    ) {
        let cadence = SimDuration::from_secs(1);
        let i = cut_a.min(samples.len());
        let j = cut_b.min(samples.len()).max(i);
        // Sequence numbers are globally unique across chunks, exactly as
        // one recorder would have assigned them.
        let events = timed_gauges(&samples, 0);
        let one_shot = MetricsTimeline::from_trace(&trace_of(events.clone()), cadence);
        let a = MetricsTimeline::from_trace(&trace_of(events[..i].to_vec()), cadence);
        let b = MetricsTimeline::from_trace(&trace_of(events[i..j].to_vec()), cadence);
        let c = MetricsTimeline::from_trace(&trace_of(events[j..].to_vec()), cadence);

        // ((a ⊕ b) ⊕ c) — the left-fold a replicated campaign would do.
        let mut left = a.clone();
        left.merge(&b).map_err(|e| TestCaseError::fail(e.clone()))?;
        left.merge(&c).map_err(|e| TestCaseError::fail(e.clone()))?;
        // (a ⊕ (b ⊕ c)) — regrouped.
        let mut bc = b.clone();
        bc.merge(&c).map_err(|e| TestCaseError::fail(e.clone()))?;
        let mut right = a.clone();
        right.merge(&bc).map_err(|e| TestCaseError::fail(e.clone()))?;
        // ((c ⊕ b) ⊕ a) — fully reversed.
        let mut reversed = c.clone();
        reversed.merge(&b).map_err(|e| TestCaseError::fail(e.clone()))?;
        reversed.merge(&a).map_err(|e| TestCaseError::fail(e.clone()))?;

        prop_assert_eq!(&left, &right, "merge must be associative");
        prop_assert_eq!(&left, &reversed, "merge must be order-insensitive");
        prop_assert_eq!(&left, &one_shot, "chunked fold must equal the one-shot timeline");
        prop_assert_eq!(
            timeline_jsonl(&left),
            timeline_jsonl(&one_shot),
            "and serialise to identical bytes"
        );
    }

    /// Tracing never steers, and the metrics frames do not depend on
    /// the capture level beyond what each level records: gauges and all
    /// non-bulky counters agree between `Events` and `Full` timelines.
    #[test]
    fn frames_are_capture_level_independent(
        seed in 0u64..1_000,
        chain_idx in 0usize..5,
        kind_idx in 0usize..4,
    ) {
        let chain = Chain::ALL[chain_idx];
        let kind = ScenarioKind::ALTERED[kind_idx];
        let config = PaperSetup::quick(8, seed).run_config(chain, kind);
        let cores = scenario_cores(kind);

        let untraced = chain.run_with_cpu(&config, cores);
        let events = chain.run_traced_with_cpu(&config, cores, CaptureLevel::Events);
        let full = chain.run_traced_with_cpu(&config, cores, CaptureLevel::Full);

        // Full == Off at the result level: tracing observed, never steered.
        let json_off = serde_json::to_string(&untraced)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let json_events = serde_json::to_string(&events.result)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let json_full = serde_json::to_string(&full.result)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&json_off, &json_events, "Events capture steered the run");
        prop_assert_eq!(&json_off, &json_full, "Full capture steered the run");

        // Ring eviction would make the oldest frames under-count and void
        // the comparison; the quick 8 s runs stay well under the cap.
        prop_assert_eq!(events.trace.dropped_events, 0);
        prop_assert_eq!(full.trace.dropped_events, 0);

        let cadence = SimDuration::from_secs(1);
        let from_events = MetricsTimeline::from_trace(&events.trace, cadence);
        let from_full = MetricsTimeline::from_trace(&full.trace, cadence);
        prop_assert_eq!(from_events.frames.len(), from_full.frames.len());
        prop_assert_eq!(from_events.n, from_full.n);

        for (fe, ff) in from_events.frames.iter().zip(&from_full.frames) {
            // Gauge series must agree exactly — up to the recorder
            // sequence numbers, which count bulky events too at Full.
            let strip = |frame: &stabl::diagnose::MetricsFrame| {
                let mut gauges = frame.gauges.clone();
                for g in &mut gauges {
                    g.last_seq = 0;
                }
                gauges
            };
            prop_assert_eq!(
                strip(fe),
                strip(ff),
                "gauges diverged in frame {}",
                fe.index
            );
            // Every counter except the per-message ones (only recorded
            // at Full) must agree.
            let mut ce = fe.counts.clone();
            let mut cf = ff.counts.clone();
            ce.sent = 0;
            cf.sent = 0;
            ce.delivered = 0;
            cf.delivered = 0;
            ce.dropped = 0;
            cf.dropped = 0;
            prop_assert_eq!(ce, cf, "non-bulky counts diverged in frame {}", fe.index);
        }
    }
}
