//! Replays the committed adversary corpus.
//!
//! Every `results/adversary/corpus/<chain>.json` entry is a shrunk
//! worst-case reproducer discovered by `ext_adversary`. This test
//! rebuilds each entry's exact campaign config from its recorded
//! `(horizon_secs, seed)`, reruns baseline and schedule from scratch
//! (no cache), and asserts the committed fitness still reproduces —
//! so a protocol change that quietly fixes (or worsens) a discovered
//! weakness shows up as a diff against the corpus, not silence.

use std::fs;
use std::path::PathBuf;

use stabl::{Chain, PaperSetup, ScenarioKind};
use stabl_adversary::{fitness_of, CorpusEntry};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/adversary/corpus")
}

fn load_corpus() -> Vec<CorpusEntry> {
    let dir = corpus_dir();
    let mut entries: Vec<CorpusEntry> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read corpus dir {}: {e}", dir.display()))
        .filter_map(|f| f.ok())
        .filter(|f| f.path().extension().is_some_and(|ext| ext == "json"))
        .map(|f| {
            let text = fs::read_to_string(f.path()).expect("read corpus entry");
            serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("parse {}: {e}", f.path().display()))
        })
        .collect();
    entries.sort_by(|a, b| a.chain.cmp(&b.chain));
    entries
}

fn chain_named(name: &str) -> Chain {
    Chain::ALL
        .into_iter()
        .find(|c| c.name() == name)
        .unwrap_or_else(|| panic!("corpus names unknown chain {name}"))
}

#[test]
fn corpus_is_complete_and_minimal() {
    let entries = load_corpus();
    assert_eq!(
        entries.len(),
        Chain::ALL.len(),
        "one corpus entry per chain"
    );
    for entry in &entries {
        chain_named(&entry.chain);
        let setup = PaperSetup::quick(entry.horizon_secs, entry.seed);
        // Minimality and validity: at most three actions, all within
        // the node count and horizon the entry claims.
        assert!(
            entry.genome.actions.len() <= 3,
            "{}: shrunk reproducer has {} actions",
            entry.chain,
            entry.genome.actions.len()
        );
        entry
            .genome
            .schedule()
            .validate_within(setup.n, setup.horizon)
            .unwrap_or_else(|e| panic!("{}: corpus schedule invalid: {e}", entry.chain));
        assert_eq!(
            entry.file_name(),
            format!("{}.json", entry.chain.to_lowercase())
        );
        // The recorded discovery must have cleared the paper bar on at
        // least the shrunk form's own claim: when the search beat the
        // paper's worst scenario, shrinking preserved that.
        let objective = entry.objective;
        if entry.discovered.key(objective) > entry.paper_worst_key {
            assert!(
                entry.fitness.key(objective) > entry.paper_worst_key,
                "{}: shrunk key fell to or below the paper's worst",
                entry.chain
            );
        }
    }
}

#[test]
fn corpus_entries_replay_to_their_recorded_fitness() {
    for entry in load_corpus() {
        let chain = chain_named(&entry.chain);
        let setup = PaperSetup::quick(entry.horizon_secs, entry.seed);
        let base = setup.run_config(chain, ScenarioKind::Baseline);
        let baseline = chain.run_with_cpu(&base, 1.0);

        let mut altered = base.clone();
        altered.faults = entry.genome.schedule();
        altered.byzantine = entry.genome.byzantine_spec();
        let run = chain.run_with_cpu(&altered, 1.0);

        let replayed = fitness_of(&baseline, &run);
        assert_eq!(
            replayed, entry.fitness,
            "{}: committed corpus fitness no longer reproduces",
            entry.chain
        );
    }
}
