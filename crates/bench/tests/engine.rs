//! Integration tests for the campaign engine: parallel execution must
//! be observationally identical to serial execution, and the on-disk
//! cache must replay runs bit-for-bit without re-simulating.

use std::fs;
use std::path::PathBuf;

use stabl::report::ScenarioReport;
use stabl::{report_from_runs, Chain, PaperSetup, ScenarioKind};
use stabl_bench::{CampaignCell, Engine, Job};

/// The two fastest chains are enough to exercise the matrix.
const CHAINS: [Chain; 2] = [Chain::Redbelly, Chain::Solana];

fn quick_setup() -> PaperSetup {
    PaperSetup::quick(20, 42)
}

/// Expands and assembles the campaign for a chain subset, mirroring
/// `engine::run_campaign`.
fn campaign(engine: &Engine, setup: &PaperSetup) -> Vec<ScenarioReport> {
    let cells: Vec<CampaignCell> = stabl_bench::engine::campaign_cells()
        .into_iter()
        .filter(|cell| CHAINS.contains(&cell.chain))
        .collect();
    let per_chain = stabl_bench::engine::CELLS_PER_CHAIN;
    let results = engine.run(cells.iter().map(|cell| cell.job(setup)).collect());
    let mut reports = Vec::new();
    for (i, &chain) in CHAINS.iter().enumerate() {
        let base = &results[i * per_chain];
        let base_8vcpu = &results[i * per_chain + 1];
        for (j, kind) in ScenarioKind::ALTERED.into_iter().enumerate() {
            let altered = &results[i * per_chain + 2 + j];
            let reference = if kind == ScenarioKind::SecureClient {
                base_8vcpu
            } else {
                base
            };
            reports.push(report_from_runs(chain, kind, reference, altered));
        }
    }
    reports
}

/// A unique scratch directory for one test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("stabl-engine-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn parallel_and_serial_campaigns_are_identical() {
    let setup = quick_setup();
    let serial = campaign(&Engine::new(1, None), &setup);
    let parallel = campaign(&Engine::new(4, None), &setup);
    assert_eq!(serial.len(), CHAINS.len() * ScenarioKind::ALTERED.len());
    // ScenarioReport carries floats end to end; the runs are
    // deterministic, so the reports must match exactly, not loosely.
    assert_eq!(serial, parallel);
}

#[test]
fn warm_cache_replays_without_running() {
    let scratch = Scratch::new("warm");
    let setup = quick_setup();
    let engine = Engine::new(2, Some(scratch.0.clone()));
    let jobs = || {
        CHAINS
            .iter()
            .map(|&chain| Job::scenario(&setup, chain, ScenarioKind::Crash))
            .collect::<Vec<Job>>()
    };
    let (cold, cold_summary) = engine.run_all(jobs());
    assert_eq!(cold_summary.cache_hits, 0);
    assert_eq!(cold_summary.executed, CHAINS.len());

    let (warm, warm_summary) = engine.run_all(jobs());
    assert_eq!(
        warm_summary.cache_hits,
        CHAINS.len(),
        "second pass must be 100% cached"
    );
    assert_eq!(warm_summary.executed, 0);
    for (fresh, cached) in cold.iter().zip(&warm) {
        assert_eq!(fresh.latencies, cached.latencies);
        assert_eq!(fresh.commit_times, cached.commit_times);
        assert_eq!(fresh.submitted, cached.submitted);
        assert_eq!(fresh.unresolved, cached.unresolved);
        assert_eq!(fresh.lost_liveness, cached.lost_liveness);
        assert_eq!(fresh.panics, cached.panics);
        assert_eq!(fresh.stats, cached.stats);
        assert_eq!(fresh.horizon, cached.horizon);
    }
}

#[test]
fn corrupt_cache_entries_are_recomputed() {
    let scratch = Scratch::new("corrupt");
    let setup = quick_setup();
    let engine = Engine::new(1, Some(scratch.0.clone()));
    let job = || vec![Job::scenario(&setup, Chain::Solana, ScenarioKind::Baseline)];
    let (fresh, _) = engine.run_all(job());
    // Truncate every cache entry; the engine must fall back to running.
    for entry in fs::read_dir(&scratch.0).expect("cache dir") {
        fs::write(entry.expect("entry").path(), "{not json").expect("corrupt");
    }
    let (recomputed, summary) = engine.run_all(job());
    assert_eq!(
        summary.cache_hits, 0,
        "corrupt entries must not count as hits"
    );
    assert_eq!(fresh[0].latencies, recomputed[0].latencies);
}

#[test]
fn no_cache_engine_leaves_no_files() {
    let scratch = Scratch::new("disabled");
    let setup = quick_setup();
    let engine = Engine::new(1, None);
    let _ = engine.run(vec![Job::scenario(
        &setup,
        Chain::Redbelly,
        ScenarioKind::Baseline,
    )]);
    assert!(!scratch.0.exists());
}
