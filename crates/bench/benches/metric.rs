//! Criterion micro-benchmarks of the sensitivity metric machinery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use stabl::metrics::{Ecdf, Sensitivity, ThroughputSeries};
use stabl_sim::{DetRng, SimTime};

fn samples(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = DetRng::new(seed);
    (0..n).map(|_| rng.next_f64() * 10.0 + 0.2).collect()
}

fn bench_metric(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric");
    for &n in &[1_000usize, 80_000] {
        group.bench_function(format!("ecdf_build/{n}"), |b| {
            let data = samples(n, 7);
            b.iter_batched(
                || data.clone(),
                |data| Ecdf::new(data).expect("valid"),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("sensitivity/{n}"), |b| {
            let base = Ecdf::new(samples(n, 7)).expect("valid");
            let alt = Ecdf::new(samples(n, 8)).expect("valid");
            b.iter(|| Sensitivity::from_ecdfs(&base, &alt));
        });
        group.bench_function(format!("supercumulative_100ms/{n}"), |b| {
            let e = Ecdf::new(samples(n, 9)).expect("valid");
            b.iter(|| e.supercumulative(0.1));
        });
        group.bench_function(format!("throughput_series/{n}"), |b| {
            let mut rng = DetRng::new(10);
            let times: Vec<SimTime> = (0..n)
                .map(|_| SimTime::from_micros(rng.next_below(400_000_000)))
                .collect();
            b.iter(|| {
                ThroughputSeries::from_commit_times(times.iter().copied(), SimTime::from_secs(400))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_metric);
criterion_main!(benches);
