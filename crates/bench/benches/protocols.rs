//! Criterion micro-benchmarks of the protocol building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use stabl_sim::NodeId;
use stabl_types::{AccountId, AccountPool, Hash32, Ledger, Transaction};

fn bench_protocol_blocks(c: &mut Criterion) {
    c.bench_function("sha256/1KiB", |b| {
        let data = vec![0xA5u8; 1024];
        b.iter(|| Hash32::digest(&data));
    });

    c.bench_function("transaction/build_and_hash", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            Transaction::transfer(AccountId::new(1), nonce, AccountId::new(2), 5)
        });
    });

    c.bench_function("ledger/apply_1000", |b| {
        let txs: Vec<Transaction> = (0..1000)
            .map(|n| Transaction::transfer(AccountId::new(0), n, AccountId::new(1), 1))
            .collect();
        b.iter(|| {
            let mut ledger = Ledger::with_uniform_balance(2, 1_000_000);
            for tx in &txs {
                ledger.apply(tx).expect("sequential nonces apply");
            }
            ledger.executed()
        });
    });

    c.bench_function("account_pool/insert_take_1000", |b| {
        let txs: Vec<Transaction> = (0..1000)
            .map(|n| {
                Transaction::transfer(
                    AccountId::new((n % 20) as u32),
                    n / 20,
                    AccountId::new(99),
                    1,
                )
            })
            .collect();
        b.iter(|| {
            let mut pool = AccountPool::new(4096);
            for tx in &txs {
                pool.insert(*tx);
            }
            pool.take_ready(1000).len()
        });
    });

    c.bench_function("sortition/draw_committee_of_10", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round = (round + 1) % 1_000_000;
            stabl_algorand::sortition::best_proposer(7, round, 0, 10, 300)
        });
    });

    c.bench_function("solana/leader_schedule_slot", |b| {
        let schedule = stabl_solana::EpochSchedule::warmup();
        let mut slot = 0u64;
        b.iter(|| {
            // Stay inside a realistic slot range: epoch lookup cost
            // grows with the slot number.
            slot = (slot + 1) % 1_000_000;
            stabl_solana::schedule::leader_for(7, &schedule, slot, 10)
        });
    });

    c.bench_function("redbelly/binary_consensus_4_nodes", |b| {
        use stabl_redbelly::{BinaryAction, BinaryInstance};
        b.iter(|| {
            let mut instances: Vec<BinaryInstance> =
                (0..4).map(|_| BinaryInstance::new(4, 1)).collect();
            let mut queue: Vec<(usize, BinaryAction)> = Vec::new();
            for (i, inst) in instances.iter_mut().enumerate() {
                for a in inst.start(NodeId::new(i as u32), i % 2 == 0) {
                    queue.push((i, a));
                }
            }
            while let Some((from, action)) = queue.pop() {
                let mut new_actions = Vec::new();
                for (to, inst) in instances.iter_mut().enumerate() {
                    if to == from {
                        continue;
                    }
                    let out = match action {
                        BinaryAction::Echo { round, value } => inst.on_echo(
                            NodeId::new(to as u32),
                            NodeId::new(from as u32),
                            round,
                            value,
                        ),
                        BinaryAction::Decide(v) => inst.on_decide(v),
                    };
                    new_actions.extend(out.into_iter().map(|a| (to, a)));
                }
                queue.extend(new_actions);
            }
            instances[0].decision()
        });
    });

    c.bench_function("avalanche/snowball_poll", |b| {
        use stabl_avalanche::Snowball;
        let votes = vec![Hash32::digest(b"winner"); 8];
        b.iter(|| {
            let mut sb = Snowball::new(7, 5);
            for _ in 0..5 {
                sb.record_poll(&votes);
            }
            sb.decision()
        });
    });
}

criterion_group!(benches, bench_protocol_blocks);
criterion_main!(benches);
