//! Criterion benchmarks of the simulation kernel and of short end-to-end
//! chain runs (simulated seconds per wall second).
//!
//! Five groups:
//!
//! * `kernel` — the headline chatty-protocol run (10 nodes broadcasting
//!   on 10 ms timers for one simulated second).
//! * `agenda` — the calendar-queue agenda in isolation, at three event
//!   horizon distributions: near (inside the bucket ring), far (mostly
//!   in the overflow tier) and burst (many events per bucket).
//! * `timers` — timer churn with heavy cancellation, stressing the
//!   generation-stamped timer registry and stale agenda slots.
//! * `fanout` — broadcast cost as the cluster grows (n ∈ {10, 50, 100}).
//! * `chains_10s_baseline` — the five paper chains end to end.
//!
//! The workloads live in [`stabl_bench::speed_bench`] and are shared
//! with the `ext_speed` binary, so `BENCH_speed.json` tracks exactly
//! these code paths.

use criterion::{criterion_group, criterion_main, Criterion};
use stabl::{Chain, RunConfig};
use stabl_bench::speed_bench::{agenda_round_trip, event_times, Chatty, Churny};
use stabl_sim::{SimTime, Simulation};

fn bench_agenda(c: &mut Criterion) {
    let mut group = c.benchmark_group("agenda");
    // 10k events inside the bucket ring (64 ms ≪ ring span).
    let near = event_times(10_000, 64_000, 7);
    // 10k events across 10 s: the bulk lands in the far (BTreeMap) tier
    // and migrates into the ring as the cursor advances.
    let far = event_times(10_000, 10_000_000, 7);
    // 10k events over just 32 distinct times: long per-bucket vectors,
    // exercising the sorted in-bucket insert path.
    let burst: Vec<u64> = event_times(10_000, 32, 7)
        .into_iter()
        .map(|t| t * 1_000)
        .collect();
    group.bench_function("push_pop_near_10k", |b| {
        b.iter(|| agenda_round_trip(&near));
    });
    group.bench_function("push_pop_far_10k", |b| {
        b.iter(|| agenda_round_trip(&far));
    });
    group.bench_function("push_pop_burst_10k", |b| {
        b.iter(|| agenda_round_trip(&burst));
    });
    group.finish();
}

fn bench_timers(c: &mut Criterion) {
    let mut group = c.benchmark_group("timers");
    group.bench_function("churn_cancel_7of8_10nodes_1s", |b| {
        b.iter(|| {
            let mut sim = Simulation::<Churny>::new(10, 42, ());
            sim.run_until(SimTime::from_secs(1));
            sim.stats().timers_stale
        });
    });
    group.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("fanout");
    group.sample_size(10);
    for &(n, millis) in &[(10usize, 400u64), (50, 200), (100, 100)] {
        group.bench_function(format!("broadcast_{n}nodes_{millis}ms"), |b| {
            b.iter(|| {
                let mut sim = Simulation::<Chatty>::new(n, 42, ());
                sim.run_until(SimTime::from_millis(millis));
                sim.stats().messages_delivered
            });
        });
    }
    group.finish();
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel/chatty_10nodes_1s", |b| {
        b.iter(|| {
            let mut sim = Simulation::<Chatty>::new(10, 42, ());
            sim.run_until(SimTime::from_secs(1));
            sim.stats().messages_delivered
        });
    });

    let mut group = c.benchmark_group("chains_10s_baseline");
    group.sample_size(10);
    for &chain in &Chain::ALL {
        group.bench_function(chain.name(), |b| {
            b.iter(|| {
                let mut config = RunConfig::quick(42);
                config.horizon = SimTime::from_secs(10);
                config.workload.end = SimTime::from_secs(8);
                chain.run(&config).latencies.len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel,
    bench_agenda,
    bench_timers,
    bench_fanout
);
criterion_main!(benches);
