//! Criterion benchmarks of the simulation kernel and of short end-to-end
//! chain runs (simulated seconds per wall second).

use criterion::{criterion_group, criterion_main, Criterion};
use stabl::{Chain, RunConfig};
use stabl_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime, Simulation};

/// A chatty protocol stressing the event queue: every node broadcasts on
/// a 10 ms timer.
struct Chatty;
impl Protocol for Chatty {
    type Msg = u64;
    type Request = u64;
    type Commit = u64;
    type Timer = ();
    type Config = ();
    fn new(_: NodeId, _: usize, _: &(), ctx: &mut Ctx<'_, Self>) -> Self {
        ctx.set_timer(SimDuration::from_millis(10), ());
        Chatty
    }
    fn on_message(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, Self>) {}
    fn on_timer(&mut self, _: (), ctx: &mut Ctx<'_, Self>) {
        ctx.broadcast(1);
        ctx.set_timer(SimDuration::from_millis(10), ());
    }
    fn on_request(&mut self, _: u64, _: &mut Ctx<'_, Self>) {}
    fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel/chatty_10nodes_1s", |b| {
        b.iter(|| {
            let mut sim = Simulation::<Chatty>::new(10, 42, ());
            sim.run_until(SimTime::from_secs(1));
            sim.stats().messages_delivered
        });
    });

    let mut group = c.benchmark_group("chains_10s_baseline");
    group.sample_size(10);
    for &chain in &Chain::ALL {
        group.bench_function(chain.name(), |b| {
            b.iter(|| {
                let mut config = RunConfig::quick(42);
                config.horizon = SimTime::from_secs(10);
                config.workload.end = SimTime::from_secs(8);
                chain.run(&config).latencies.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
