//! The kernel's fast event agenda and its allocation arenas.
//!
//! Three structures replace the seed kernel's `BinaryHeap<Scheduled>` +
//! `BTreeSet` tombstone set:
//!
//! * [`Agenda`] — a calendar-queue / timer-wheel hybrid priority queue
//!   with amortised O(1) push and pop for the event-horizon
//!   distributions a discrete-event simulation produces (most events
//!   land within a network round-trip or a protocol timeout of *now*).
//! * [`MsgArena`] (crate-private) — a refcounted slab for in-flight
//!   message payloads, so an `n`-way broadcast stores its payload once
//!   and clones lazily per delivery instead of eagerly per recipient.
//! * [`TimerRegistry`] (crate-private) — generation-stamped timer
//!   slots, so cancelling a timer is an O(1) slot invalidation instead
//!   of a tombstone-set insertion, and stale [`TimerId`]s from before a
//!   slot was reused can never alias a live timer.
//!
//! # Ordering invariant
//!
//! The agenda pops events in strictly ascending `(time, seq)` order,
//! where `seq` is a global insertion counter: ties on simulated time
//! dispatch in schedule order. This is byte-for-byte the order the old
//! `BinaryHeap` agenda produced (its `Ord` reversed `(time, seq)`), so
//! every artifact downstream of the kernel — commit logs, stats,
//! traces, campaign JSON — is unchanged by the swap. An equivalence
//! property test in this module drives both agendas with arbitrary
//! interleaved push/pop schedules and asserts identical pop sequences.
//!
//! # How the calendar queue works
//!
//! Simulated time (integer microseconds) is divided into buckets of
//! [`BUCKET_WIDTH_MICROS`]. Three tiers hold pending events:
//!
//! * `current` — every pending event in buckets *before* the ring
//!   cursor, kept sorted descending by `(time, seq)`: the global
//!   minimum is the last element, so popping is O(1) and in-order
//!   refills cost one `sort_unstable` per bucket.
//! * `ring` — [`RING_BUCKETS`] bucket slots covering the next
//!   `RING_BUCKETS × BUCKET_WIDTH_MICROS` of simulated time (≈ 1 s),
//!   indexed `bucket mod RING_BUCKETS`, with a word-level occupancy
//!   bitmap so the next non-empty bucket is found by bit scanning.
//!   Buckets are drained in place and keep their capacity, so after
//!   warm-up the steady state allocates nothing per event.
//! * `far` — an ordered map of whole buckets beyond the ring window
//!   (long timeouts, end-of-run fault windows). Far buckets migrate
//!   into the ring wholesale as the cursor advances, so each event
//!   pays at most one extra hop regardless of how far ahead it was
//!   scheduled.
//!
//! A pop drains `current`; when it empties, the next non-empty bucket
//! (ring first, then far) is located and its entries are moved into
//! `current` in one batch — for a ring bucket, a plain `mem::swap` of
//! the two vectors, so no element is copied. Pushing an event whose
//! bucket the cursor already passed (only possible for events at the
//! current instant) inserts directly into `current` by binary search,
//! which keeps the order exact.
//!
//! Event payloads sit inline in the tier vectors next to their
//! `(time, seq)` key; messages — the payloads that fan out — are held
//! once in the [`MsgArena`] slab and travel as 4-byte handles.

use std::collections::BTreeMap;

use crate::protocol::TimerId;

/// Width of one calendar bucket in microseconds (2^8 = 256 µs).
pub const BUCKET_WIDTH_MICROS: u64 = 1 << BUCKET_BITS;

const BUCKET_BITS: u32 = 8;
/// Number of ring buckets (the near window covers ≈ 1.05 s).
pub const RING_BUCKETS: usize = 1024;
const RING_WORDS: usize = RING_BUCKETS / 64;
/// Free-list terminator for the [`MsgArena`] slab.
const NO_SLOT: u32 = u32::MAX;

/// A calendar-queue priority queue over `(time, seq)`-ordered events.
///
/// `seq` is assigned internally from a monotone insertion counter, so
/// two events at the same simulated time pop in push order. See the
/// [module docs](self) for the structure and the ordering invariant.
///
/// # Examples
///
/// ```
/// use stabl_sim::Agenda;
///
/// let mut agenda: Agenda<&'static str> = Agenda::new();
/// agenda.push(2_000_000, "later");
/// agenda.push(1_000, "sooner");
/// agenda.push(1_000, "tied: pushed second, pops second");
/// assert_eq!(agenda.peek_time(), Some(1_000));
/// assert_eq!(agenda.pop(), Some((1_000, "sooner")));
/// assert_eq!(agenda.pop(), Some((1_000, "tied: pushed second, pops second")));
/// assert_eq!(agenda.pop(), Some((2_000_000, "later")));
/// assert_eq!(agenda.pop(), None);
/// ```
pub struct Agenda<E> {
    seq: u64,
    /// Every pending event whose bucket the cursor has passed, sorted
    /// descending by `(time, seq)`: the global minimum is the LAST
    /// element whenever this is non-empty.
    current: Vec<Item<E>>,
    ring: Vec<Vec<Item<E>>>,
    occupancy: [u64; RING_WORDS],
    /// Absolute bucket index: buckets `< cursor` live in `current`,
    /// buckets in `[cursor, cursor + RING_BUCKETS)` in the ring, later
    /// buckets in `far`.
    cursor: u64,
    far: BTreeMap<u64, Vec<Item<E>>>,
    /// Recycled bucket buffers. As the cursor sweeps the ring, each
    /// drained bucket's buffer is parked here and handed to the next
    /// bucket that needs one, so the number of live allocations tracks
    /// the number of *simultaneously* non-empty buckets (a few dozen)
    /// instead of every ring slot the sweep ever touched.
    spares: Vec<Vec<Item<E>>>,
    len: usize,
}

/// Maximum number of recycled bucket buffers parked in `spares`.
const SPARE_BUFFERS: usize = 32;

/// A scheduled entry: `(time in µs, insertion seq, payload)`.
type Item<E> = (u64, u64, E);

/// Descending `(time, seq)` comparator used to keep `current` sorted
/// with its minimum at the back.
fn newest_first<E>(a: &Item<E>, b: &Item<E>) -> std::cmp::Ordering {
    (b.0, b.1).cmp(&(a.0, a.1))
}

impl<E> Agenda<E> {
    /// An empty agenda starting at time zero.
    pub fn new() -> Agenda<E> {
        Agenda {
            seq: 0,
            current: Vec::new(),
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            occupancy: [0; RING_WORDS],
            cursor: 0,
            far: BTreeMap::new(),
            spares: Vec::new(),
            len: 0,
        }
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at `time` (microseconds), later than every
    /// event already pushed at the same instant.
    pub fn push(&mut self, time: u64, payload: E) {
        let item = (time, self.seq, payload);
        self.seq += 1;
        self.len += 1;
        let bucket = time >> BUCKET_BITS;
        if bucket < self.cursor {
            // Only reachable for events at (or before) the instant the
            // kernel is currently dispatching; a binary-search insert
            // keeps `current` sorted descending so (time, seq) order
            // stays exact. Rare, so the O(n) insert is fine.
            let at = self
                .current
                .partition_point(|k| (k.0, k.1) > (item.0, item.1));
            self.current.insert(at, item);
        } else if bucket - self.cursor < RING_BUCKETS as u64 {
            let idx = bucket as usize & (RING_BUCKETS - 1);
            if self.ring[idx].capacity() == 0 {
                if let Some(spare) = self.spares.pop() {
                    self.ring[idx] = spare;
                }
            }
            self.ring[idx].push(item);
            self.occupancy[idx / 64] |= 1 << (idx % 64);
        } else {
            self.far.entry(bucket).or_default().push(item);
        }
    }

    /// The time of the next event, without popping it.
    pub fn peek_time(&self) -> Option<u64> {
        if let Some(&(time, ..)) = self.current.last() {
            return Some(time);
        }
        if let Some(bucket) = self.next_ring_bucket() {
            let idx = bucket as usize & (RING_BUCKETS - 1);
            return self.ring[idx].iter().map(|item| item.0).min();
        }
        self.far
            .first_key_value()
            .and_then(|(_, items)| items.iter().map(|item| item.0).min())
    }

    /// Pops the earliest event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.refill_current();
        let (time, _seq, payload) = self.current.pop()?;
        self.len -= 1;
        Some((time, payload))
    }

    /// Pops the earliest event if it is due at or before `horizon`
    /// (microseconds).
    ///
    /// After `refill_current`, `current`'s minimum *is* the global
    /// minimum (later buckets hold strictly later times), so the
    /// horizon check needs no second bucket scan.
    pub fn pop_due(&mut self, horizon: u64) -> Option<(u64, E)> {
        self.refill_current();
        let &(time, ..) = self.current.last()?;
        if time > horizon {
            return None;
        }
        let (time, _seq, payload) = self.current.pop()?;
        self.len -= 1;
        Some((time, payload))
    }

    /// Moves the next non-empty bucket's keys into `current` when it
    /// has drained.
    fn refill_current(&mut self) {
        if !self.current.is_empty() || self.len == 0 {
            return;
        }
        if let Some(bucket) = self.next_ring_bucket() {
            let idx = bucket as usize & (RING_BUCKETS - 1);
            self.occupancy[idx / 64] &= !(1 << (idx % 64));
            self.cursor = bucket + 1;
            // `current` is empty here, so swapping the vectors drains
            // the bucket without copying an element, and both buffers
            // keep their capacity: after warm-up the steady state
            // allocates nothing per event. The buffer left behind in
            // the drained slot is parked in `spares` for whichever
            // bucket next needs one.
            std::mem::swap(&mut self.current, &mut self.ring[idx]);
            if self.spares.len() < SPARE_BUFFERS && self.ring[idx].capacity() != 0 {
                let buf = std::mem::take(&mut self.ring[idx]);
                self.spares.push(buf);
            }
            self.current.sort_unstable_by(newest_first);
            self.migrate_far();
        } else if let Some((bucket, items)) = self.far.pop_first() {
            self.cursor = bucket + 1;
            self.current.extend(items);
            self.current.sort_unstable_by(newest_first);
            self.migrate_far();
        }
    }

    /// The lowest occupied ring bucket at or after the cursor, if any.
    fn next_ring_bucket(&self) -> Option<u64> {
        let start = self.cursor as usize & (RING_BUCKETS - 1);
        let start_word = start / 64;
        let start_bit = start % 64;
        // Ring slots map to the window [cursor, cursor + RING_BUCKETS)
        // order-preservingly under circular scan from `start`.
        let masked = self.occupancy[start_word] & (!0u64 << start_bit);
        if masked != 0 {
            let bit = start_word * 64 + masked.trailing_zeros() as usize;
            return Some(self.cursor + (bit - start) as u64);
        }
        for step in 1..=RING_WORDS {
            let word_idx = (start_word + step) % RING_WORDS;
            let mut word = self.occupancy[word_idx];
            if word_idx == start_word {
                // Wrapped back to the first word: only bits below the
                // start belong to the far end of the window.
                word &= (1u64 << start_bit).wrapping_sub(1);
            }
            if word != 0 {
                let bit = word_idx * 64 + word.trailing_zeros() as usize;
                let distance = (bit + RING_BUCKETS - start) % RING_BUCKETS;
                return Some(self.cursor + distance as u64);
            }
        }
        None
    }

    /// Pulls far buckets that entered the ring window after a cursor
    /// advance.
    fn migrate_far(&mut self) {
        let limit = self.cursor.saturating_add(RING_BUCKETS as u64);
        loop {
            let Some((&bucket, _)) = self.far.first_key_value() else {
                return;
            };
            if bucket >= limit {
                return;
            }
            let Some(items) = self.far.remove(&bucket) else {
                return;
            };
            let idx = bucket as usize & (RING_BUCKETS - 1);
            self.occupancy[idx / 64] |= 1 << (idx % 64);
            self.ring[idx].extend(items);
        }
    }
}

impl<E> Default for Agenda<E> {
    fn default() -> Self {
        Agenda::new()
    }
}

impl<E> std::fmt::Debug for Agenda<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agenda")
            .field("len", &self.len)
            .field("cursor", &self.cursor)
            .field("current", &self.current.len())
            .field("far_buckets", &self.far.len())
            .finish()
    }
}

/// A refcounted slab of in-flight message payloads.
///
/// A broadcast inserts its payload once and schedules one lightweight
/// [`MsgRef`] per recipient; the payload is cloned lazily at delivery
/// time (the last reference moves instead of cloning), so messages
/// dropped by partitions, link faults or dead nodes are never copied.
pub(crate) struct MsgArena<M> {
    slots: Vec<ArenaSlot<M>>,
    free_head: u32,
}

enum ArenaSlot<M> {
    Full { msg: M, refs: u32 },
    Free(u32),
}

/// A handle to a payload in the [`MsgArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct MsgRef(u32);

impl<M: Clone> MsgArena<M> {
    pub(crate) fn new() -> MsgArena<M> {
        MsgArena {
            slots: Vec::new(),
            free_head: NO_SLOT,
        }
    }

    /// Stores `msg` with zero references; follow with [`Self::retain`]
    /// per scheduled delivery and [`Self::seal`] once fanout is done.
    pub(crate) fn insert(&mut self, msg: M) -> MsgRef {
        if self.free_head != NO_SLOT {
            let idx = self.free_head as usize;
            if let Some(ArenaSlot::Free(next)) = self.slots.get(idx) {
                self.free_head = *next;
                self.slots[idx] = ArenaSlot::Full { msg, refs: 0 };
                return MsgRef(idx as u32);
            }
        }
        self.slots.push(ArenaSlot::Full { msg, refs: 0 });
        MsgRef((self.slots.len() - 1) as u32)
    }

    /// Adds one scheduled delivery to `handle`.
    pub(crate) fn retain(&mut self, handle: MsgRef) {
        self.retain_n(handle, 1);
    }

    /// Adds `n` scheduled deliveries to `handle` in one slot touch —
    /// the kernel pre-pays a whole fanout, then [`Self::release`]s the
    /// recipients that drop at send time.
    pub(crate) fn retain_n(&mut self, handle: MsgRef, n: u32) {
        if let Some(ArenaSlot::Full { refs, .. }) = self.slots.get_mut(handle.0 as usize) {
            *refs += n;
        }
    }

    /// Frees `handle` if the fanout scheduled no deliveries (everything
    /// was dropped at send time).
    pub(crate) fn seal(&mut self, handle: MsgRef) {
        if let Some(ArenaSlot::Full { refs: 0, .. }) = self.slots.get(handle.0 as usize) {
            self.free(handle.0);
        }
    }

    /// Consumes one reference and yields the payload: a clone while
    /// other deliveries remain, the owned value on the last one.
    pub(crate) fn consume(&mut self, handle: MsgRef) -> Option<M> {
        let idx = handle.0 as usize;
        match self.slots.get_mut(idx) {
            Some(ArenaSlot::Full { msg, refs }) => {
                if *refs > 1 {
                    *refs -= 1;
                    Some(msg.clone())
                } else {
                    match std::mem::replace(&mut self.slots[idx], ArenaSlot::Free(self.free_head)) {
                        ArenaSlot::Full { msg, .. } => {
                            self.free_head = handle.0;
                            Some(msg)
                        }
                        ArenaSlot::Free(prev) => {
                            self.slots[idx] = ArenaSlot::Free(prev);
                            None
                        }
                    }
                }
            }
            _ => None,
        }
    }

    /// Drops one reference without yielding the payload (the delivery
    /// was dropped in flight).
    pub(crate) fn release(&mut self, handle: MsgRef) {
        let idx = handle.0 as usize;
        if let Some(ArenaSlot::Full { refs, .. }) = self.slots.get_mut(idx) {
            if *refs > 1 {
                *refs -= 1;
            } else {
                self.free(handle.0);
            }
        }
    }

    fn free(&mut self, slot: u32) {
        let idx = slot as usize;
        if idx < self.slots.len() {
            self.slots[idx] = ArenaSlot::Free(self.free_head);
            self.free_head = slot;
        }
    }
}

/// Generation-stamped timer slots: O(1) arm, cancel and resolve.
///
/// A [`TimerId`] packs `(generation << 32) | slot`. Cancelling marks
/// the live slot; the pending timer event still pops at its scheduled
/// time and the kernel counts it as a stale fire (exactly the old
/// tombstone-set semantics, preserving [`SimStats::timers_stale`]).
/// Resolving frees the slot and bumps its generation, so a stale
/// [`TimerId`] held by a protocol can never cancel an unrelated timer
/// that reused the slot.
///
/// [`SimStats::timers_stale`]: crate::SimStats::timers_stale
#[derive(Debug, Default)]
pub(crate) struct TimerRegistry {
    slots: Vec<TimerSlot>,
    free: Vec<u32>,
}

#[derive(Clone, Copy, Debug)]
struct TimerSlot {
    generation: u32,
    state: TimerState,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TimerState {
    Armed,
    Cancelled,
    Free,
}

impl TimerRegistry {
    pub(crate) fn new() -> TimerRegistry {
        TimerRegistry::default()
    }

    /// Allocates a live timer slot and mints its handle.
    pub(crate) fn arm(&mut self) -> TimerId {
        if let Some(slot) = self.free.pop() {
            let idx = slot as usize;
            self.slots[idx].state = TimerState::Armed;
            TimerId(pack(self.slots[idx].generation, slot))
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(TimerSlot {
                generation: 0,
                state: TimerState::Armed,
            });
            TimerId(pack(0, slot))
        }
    }

    /// Marks a live timer cancelled; stale or reused handles are
    /// no-ops.
    pub(crate) fn cancel(&mut self, id: TimerId) {
        let (generation, slot) = unpack(id.0);
        if let Some(entry) = self.slots.get_mut(slot as usize) {
            if entry.generation == generation && entry.state == TimerState::Armed {
                entry.state = TimerState::Cancelled;
            }
        }
    }

    /// Resolves a firing timer: frees its slot, bumps the generation
    /// and reports whether the timer had been cancelled.
    pub(crate) fn resolve(&mut self, id: TimerId) -> bool {
        let (generation, slot) = unpack(id.0);
        match self.slots.get_mut(slot as usize) {
            Some(entry) if entry.generation == generation && entry.state != TimerState::Free => {
                let cancelled = entry.state == TimerState::Cancelled;
                entry.state = TimerState::Free;
                entry.generation = entry.generation.wrapping_add(1);
                self.free.push(slot);
                cancelled
            }
            _ => false,
        }
    }
}

fn pack(generation: u32, slot: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(slot)
}

fn unpack(id: u64) -> (u32, u32) {
    ((id >> 32) as u32, id as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut agenda: Agenda<u32> = Agenda::new();
        agenda.push(50, 1);
        agenda.push(10, 2);
        agenda.push(50, 3);
        agenda.push(0, 4);
        assert_eq!(agenda.pop(), Some((0, 4)));
        assert_eq!(agenda.pop(), Some((10, 2)));
        assert_eq!(agenda.pop(), Some((50, 1)));
        assert_eq!(agenda.pop(), Some((50, 3)));
        assert_eq!(agenda.pop(), None);
        assert!(agenda.is_empty());
    }

    #[test]
    fn far_events_migrate_through_the_ring() {
        let mut agenda: Agenda<&str> = Agenda::new();
        // Far beyond the ring window (≈ 1 s): 30 s, 60 s, 45 s.
        agenda.push(30_000_000, "thirty");
        agenda.push(60_000_000, "sixty");
        agenda.push(45_000_000, "forty-five");
        agenda.push(500, "now-ish");
        assert_eq!(agenda.pop(), Some((500, "now-ish")));
        assert_eq!(agenda.pop(), Some((30_000_000, "thirty")));
        // 45 s is still 15 s past the post-jump ring window, so it
        // stays in the far tier; order must hold regardless of tier.
        assert_eq!(agenda.pop(), Some((45_000_000, "forty-five")));
        assert_eq!(agenda.pop(), Some((60_000_000, "sixty")));
        assert_eq!(agenda.pop(), None);
    }

    #[test]
    fn interleaved_pushes_at_the_current_instant_keep_order() {
        let mut agenda: Agenda<u32> = Agenda::new();
        agenda.push(1_000, 0);
        assert_eq!(agenda.pop(), Some((1_000, 0)));
        // The cursor has passed bucket 0; same-instant pushes must
        // still pop, in seq order.
        agenda.push(1_000, 1);
        agenda.push(1_001, 2);
        agenda.push(1_000, 3);
        assert_eq!(agenda.pop(), Some((1_000, 1)));
        assert_eq!(agenda.pop(), Some((1_000, 3)));
        assert_eq!(agenda.pop(), Some((1_001, 2)));
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut agenda: Agenda<u32> = Agenda::new();
        agenda.push(5_000, 1);
        agenda.push(9_000, 2);
        assert_eq!(agenda.pop_due(4_999), None);
        assert_eq!(agenda.pop_due(5_000), Some((5_000, 1)));
        assert_eq!(agenda.pop_due(5_000), None);
        assert_eq!(agenda.len(), 1);
        assert_eq!(agenda.pop_due(u64::MAX), Some((9_000, 2)));
    }

    #[test]
    fn steady_state_buffers_are_bounded() {
        let mut agenda: Agenda<u64> = Agenda::new();
        for round in 0..10u64 {
            for i in 0..100u64 {
                agenda.push(round * 1_000 + i, i);
            }
            for _ in 0..100 {
                assert!(agenda.pop().is_some());
            }
        }
        // 1000 events total, but no tier buffer ever grew past one
        // round's worth of live events (capacity is retained and
        // recycled across bucket refills, never accumulated).
        let largest = agenda
            .ring
            .iter()
            .map(Vec::capacity)
            .chain(std::iter::once(agenda.current.capacity()))
            .max()
            .unwrap_or(0);
        assert!(largest <= 128, "largest tier buffer = {largest}");
    }

    #[test]
    fn peek_time_is_exact_across_tiers() {
        let mut agenda: Agenda<u32> = Agenda::new();
        assert_eq!(agenda.peek_time(), None);
        agenda.push(2_000_000_000, 1); // far tier
        assert_eq!(agenda.peek_time(), Some(2_000_000_000));
        agenda.push(700, 2); // ring tier
        assert_eq!(agenda.peek_time(), Some(700));
        assert_eq!(agenda.pop(), Some((700, 2)));
        agenda.push(800, 3); // current tier (bucket 0 already passed)
        assert_eq!(agenda.peek_time(), Some(800));
    }

    #[test]
    fn msg_arena_clones_lazily_and_moves_last() {
        let mut arena: MsgArena<String> = MsgArena::new();
        let handle = arena.insert("payload".to_owned());
        arena.retain(handle);
        arena.retain(handle);
        arena.retain(handle);
        arena.seal(handle);
        assert_eq!(arena.consume(handle).as_deref(), Some("payload"));
        arena.release(handle); // one delivery dropped in flight
        assert_eq!(arena.consume(handle).as_deref(), Some("payload"));
        // All references consumed: the slot is free and reusable.
        assert_eq!(arena.consume(handle), None);
        let next = arena.insert("reused".to_owned());
        assert_eq!(next.0, handle.0, "slot is recycled");
    }

    #[test]
    fn msg_arena_seal_frees_zero_ref_payloads() {
        let mut arena: MsgArena<u64> = MsgArena::new();
        let handle = arena.insert(7);
        arena.seal(handle); // fanout scheduled nothing
        assert_eq!(arena.consume(handle), None);
    }

    #[test]
    fn timer_registry_generations_prevent_aliasing() {
        let mut reg = TimerRegistry::new();
        let a = reg.arm();
        assert!(!reg.resolve(a), "uncancelled timer resolves clean");
        let b = reg.arm(); // reuses a's slot with a bumped generation
        assert_ne!(a.0, b.0);
        reg.cancel(a); // stale handle: must not touch b
        assert!(!reg.resolve(b));
        let c = reg.arm();
        reg.cancel(c);
        reg.cancel(c); // double-cancel is a no-op
        assert!(reg.resolve(c), "cancelled timer resolves stale");
        assert!(!reg.resolve(c), "double-resolve is a no-op");
    }

    #[test]
    fn handles_times_past_the_ring_in_any_push_order() {
        let mut agenda: Agenda<u64> = Agenda::new();
        let times = [
            3,
            1,
            4,
            1_500_000,
            9_000_000_000,
            2_600,
            535_000,
            89_793,
            2_384_626,
            43,
        ];
        for (i, &t) in times.iter().enumerate() {
            agenda.push(t, i as u64);
        }
        let mut sorted = times;
        sorted.sort_unstable();
        let mut popped = Vec::new();
        while let Some((t, _)) = agenda.pop() {
            popped.push(t);
        }
        assert_eq!(popped, sorted);
    }
}

#[cfg(test)]
mod equivalence_tests {
    use super::Agenda;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The seed kernel's agenda, verbatim: a `BinaryHeap` popping the
    /// smallest `(time, seq)`.
    #[derive(Default)]
    struct HeapModel {
        heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
        seq: u64,
    }

    impl HeapModel {
        fn push(&mut self, time: u64, payload: u64) {
            self.heap.push(Reverse((time, self.seq, payload)));
            self.seq += 1;
        }

        fn pop(&mut self) -> Option<(u64, u64)> {
            self.heap
                .pop()
                .map(|Reverse((time, _, payload))| (time, payload))
        }
    }

    /// One step of an agenda schedule: push at a (possibly far) offset
    /// from the last popped time, or pop a batch.
    #[derive(Clone, Debug)]
    enum Step {
        Push { offset: u64 },
        PopBatch { count: u8 },
    }

    fn step_strategy() -> impl Strategy<Value = Step> {
        prop_oneof![
            // Offsets spanning every tier: sub-bucket, in-ring, far,
            // and extremely far (overflow paths).
            (0u64..2_000).prop_map(|offset| Step::Push { offset }),
            (0u64..2_000_000).prop_map(|offset| Step::Push { offset }),
            (0u64..120_000_000_000).prop_map(|offset| Step::Push { offset }),
            proptest::num::u64::ANY.prop_map(|offset| Step::Push { offset }),
            (1u8..20).prop_map(|count| Step::PopBatch { count }),
            (1u8..20).prop_map(|count| Step::PopBatch { count }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The calendar queue and the old binary heap pop identical
        /// `(time, payload)` sequences for arbitrary interleaved
        /// schedules — the byte-identity of every kernel artifact
        /// reduces to this property.
        #[test]
        fn calendar_queue_matches_binary_heap(
            steps in proptest::collection::vec(step_strategy(), 1..200),
        ) {
            let mut agenda: Agenda<u64> = Agenda::new();
            let mut model = HeapModel::default();
            let mut now = 0u64;
            let mut next_payload = 0u64;
            for step in steps {
                match step {
                    Step::Push { offset } => {
                        // Mirror the kernel: schedule times never
                        // precede the current instant.
                        let time = now.saturating_add(offset);
                        agenda.push(time, next_payload);
                        model.push(time, next_payload);
                        next_payload += 1;
                    }
                    Step::PopBatch { count } => {
                        for _ in 0..count {
                            let got = agenda.pop();
                            let want = model.pop();
                            prop_assert_eq!(got, want);
                            if let Some((time, _)) = got {
                                prop_assert!(time >= now, "time went backwards");
                                now = time;
                            }
                        }
                    }
                }
                prop_assert_eq!(agenda.len(), model.heap.len());
            }
            // Drain both completely: the tails must agree too.
            loop {
                let got = agenda.pop();
                let want = model.pop();
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
