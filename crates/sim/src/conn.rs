//! Peer connection tracking with idle timeouts and dial backoff.
//!
//! Real validators talk over TCP connections managed by a network stack:
//! when a peer goes silent the connection is torn down after an idle
//! timeout, and reconnection attempts are retried with (usually
//! exponential) backoff. Stabl's §6 shows this machinery — not consensus —
//! dominates how fast Algorand, Aptos and Redbelly recover from network
//! partitions: Aptos probes every 5 s with a 2 s-base backoff capped at
//! 30 s and recovers quickly, while Algorand's and Redbelly's longer
//! timeouts delay recovery by 99 s and 81 s respectively.
//!
//! [`ConnectionManager`] is a pure state machine: the owning protocol
//! drives it from a periodic timer via [`ConnectionManager::tick`], feeds
//! every received message through [`ConnectionManager::on_heard`], and
//! materialises the returned [`ConnAction`]s as heartbeat/dial messages.
//! Keeping it passive means it composes with any protocol and stays
//! deterministic.

use crate::{NodeId, SimDuration, SimTime};

/// Timing parameters of a [`ConnectionManager`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnConfig {
    /// Silence longer than this tears the connection down.
    pub idle_timeout: SimDuration,
    /// Heartbeat period on healthy connections.
    pub heartbeat_interval: SimDuration,
    /// First retry delay after a disconnect.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the delay after every failed dial
    /// (per-mille, so `2000` doubles and `1500` grows by half).
    pub backoff_factor_permille: u32,
    /// Retry delay ceiling.
    pub backoff_cap: SimDuration,
}

impl ConnConfig {
    /// Aptos-like settings (paper §6): 5 s connectivity probes,
    /// exponential backoff with a 2 s base capped at 30 s.
    pub fn fast_recovery() -> ConnConfig {
        ConnConfig {
            idle_timeout: SimDuration::from_secs(15),
            heartbeat_interval: SimDuration::from_secs(5),
            backoff_base: SimDuration::from_secs(2),
            backoff_factor_permille: 2000,
            backoff_cap: SimDuration::from_secs(30),
        }
    }
}

/// Connection state of one peer as seen locally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LinkState {
    Connected {
        last_heard: SimTime,
        last_sent: SimTime,
    },
    Disconnected {
        next_attempt: SimTime,
        backoff: SimDuration,
    },
}

/// An action requested by [`ConnectionManager::tick`]; the owning
/// protocol turns these into wire messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnAction {
    /// Send a keep-alive to a connected peer.
    SendHeartbeat(NodeId),
    /// Attempt to re-establish a torn-down connection.
    SendDial(NodeId),
    /// The connection to this peer was just torn down (idle timeout).
    Disconnected(NodeId),
}

/// Tracks the liveness of every peer connection of one node.
///
/// # Examples
///
/// ```
/// use stabl_sim::{ConnAction, ConnConfig, ConnectionManager, NodeId, SimTime};
///
/// let mut cm = ConnectionManager::new(NodeId::new(0), 3, ConnConfig::fast_recovery());
/// assert!(cm.is_connected(NodeId::new(1)));
/// // A long silence tears the link down on the next tick.
/// let actions = cm.tick(SimTime::from_secs(60));
/// assert!(actions.contains(&ConnAction::Disconnected(NodeId::new(1))));
/// assert!(!cm.is_connected(NodeId::new(1)));
/// ```
#[derive(Clone, Debug)]
pub struct ConnectionManager {
    me: NodeId,
    links: Vec<LinkState>,
    config: ConnConfig,
}

impl ConnectionManager {
    /// Creates a manager for node `me` of an `n`-node network; all links
    /// start connected (the harness boots every node simultaneously).
    pub fn new(me: NodeId, n: usize, config: ConnConfig) -> ConnectionManager {
        ConnectionManager {
            me,
            links: vec![
                LinkState::Connected {
                    last_heard: SimTime::ZERO,
                    last_sent: SimTime::ZERO,
                };
                n
            ],
            config,
        }
    }

    /// The configured timing parameters.
    pub fn config(&self) -> ConnConfig {
        self.config
    }

    /// `true` if the link to `peer` is currently up (self is always up).
    pub fn is_connected(&self, peer: NodeId) -> bool {
        peer == self.me || matches!(self.links[peer.index()], LinkState::Connected { .. })
    }

    /// All peers with an established link, in id order.
    pub fn connected_peers(&self) -> Vec<NodeId> {
        (0..self.links.len() as u32)
            .map(NodeId::new)
            .filter(|&p| p != self.me && self.is_connected(p))
            .collect()
    }

    /// Records traffic from `peer`; returns `true` if this re-established
    /// a torn-down link (the caller should then trigger state sync).
    pub fn on_heard(&mut self, peer: NodeId, now: SimTime) -> bool {
        if peer == self.me {
            return false;
        }
        let link = &mut self.links[peer.index()];
        let reconnected = matches!(link, LinkState::Disconnected { .. });
        let last_sent = match *link {
            LinkState::Connected { last_sent, .. } => last_sent,
            LinkState::Disconnected { .. } => now,
        };
        *link = LinkState::Connected {
            last_heard: now,
            last_sent,
        };
        reconnected
    }

    /// Advances the state machine to `now`, returning the actions to take.
    ///
    /// Call this from a periodic timer (1 s is plenty); the manager is
    /// insensitive to the exact cadence because all deadlines are stored
    /// as absolute times.
    pub fn tick(&mut self, now: SimTime) -> Vec<ConnAction> {
        let mut actions = Vec::new();
        for (i, link) in self.links.iter_mut().enumerate() {
            let peer = NodeId::new(i as u32);
            if peer == self.me {
                continue;
            }
            match *link {
                LinkState::Connected {
                    last_heard,
                    last_sent,
                } => {
                    if now.saturating_since(last_heard) > self.config.idle_timeout {
                        *link = LinkState::Disconnected {
                            next_attempt: now + self.config.backoff_base,
                            backoff: self.config.backoff_base,
                        };
                        actions.push(ConnAction::Disconnected(peer));
                    } else if now.saturating_since(last_sent) >= self.config.heartbeat_interval {
                        *link = LinkState::Connected {
                            last_heard,
                            last_sent: now,
                        };
                        actions.push(ConnAction::SendHeartbeat(peer));
                    }
                }
                LinkState::Disconnected {
                    next_attempt,
                    backoff,
                } => {
                    if now >= next_attempt {
                        // Wait out the *current* backoff before growing it:
                        // the first retry gap honours `backoff_base`, later
                        // gaps grow by the factor up to `backoff_cap`.
                        let wait = backoff.min(self.config.backoff_cap);
                        let grown = backoff
                            .mul_f64(self.config.backoff_factor_permille as f64 / 1000.0)
                            .min(self.config.backoff_cap);
                        *link = LinkState::Disconnected {
                            next_attempt: now + wait,
                            backoff: grown,
                        };
                        actions.push(ConnAction::SendDial(peer));
                    }
                }
            }
        }
        actions
    }

    /// Forces every link down with an immediate dial (a freshly restarted
    /// node actively reconnecting — the paper's "active recovery" that
    /// makes transient-fault recovery much faster than partition
    /// recovery).
    pub fn redial_all(&mut self, now: SimTime) {
        for (i, link) in self.links.iter_mut().enumerate() {
            if i == self.me.index() {
                continue;
            }
            *link = LinkState::Disconnected {
                next_attempt: now,
                backoff: self.config.backoff_base,
            };
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn small_cfg() -> ConnConfig {
        ConnConfig {
            idle_timeout: SimDuration::from_secs(10),
            heartbeat_interval: SimDuration::from_secs(3),
            backoff_base: SimDuration::from_secs(2),
            backoff_factor_permille: 2000,
            backoff_cap: SimDuration::from_secs(16),
        }
    }

    proptest! {
        /// Hearing from a peer always re-establishes the link, whatever
        /// happened before.
        #[test]
        fn on_heard_always_connects(
            events in proptest::collection::vec((0u64..120, proptest::bool::ANY), 1..60)
        ) {
            let mut cm = ConnectionManager::new(NodeId::new(0), 3, small_cfg());
            let mut times: Vec<(u64, bool)> = events;
            times.sort_by_key(|(t, _)| *t);
            for (t, heard) in times {
                let now = SimTime::from_secs(t);
                if heard {
                    cm.on_heard(NodeId::new(1), now);
                    prop_assert!(cm.is_connected(NodeId::new(1)));
                } else {
                    cm.tick(now);
                }
            }
        }

        /// Consecutive dial attempts are spaced by at most the cap plus
        /// one tick, and at least the base backoff.
        #[test]
        fn dial_spacing_respects_backoff_bounds(horizon in 40u64..400) {
            let cfg = small_cfg();
            let mut cm = ConnectionManager::new(NodeId::new(0), 2, cfg);
            let mut dials: Vec<u64> = Vec::new();
            for s in 0..horizon {
                for action in cm.tick(SimTime::from_secs(s)) {
                    if matches!(action, ConnAction::SendDial(_)) {
                        dials.push(s);
                    }
                }
            }
            for pair in dials.windows(2) {
                let gap = pair[1] - pair[0];
                prop_assert!(gap >= cfg.backoff_base.as_micros() / 1_000_000);
                prop_assert!(gap <= cfg.backoff_cap.as_micros() / 1_000_000 + 1);
            }
        }

        /// The manager never emits heartbeats for disconnected peers or
        /// dials for connected ones.
        #[test]
        fn actions_match_link_state(
            heard_at in proptest::collection::btree_set(0u64..100, 0..20)
        ) {
            let mut cm = ConnectionManager::new(NodeId::new(0), 2, small_cfg());
            let peer = NodeId::new(1);
            for s in 0..100u64 {
                let was_connected = cm.is_connected(peer);
                let actions = cm.tick(SimTime::from_secs(s));
                for action in actions {
                    match action {
                        ConnAction::SendHeartbeat(p) => {
                            prop_assert_eq!(p, peer);
                            prop_assert!(was_connected, "heartbeat while down at {}", s);
                        }
                        ConnAction::SendDial(p) => {
                            prop_assert_eq!(p, peer);
                            prop_assert!(!was_connected, "dial while up at {}", s);
                        }
                        ConnAction::Disconnected(_) => {}
                    }
                }
                if heard_at.contains(&s) {
                    cm.on_heard(peer, SimTime::from_secs(s));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ConnConfig {
        ConnConfig {
            idle_timeout: SimDuration::from_secs(10),
            heartbeat_interval: SimDuration::from_secs(3),
            backoff_base: SimDuration::from_secs(2),
            backoff_factor_permille: 2000,
            backoff_cap: SimDuration::from_secs(16),
        }
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn starts_connected_and_heartbeats() {
        let mut cm = ConnectionManager::new(NodeId::new(0), 3, cfg());
        assert_eq!(cm.connected_peers(), vec![NodeId::new(1), NodeId::new(2)]);
        let actions = cm.tick(t(4));
        assert_eq!(
            actions,
            vec![
                ConnAction::SendHeartbeat(NodeId::new(1)),
                ConnAction::SendHeartbeat(NodeId::new(2)),
            ]
        );
        // Heartbeat interval not elapsed again yet.
        assert!(cm.tick(t(5)).is_empty());
    }

    #[test]
    fn idle_timeout_disconnects() {
        let mut cm = ConnectionManager::new(NodeId::new(0), 2, cfg());
        let actions = cm.tick(t(11));
        assert!(actions.contains(&ConnAction::Disconnected(NodeId::new(1))));
        assert!(!cm.is_connected(NodeId::new(1)));
    }

    #[test]
    fn traffic_keeps_link_alive() {
        let mut cm = ConnectionManager::new(NodeId::new(0), 2, cfg());
        for s in [5u64, 10, 15, 20] {
            cm.on_heard(NodeId::new(1), t(s));
        }
        let actions = cm.tick(t(22));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, ConnAction::Disconnected(_))));
        assert!(cm.is_connected(NodeId::new(1)));
    }

    #[test]
    fn dial_backoff_grows_to_cap() {
        let mut cm = ConnectionManager::new(NodeId::new(0), 2, cfg());
        cm.tick(t(11)); // disconnect, first attempt scheduled at 13
        let mut dial_times = Vec::new();
        for s in 11..120 {
            let now = t(s);
            for a in cm.tick(now) {
                if matches!(a, ConnAction::SendDial(_)) {
                    dial_times.push(s);
                }
            }
        }
        // Delays: base 2 doubling to cap 16 → dials at 13, 15(+2),
        // 19(+4), 27(+8), 43(+16), 59(+16 — capped), ...
        assert_eq!(&dial_times[..6], &[13, 15, 19, 27, 43, 59]);
    }

    #[test]
    fn backoff_resets_after_reconnect_under_flapping() {
        // Partition → dials back off to the cap; heal → traffic
        // reconnects the link; re-partition → the dial schedule restarts
        // from the base, not from the capped delay.
        let mut cm = ConnectionManager::new(NodeId::new(0), 2, cfg());
        let dials_between = |cm: &mut ConnectionManager, from: u64, to: u64| -> Vec<u64> {
            let mut dials = Vec::new();
            for s in from..to {
                for a in cm.tick(t(s)) {
                    if matches!(a, ConnAction::SendDial(_)) {
                        dials.push(s);
                    }
                }
            }
            dials
        };
        // First partition: silence from t=0 tears the link at 11.
        let first = dials_between(&mut cm, 0, 60);
        assert_eq!(&first[..5], &[13, 15, 19, 27, 43]);
        // Heal at 60: the peer is heard again, link re-established.
        assert!(cm.on_heard(NodeId::new(1), t(60)));
        assert!(cm.is_connected(NodeId::new(1)));
        // Re-partition: silence again; teardown at 71 (60 + idle 10,
        // strictly exceeded at the next whole-second tick), and the
        // backoff schedule starts over at the 2 s base.
        let second = dials_between(&mut cm, 60, 120);
        assert_eq!(
            &second[..5],
            &[73, 75, 79, 87, 103],
            "recovery schedule must restart from the base after a reconnect"
        );
    }

    #[test]
    fn on_heard_reconnects_and_reports() {
        let mut cm = ConnectionManager::new(NodeId::new(0), 2, cfg());
        cm.tick(t(11));
        assert!(!cm.is_connected(NodeId::new(1)));
        assert!(
            cm.on_heard(NodeId::new(1), t(12)),
            "reconnect reported once"
        );
        assert!(cm.is_connected(NodeId::new(1)));
        assert!(!cm.on_heard(NodeId::new(1), t(13)), "already connected");
    }

    #[test]
    fn redial_all_is_immediate() {
        let mut cm = ConnectionManager::new(NodeId::new(0), 3, cfg());
        cm.redial_all(t(50));
        let actions = cm.tick(t(50));
        assert_eq!(
            actions,
            vec![
                ConnAction::SendDial(NodeId::new(1)),
                ConnAction::SendDial(NodeId::new(2))
            ]
        );
    }

    #[test]
    fn self_link_ignored() {
        let mut cm = ConnectionManager::new(NodeId::new(1), 2, cfg());
        assert!(cm.is_connected(NodeId::new(1)));
        assert!(!cm.on_heard(NodeId::new(1), t(5)));
        assert!(cm.connected_peers().contains(&NodeId::new(0)));
    }

    #[test]
    fn tick_cadence_does_not_matter() {
        // Coarse ticking may batch actions but produces the same dials.
        let run = |step: u64| {
            let mut cm = ConnectionManager::new(NodeId::new(0), 2, cfg());
            let mut dials = 0;
            let mut s = 0;
            while s < 100 {
                for a in cm.tick(t(s)) {
                    if matches!(a, ConnAction::SendDial(_)) {
                        dials += 1;
                    }
                }
                s += step;
            }
            dials
        };
        let fine = run(1);
        let coarse = run(5);
        assert!(fine > 0 && coarse > 0);
        assert!(
            (fine as i64 - coarse as i64).abs() <= 2,
            "{fine} vs {coarse}"
        );
    }
}
