//! The typed observability layer of the kernel: structured simulation
//! events, capture levels and the bounded event recorder.
//!
//! The free-text [`TraceLine`] stream answers "what did node 3 print?";
//! this module answers "*why* did the run degrade?". Every interesting
//! kernel transition — message send/deliver/drop (with its cause), timer
//! fire/stale, node crash/restart/panic, fault activation, client
//! submission and commit — is recorded as a [`SimEvent`] with its
//! simulated timestamp, cheap enough to aggregate over millions of
//! events and structured enough to export as a Chrome-trace/Perfetto
//! timeline or a JSON-Lines dump.
//!
//! Recording is **deterministic-neutral**: the recorder only observes,
//! it never draws randomness, perturbs event ordering or feeds back into
//! protocol state, so a run with [`CaptureLevel::Full`] produces results
//! bit-identical to one with [`CaptureLevel::Off`].
//!
//! [`TraceLine`]: crate::TraceLine

use std::collections::VecDeque;

use crate::{NodeId, SimTime};

/// How much the kernel records about a run.
///
/// Levels are ordered: each level captures strictly more than the one
/// before it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CaptureLevel {
    /// Record nothing (the near-zero-cost default for campaigns).
    #[default]
    Off,
    /// Maintain per-event-kind counters only.
    Counters,
    /// Counters plus the event stream, minus the per-message firehose
    /// (sends, deliveries, drops) and log lines.
    Events,
    /// Everything, including one event per message hop and per
    /// [`Ctx::log`] line.
    ///
    /// [`Ctx::log`]: crate::Ctx::log
    Full,
}

impl CaptureLevel {
    /// Every level, in ascending capture order.
    pub const ALL: [CaptureLevel; 4] = [
        CaptureLevel::Off,
        CaptureLevel::Counters,
        CaptureLevel::Events,
        CaptureLevel::Full,
    ];

    /// A short stable name (used by exporters and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            CaptureLevel::Off => "off",
            CaptureLevel::Counters => "counters",
            CaptureLevel::Events => "events",
            CaptureLevel::Full => "full",
        }
    }
}

/// Why a message died in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// A partition rule blocked the link.
    Partition,
    /// A probabilistic link fault (or asymmetric sever) ate the packet.
    LinkFault,
    /// The destination node was crashed or panicked.
    DeadNode,
}

impl DropCause {
    /// A short stable name.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::Partition => "partition",
            DropCause::LinkFault => "link_fault",
            DropCause::DeadNode => "dead_node",
        }
    }
}

/// Which fault class an activation/clear event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A symmetric partition rule.
    Partition,
    /// A message-level link fault.
    LinkFault,
    /// A per-node send slowdown.
    Slowdown,
}

impl FaultKind {
    /// A short stable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Partition => "partition",
            FaultKind::LinkFault => "link_fault",
            FaultKind::Slowdown => "slowdown",
        }
    }
}

/// One structured kernel observation.
///
/// Node-lifecycle, timer, fault, client and commit events are recorded
/// at [`CaptureLevel::Events`]; the per-message and log events only at
/// [`CaptureLevel::Full`] (they dominate the volume).
#[derive(Clone, Debug, PartialEq)]
pub enum SimEvent {
    /// The harness crashed a running node.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node was restarted.
    NodeRestarted {
        /// The restarted node.
        node: NodeId,
    },
    /// A node aborted fatally through [`Ctx::panic_node`].
    ///
    /// [`Ctx::panic_node`]: crate::Ctx::panic_node
    NodePanicked {
        /// The aborted node.
        node: NodeId,
    },
    /// A protocol handed a message to the network.
    MessageSent {
        /// The sender.
        from: NodeId,
        /// The destination.
        to: NodeId,
    },
    /// A message reached a running node.
    MessageDelivered {
        /// The sender.
        from: NodeId,
        /// The destination.
        to: NodeId,
    },
    /// A message died in flight.
    MessageDropped {
        /// The sender.
        from: NodeId,
        /// The destination it never reached.
        to: NodeId,
        /// Why it died.
        cause: DropCause,
    },
    /// An armed timer fired and was dispatched.
    TimerFired {
        /// The node whose timer fired.
        node: NodeId,
    },
    /// A timer was skipped (cancelled, or invalidated by crash/restart).
    TimerStale {
        /// The node whose timer went stale.
        node: NodeId,
    },
    /// A client request reached a running node.
    RequestDelivered {
        /// The receiving node.
        node: NodeId,
    },
    /// A client request hit a dead node and was lost.
    RequestDropped {
        /// The dead target.
        node: NodeId,
    },
    /// A scheduled fault engaged.
    FaultActivated {
        /// The fault class.
        kind: FaultKind,
    },
    /// A scheduled fault was lifted.
    FaultCleared {
        /// The fault class.
        kind: FaultKind,
    },
    /// A client submitted a transaction to a node (harness-recorded).
    ClientSubmitted {
        /// The submitting client's index.
        client: u64,
        /// The node it contacted.
        node: NodeId,
    },
    /// A client resubmitted after a timeout (harness-recorded).
    ClientRetried {
        /// The retrying client's index.
        client: u64,
        /// The alternate node it contacted.
        node: NodeId,
    },
    /// A client exhausted its retries and gave up (harness-recorded).
    ClientGaveUp {
        /// The defeated client's index.
        client: u64,
    },
    /// A node reported a commit.
    Committed {
        /// The committing node.
        node: NodeId,
    },
    /// A protocol marked entering a consensus phase via [`Ctx::span`].
    ///
    /// [`Ctx::span`]: crate::Ctx::span
    Phase {
        /// The node entering the phase.
        node: NodeId,
        /// The phase label (e.g. `"sortition"`, `"snowball_poll"`).
        phase: &'static str,
    },
    /// A [`Ctx::log`] line (only stored at [`CaptureLevel::Full`]).
    ///
    /// [`Ctx::log`]: crate::Ctx::log
    Log {
        /// The logging node.
        node: NodeId,
        /// The logged text.
        line: String,
    },
    /// A protocol sampled a named per-node metric via [`Ctx::gauge`]
    /// (e.g. mempool depth, current round, open connections).
    ///
    /// [`Ctx::gauge`]: crate::Ctx::gauge
    Gauge {
        /// The node reporting the sample.
        node: NodeId,
        /// The metric name (a stable static label, e.g. `"mempool_depth"`).
        metric: &'static str,
        /// The sampled value.
        value: u64,
    },
}

impl SimEvent {
    /// A short stable kind name (exporters key on it).
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::NodeCrashed { .. } => "node_crashed",
            SimEvent::NodeRestarted { .. } => "node_restarted",
            SimEvent::NodePanicked { .. } => "node_panicked",
            SimEvent::MessageSent { .. } => "message_sent",
            SimEvent::MessageDelivered { .. } => "message_delivered",
            SimEvent::MessageDropped { .. } => "message_dropped",
            SimEvent::TimerFired { .. } => "timer_fired",
            SimEvent::TimerStale { .. } => "timer_stale",
            SimEvent::RequestDelivered { .. } => "request_delivered",
            SimEvent::RequestDropped { .. } => "request_dropped",
            SimEvent::FaultActivated { .. } => "fault_activated",
            SimEvent::FaultCleared { .. } => "fault_cleared",
            SimEvent::ClientSubmitted { .. } => "client_submitted",
            SimEvent::ClientRetried { .. } => "client_retried",
            SimEvent::ClientGaveUp { .. } => "client_gave_up",
            SimEvent::Committed { .. } => "committed",
            SimEvent::Phase { .. } => "phase",
            SimEvent::Log { .. } => "log",
            SimEvent::Gauge { .. } => "gauge",
        }
    }

    /// The node an exporter should attribute this event to, if any.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            SimEvent::NodeCrashed { node }
            | SimEvent::NodeRestarted { node }
            | SimEvent::NodePanicked { node }
            | SimEvent::TimerFired { node }
            | SimEvent::TimerStale { node }
            | SimEvent::RequestDelivered { node }
            | SimEvent::RequestDropped { node }
            | SimEvent::Committed { node }
            | SimEvent::Phase { node, .. }
            | SimEvent::Log { node, .. }
            | SimEvent::Gauge { node, .. } => Some(*node),
            SimEvent::MessageSent { to, .. }
            | SimEvent::MessageDelivered { to, .. }
            | SimEvent::MessageDropped { to, .. } => Some(*to),
            SimEvent::ClientSubmitted { node, .. } | SimEvent::ClientRetried { node, .. } => {
                Some(*node)
            }
            SimEvent::FaultActivated { .. }
            | SimEvent::FaultCleared { .. }
            | SimEvent::ClientGaveUp { .. } => None,
        }
    }

    /// `true` for the high-volume events only stored at
    /// [`CaptureLevel::Full`]: per-message hops and log lines.
    pub fn is_bulky(&self) -> bool {
        matches!(
            self,
            SimEvent::MessageSent { .. }
                | SimEvent::MessageDelivered { .. }
                | SimEvent::MessageDropped { .. }
                | SimEvent::Log { .. }
        )
    }
}

/// A [`SimEvent`] with its simulated timestamp and a recorder sequence
/// number (the deterministic tie-break for equal timestamps).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// When the event happened on the simulated clock.
    pub time: SimTime,
    /// Recorder-assigned sequence number (insertion order).
    pub seq: u64,
    /// The structured observation.
    pub event: SimEvent,
}

/// Per-kind event counts, maintained from [`CaptureLevel::Counters`] up.
///
/// Unlike [`SimStats`] — which is always on and part of the
/// deterministic run artefact — these counters only exist when capture
/// is enabled and also cover harness-level client events and phase
/// marks.
///
/// [`SimStats`]: crate::SimStats
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// `NodeCrashed` events.
    pub node_crashes: u64,
    /// `NodeRestarted` events.
    pub node_restarts: u64,
    /// `NodePanicked` events.
    pub node_panics: u64,
    /// `MessageSent` events.
    pub messages_sent: u64,
    /// `MessageDelivered` events.
    pub messages_delivered: u64,
    /// `MessageDropped` events (all causes).
    pub messages_dropped: u64,
    /// `TimerFired` events.
    pub timers_fired: u64,
    /// `TimerStale` events.
    pub timers_stale: u64,
    /// `RequestDelivered` events.
    pub requests_delivered: u64,
    /// `RequestDropped` events.
    pub requests_dropped: u64,
    /// `FaultActivated` events.
    pub faults_activated: u64,
    /// `FaultCleared` events.
    pub faults_cleared: u64,
    /// `ClientSubmitted` events.
    pub client_submits: u64,
    /// `ClientRetried` events.
    pub client_retries: u64,
    /// `ClientGaveUp` events.
    pub client_give_ups: u64,
    /// `Committed` events.
    pub commits: u64,
    /// `Phase` marks from [`Ctx::span`].
    ///
    /// [`Ctx::span`]: crate::Ctx::span
    pub phase_marks: u64,
    /// `Log` events.
    pub log_lines: u64,
    /// `Gauge` samples from [`Ctx::gauge`].
    ///
    /// [`Ctx::gauge`]: crate::Ctx::gauge
    pub gauge_samples: u64,
}

impl EventCounters {
    fn count(&mut self, event: &SimEvent) {
        let slot = match event {
            SimEvent::NodeCrashed { .. } => &mut self.node_crashes,
            SimEvent::NodeRestarted { .. } => &mut self.node_restarts,
            SimEvent::NodePanicked { .. } => &mut self.node_panics,
            SimEvent::MessageSent { .. } => &mut self.messages_sent,
            SimEvent::MessageDelivered { .. } => &mut self.messages_delivered,
            SimEvent::MessageDropped { .. } => &mut self.messages_dropped,
            SimEvent::TimerFired { .. } => &mut self.timers_fired,
            SimEvent::TimerStale { .. } => &mut self.timers_stale,
            SimEvent::RequestDelivered { .. } => &mut self.requests_delivered,
            SimEvent::RequestDropped { .. } => &mut self.requests_dropped,
            SimEvent::FaultActivated { .. } => &mut self.faults_activated,
            SimEvent::FaultCleared { .. } => &mut self.faults_cleared,
            SimEvent::ClientSubmitted { .. } => &mut self.client_submits,
            SimEvent::ClientRetried { .. } => &mut self.client_retries,
            SimEvent::ClientGaveUp { .. } => &mut self.client_give_ups,
            SimEvent::Committed { .. } => &mut self.commits,
            SimEvent::Phase { .. } => &mut self.phase_marks,
            SimEvent::Log { .. } => &mut self.log_lines,
            SimEvent::Gauge { .. } => &mut self.gauge_samples,
        };
        *slot += 1;
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.node_crashes
            + self.node_restarts
            + self.node_panics
            + self.messages_sent
            + self.messages_delivered
            + self.messages_dropped
            + self.timers_fired
            + self.timers_stale
            + self.requests_delivered
            + self.requests_dropped
            + self.faults_activated
            + self.faults_cleared
            + self.client_submits
            + self.client_retries
            + self.client_give_ups
            + self.commits
            + self.phase_marks
            + self.log_lines
            + self.gauge_samples
    }
}

/// Default bound on the stored event stream (events beyond it evict the
/// oldest, ring-buffer style).
pub const DEFAULT_EVENT_CAP: usize = 1 << 18;

/// The bounded, capture-levelled event sink the kernel records into.
///
/// At [`CaptureLevel::Off`] recording is a single branch; at
/// [`CaptureLevel::Counters`] only [`EventCounters`] update; from
/// [`CaptureLevel::Events`] up, events are stored in a bounded ring —
/// when the cap is hit the *oldest* event is evicted and
/// [`EventRecorder::dropped_events`] counts the loss, so a long chaos
/// run keeps its most recent history instead of ballooning memory.
#[derive(Clone, Debug)]
pub struct EventRecorder {
    level: CaptureLevel,
    cap: usize,
    next_seq: u64,
    events: VecDeque<TimedEvent>,
    dropped: u64,
    counters: EventCounters,
}

impl EventRecorder {
    /// A recorder at `level` storing at most `cap` events.
    pub fn new(level: CaptureLevel, cap: usize) -> EventRecorder {
        EventRecorder {
            level,
            cap: cap.max(1),
            next_seq: 0,
            events: VecDeque::new(),
            dropped: 0,
            counters: EventCounters::default(),
        }
    }

    /// The capture level this recorder runs at.
    #[inline]
    pub fn level(&self) -> CaptureLevel {
        self.level
    }

    /// `true` unless capture is [`CaptureLevel::Off`].
    #[inline]
    pub fn is_active(&self) -> bool {
        self.level != CaptureLevel::Off
    }

    /// Records one event at `time`. A no-op at [`CaptureLevel::Off`];
    /// counter-only at [`CaptureLevel::Counters`]; bulky events (see
    /// [`SimEvent::is_bulky`]) are stored only at [`CaptureLevel::Full`].
    #[inline]
    pub fn record(&mut self, time: SimTime, event: SimEvent) {
        if self.level == CaptureLevel::Off {
            return;
        }
        self.counters.count(&event);
        if self.level == CaptureLevel::Counters
            || (self.level == CaptureLevel::Events && event.is_bulky())
        {
            return;
        }
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TimedEvent { time, seq, event });
    }

    /// The stored events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> + '_ {
        self.events.iter()
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains the stored events, oldest first.
    pub fn take_events(&mut self) -> Vec<TimedEvent> {
        self.events.drain(..).collect()
    }

    /// Events evicted from the ring after the cap was reached.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The per-kind counters.
    pub fn counters(&self) -> EventCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(node: u32) -> SimEvent {
        SimEvent::Committed {
            node: NodeId::new(node),
        }
    }

    #[test]
    fn levels_are_ordered() {
        assert!(CaptureLevel::Off < CaptureLevel::Counters);
        assert!(CaptureLevel::Counters < CaptureLevel::Events);
        assert!(CaptureLevel::Events < CaptureLevel::Full);
        assert_eq!(CaptureLevel::default(), CaptureLevel::Off);
    }

    #[test]
    fn off_records_nothing() {
        let mut rec = EventRecorder::new(CaptureLevel::Off, 16);
        rec.record(SimTime::ZERO, commit(0));
        assert!(rec.is_empty());
        assert_eq!(rec.counters().total(), 0);
        assert!(!rec.is_active());
    }

    #[test]
    fn counters_level_counts_without_storing() {
        let mut rec = EventRecorder::new(CaptureLevel::Counters, 16);
        rec.record(SimTime::ZERO, commit(0));
        rec.record(
            SimTime::ZERO,
            SimEvent::TimerFired {
                node: NodeId::new(1),
            },
        );
        assert!(rec.is_empty());
        assert_eq!(rec.counters().commits, 1);
        assert_eq!(rec.counters().timers_fired, 1);
        assert_eq!(rec.counters().total(), 2);
    }

    #[test]
    fn events_level_skips_bulky_kinds() {
        let mut rec = EventRecorder::new(CaptureLevel::Events, 16);
        rec.record(
            SimTime::ZERO,
            SimEvent::MessageSent {
                from: NodeId::new(0),
                to: NodeId::new(1),
            },
        );
        rec.record(SimTime::ZERO, commit(1));
        assert_eq!(rec.len(), 1, "message hop counted but not stored");
        assert_eq!(rec.counters().messages_sent, 1);
        assert_eq!(rec.counters().commits, 1);

        let mut full = EventRecorder::new(CaptureLevel::Full, 16);
        full.record(
            SimTime::ZERO,
            SimEvent::MessageSent {
                from: NodeId::new(0),
                to: NodeId::new(1),
            },
        );
        assert_eq!(full.len(), 1, "full capture stores the hop");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut rec = EventRecorder::new(CaptureLevel::Events, 3);
        for i in 0..5u64 {
            rec.record(SimTime::from_millis(i), commit(i as u32));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped_events(), 2);
        let kept: Vec<u64> = rec.events().map(|e| e.time.as_micros() / 1_000).collect();
        assert_eq!(kept, vec![2, 3, 4], "the newest events survive");
        // Counters still saw everything.
        assert_eq!(rec.counters().commits, 5);
        // Sequence numbers stay globally increasing.
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn gauge_samples_store_and_count() {
        let mut rec = EventRecorder::new(CaptureLevel::Events, 16);
        rec.record(
            SimTime::from_millis(1),
            SimEvent::Gauge {
                node: NodeId::new(2),
                metric: "round",
                value: 4,
            },
        );
        assert_eq!(rec.len(), 1, "gauges are not bulky: stored at Events");
        assert_eq!(rec.counters().gauge_samples, 1);
        assert_eq!(rec.counters().total(), 1);
    }

    #[test]
    fn kind_names_are_distinct() {
        let events = [
            commit(0),
            SimEvent::NodeCrashed {
                node: NodeId::new(0),
            },
            SimEvent::Phase {
                node: NodeId::new(0),
                phase: "x",
            },
            SimEvent::FaultActivated {
                kind: FaultKind::Partition,
            },
            SimEvent::ClientGaveUp { client: 3 },
            SimEvent::Gauge {
                node: NodeId::new(0),
                metric: "mempool_depth",
                value: 7,
            },
        ];
        let kinds: std::collections::HashSet<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), events.len());
    }
}
