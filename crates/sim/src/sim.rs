//! The discrete-event simulation kernel.

use std::collections::{BTreeMap, VecDeque};

use crate::agenda::{Agenda, MsgArena, MsgRef, TimerRegistry};
use crate::protocol::Effect;
use crate::stats::{CommitRecord, PanicRecord, SimStats, TraceLine};
use crate::trace::{
    CaptureLevel, DropCause, EventCounters, EventRecorder, FaultKind, SimEvent, TimedEvent,
    DEFAULT_EVENT_CAP,
};
use crate::{
    Ctx, DetRng, LatencyModel, LinkFault, LinkFaultId, Network, NodeId, PartitionId, PartitionRule,
    Protocol, SimDuration, SimTime, TimerId,
};

/// Default bound on the retained [`TraceLine`] ring (see
/// [`SimBuilder::trace_cap`]).
pub const DEFAULT_TRACE_CAP: usize = 1 << 16;

/// Liveness state of a simulated node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeStatus {
    /// Processing messages and timers normally.
    Running,
    /// Halted by the harness; can be restarted.
    Crashed,
    /// Aborted fatally by its own logic; cannot be restarted.
    Panicked,
}

/// Builder for a [`Simulation`] ([C-BUILDER]).
///
/// # Examples
///
/// ```no_run
/// use stabl_sim::{LatencyModel, SimBuilder};
/// # use stabl_sim::Protocol;
/// # fn demo<P: Protocol>(config: P::Config) {
/// let sim = SimBuilder::new(10, 42)
///     .latency(LatencyModel::lan())
///     .tracing(true)
///     .build::<P>(config);
/// # }
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Clone, Debug)]
pub struct SimBuilder {
    n: usize,
    seed: u64,
    latency: LatencyModel,
    topology: Option<crate::LatencyTopology>,
    fifo_links: bool,
    tracing: bool,
    trace_cap: usize,
    capture: CaptureLevel,
    event_cap: usize,
}

impl SimBuilder {
    /// Starts configuring a simulation of `n` nodes from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "a simulation needs at least one node");
        SimBuilder {
            n,
            seed,
            latency: LatencyModel::default(),
            topology: None,
            fifo_links: true,
            tracing: false,
            trace_cap: DEFAULT_TRACE_CAP,
            capture: CaptureLevel::Off,
            event_cap: DEFAULT_EVENT_CAP,
        }
    }

    /// Sets the link latency model (default: [`LatencyModel::lan`]).
    pub fn latency(&mut self, latency: LatencyModel) -> &mut Self {
        self.latency = latency;
        self
    }

    /// Installs a region-based latency topology (overrides the uniform
    /// latency model per node pair).
    pub fn topology(&mut self, topology: crate::LatencyTopology) -> &mut Self {
        self.topology = Some(topology);
        self
    }

    /// Enables or disables per-link FIFO delivery (default: enabled,
    /// modelling TCP connections; disable for UDP-like reordering).
    pub fn fifo_links(&mut self, fifo: bool) -> &mut Self {
        self.fifo_links = fifo;
        self
    }

    /// Enables retention of [`Ctx::log`] lines (default: off).
    pub fn tracing(&mut self, tracing: bool) -> &mut Self {
        self.tracing = tracing;
        self
    }

    /// Caps the retained [`Ctx::log`] ring (default:
    /// [`DEFAULT_TRACE_CAP`]). When full, the oldest line is evicted and
    /// [`SimStats::dropped_trace_lines`] counts the loss, so unbounded
    /// chaos runs cannot balloon memory.
    pub fn trace_cap(&mut self, cap: usize) -> &mut Self {
        self.trace_cap = cap.max(1);
        self
    }

    /// Sets the structured-event capture level (default:
    /// [`CaptureLevel::Off`]). Capture is deterministic-neutral: it
    /// never changes what a run computes, only what it records.
    pub fn capture(&mut self, level: CaptureLevel) -> &mut Self {
        self.capture = level;
        self
    }

    /// Caps the structured-event ring (default: [`DEFAULT_EVENT_CAP`]);
    /// see [`EventRecorder`] for the eviction semantics.
    pub fn event_cap(&mut self, cap: usize) -> &mut Self {
        self.event_cap = cap.max(1);
        self
    }

    /// Builds the simulation, constructing all `n` protocol instances.
    pub fn build<P: Protocol>(&self, config: P::Config) -> Simulation<P> {
        Simulation::with_builder(self.clone(), config)
    }
}

struct NodeSlot<P> {
    proto: P,
    status: NodeStatus,
    /// Incremented on every crash, restart and panic; pending timers
    /// carry the epoch they were armed in and are dropped if it is stale.
    epoch: u64,
    rng: DetRng,
}

enum EventKind<P: Protocol> {
    Deliver {
        from: NodeId,
        to: NodeId,
        /// Handle into the simulation's [`MsgArena`]; the payload is
        /// cloned lazily at delivery (the last reference moves).
        msg: MsgRef,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        epoch: u64,
        token: P::Timer,
    },
    Request {
        node: NodeId,
        request: P::Request,
    },
    Crash(NodeId),
    Restart(NodeId),
    PartitionStart {
        handle: u64,
        rule: PartitionRule,
    },
    PartitionEnd {
        handle: u64,
    },
    LinkFaultStart {
        handle: u64,
        fault: LinkFault,
    },
    LinkFaultEnd {
        handle: u64,
    },
    SetSlowdown {
        node: NodeId,
        extra: SimDuration,
    },
}

/// A deterministic discrete-event simulation of `n` nodes running
/// protocol `P`.
///
/// The harness schedules external events (client requests, crashes,
/// restarts, partitions) and then advances time with
/// [`Simulation::run_until`]; afterwards the commit log, panic log and
/// traffic counters describe the run.
///
/// Events live in a calendar-queue [`Agenda`] popping in strictly
/// ascending `(time, insertion seq)` order — the same total order the
/// original `BinaryHeap` agenda produced, so runs are bit-identical
/// across the two (see the ordering invariant in the [`crate::agenda`]
/// module docs).
pub struct Simulation<P: Protocol> {
    now: SimTime,
    /// Total node count, fixed at build time. Distinct from
    /// `nodes.len()` only while `with_builder` is still constructing
    /// the node vector — and construction-time effects (Redbelly dials
    /// peers from `Protocol::new`) already need the full count.
    n: usize,
    queue: Agenda<EventKind<P>>,
    nodes: Vec<NodeSlot<P>>,
    net: Network,
    net_rng: DetRng,
    timers: TimerRegistry,
    msgs: MsgArena<P::Msg>,
    /// Recycled effect buffer handed to each protocol callback, so the
    /// per-event `Vec` allocation of the seed kernel disappears.
    scratch: Vec<Effect<P>>,
    partition_handles: BTreeMap<u64, PartitionId>,
    next_partition_handle: u64,
    link_fault_handles: BTreeMap<u64, LinkFaultId>,
    next_link_fault_handle: u64,
    fifo_links: bool,
    /// Flat `n × n` matrix of last-scheduled delivery instants, indexed
    /// `from * n + to` (replaces the seed's per-link `BTreeMap`).
    link_clock: Vec<SimTime>,
    commits: Vec<CommitRecord<P::Commit>>,
    panics: Vec<PanicRecord>,
    trace: VecDeque<TraceLine>,
    tracing: bool,
    trace_cap: usize,
    recorder: EventRecorder,
    stats: SimStats,
    config: P::Config,
}

impl<P: Protocol> Simulation<P> {
    /// Creates a simulation with default latency and FIFO links; see
    /// [`SimBuilder`] for more control.
    pub fn new(n: usize, seed: u64, config: P::Config) -> Self {
        SimBuilder::new(n, seed).build(config)
    }

    fn with_builder(b: SimBuilder, config: P::Config) -> Self {
        let master = DetRng::new(b.seed);
        let mut sim = Simulation {
            now: SimTime::ZERO,
            n: b.n,
            queue: Agenda::new(),
            nodes: Vec::with_capacity(b.n),
            net: {
                let mut net = Network::new(b.latency);
                if let Some(topology) = b.topology.clone() {
                    net.set_topology(topology);
                }
                net
            },
            net_rng: master.derive(u64::MAX),
            timers: TimerRegistry::new(),
            msgs: MsgArena::new(),
            scratch: Vec::new(),
            partition_handles: BTreeMap::new(),
            next_partition_handle: 0,
            link_fault_handles: BTreeMap::new(),
            next_link_fault_handle: 0,
            fifo_links: b.fifo_links,
            link_clock: vec![SimTime::ZERO; b.n * b.n],
            commits: Vec::new(),
            panics: Vec::new(),
            trace: VecDeque::new(),
            tracing: b.tracing,
            trace_cap: b.trace_cap,
            recorder: EventRecorder::new(b.capture, b.event_cap),
            stats: SimStats::default(),
            config,
        };
        for id in NodeId::all(b.n) {
            let mut rng = master.derive(id.as_u32() as u64);
            let mut effects = Vec::new();
            let mut ctx = Ctx {
                node: id,
                n: b.n,
                now: SimTime::ZERO,
                rng: &mut rng,
                effects: &mut effects,
                timers: &mut sim.timers,
                tracing: sim.tracing,
                capture: sim.recorder.level(),
            };
            let proto = P::new(id, b.n, &sim.config, &mut ctx);
            sim.nodes.push(NodeSlot {
                proto,
                status: NodeStatus::Running,
                epoch: 0,
                rng,
            });
            sim.apply_effects(id, effects);
        }
        sim
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The liveness status of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn status(&self, node: NodeId) -> NodeStatus {
        self.nodes[node.index()].status
    }

    /// Immutable access to a node's protocol state (for post-run
    /// inspection and tests).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.index()].proto
    }

    /// The commit log accumulated so far.
    pub fn commits(&self) -> &[CommitRecord<P::Commit>] {
        &self.commits
    }

    /// Drains the commit log, leaving it empty (useful to stream results
    /// out of long runs).
    pub fn take_commits(&mut self) -> Vec<CommitRecord<P::Commit>> {
        std::mem::take(&mut self.commits)
    }

    /// Fatal node failures recorded so far.
    pub fn panics(&self) -> &[PanicRecord] {
        &self.panics
    }

    /// Diagnostic lines recorded while tracing was enabled, oldest
    /// first (a bounded ring: see [`SimBuilder::trace_cap`]).
    pub fn trace(&self) -> impl Iterator<Item = &TraceLine> + '_ {
        self.trace.iter()
    }

    /// Drains the retained trace lines, oldest first.
    pub fn take_trace(&mut self) -> Vec<TraceLine> {
        self.trace.drain(..).collect()
    }

    /// The structured-event recorder (capture level, counters, stream).
    pub fn recorder(&self) -> &EventRecorder {
        &self.recorder
    }

    /// Drains the recorded structured events, oldest first.
    pub fn take_events(&mut self) -> Vec<TimedEvent> {
        self.recorder.take_events()
    }

    /// The per-kind event counters (zero at [`CaptureLevel::Off`]).
    pub fn event_counters(&self) -> EventCounters {
        self.recorder.counters()
    }

    /// Records a harness-level event (client submissions, retries,
    /// give-ups) into the same stream as the kernel's own events. The
    /// exporters sort by `(time, seq)`, so harness events scheduled
    /// ahead of the run still land in timeline order.
    pub fn record_event(&mut self, time: SimTime, event: SimEvent) {
        self.recorder.record(time, event);
    }

    /// Aggregate traffic counters, with every node's contention
    /// counters ([`Protocol::contention_stats`]) folded in.
    pub fn stats(&self) -> SimStats {
        let mut stats = self.stats;
        for node in &self.nodes {
            stats.absorb_contention(&node.proto.contention_stats());
        }
        stats
    }

    /// The network fabric (latency model, partition drop counters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Schedules a client request for delivery to `node` at `at`.
    ///
    /// Requests reaching a crashed or panicked node are counted in
    /// [`SimStats::requests_dropped`] and lost, exactly like a connection
    /// refused by a dead server.
    pub fn schedule_request(&mut self, at: SimTime, node: NodeId, request: P::Request) {
        self.push(at, EventKind::Request { node, request });
    }

    /// Schedules a permanent or transient crash of `node` at `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Crash(node));
    }

    /// Schedules a restart of a previously crashed `node` at `at`.
    /// Restarting a running or panicked node is a recorded no-op.
    pub fn schedule_restart(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Restart(node));
    }

    /// Schedules a slowdown of `node` between `start` and `end`: every
    /// message the node sends gains `extra` delay (a slow-but-correct
    /// node — the single-slow-node case the paper's §4 discusses).
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn schedule_slowdown(
        &mut self,
        start: SimTime,
        end: SimTime,
        node: NodeId,
        extra: SimDuration,
    ) {
        assert!(start <= end, "slowdown must end after it starts");
        self.push(start, EventKind::SetSlowdown { node, extra });
        self.push(
            end,
            EventKind::SetSlowdown {
                node,
                extra: SimDuration::ZERO,
            },
        );
    }

    /// Schedules a partition installed at `start` and healed at `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn schedule_partition(&mut self, start: SimTime, end: SimTime, rule: PartitionRule) {
        assert!(start <= end, "partition must end after it starts");
        let handle = self.next_partition_handle;
        self.next_partition_handle += 1;
        self.push(start, EventKind::PartitionStart { handle, rule });
        self.push(end, EventKind::PartitionEnd { handle });
    }

    /// Schedules a message-level link fault installed at `start` and
    /// lifted at `end` (see [`LinkFault`] for the drop / duplicate /
    /// reorder semantics).
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn schedule_link_fault(&mut self, start: SimTime, end: SimTime, fault: LinkFault) {
        assert!(start <= end, "link fault must end after it starts");
        let handle = self.next_link_fault_handle;
        self.next_link_fault_handle += 1;
        self.push(start, EventKind::LinkFaultStart { handle, fault });
        self.push(end, EventKind::LinkFaultEnd { handle });
    }

    /// Runs the simulation until no event at or before `horizon` remains;
    /// the clock finishes at `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        let horizon = horizon.max(self.now);
        while let Some((at, kind)) = self.queue.pop_due(horizon.as_micros()) {
            debug_assert!(at >= self.now.as_micros(), "event queue went backwards");
            self.now = SimTime::from_micros(at);
            self.stats.events_processed += 1;
            self.dispatch(kind);
        }
        self.now = horizon;
    }

    fn push(&mut self, time: SimTime, kind: EventKind<P>) {
        let time = time.max(self.now);
        self.queue.push(time.as_micros(), kind);
    }

    fn dispatch(&mut self, kind: EventKind<P>) {
        match kind {
            EventKind::Deliver { from, to, msg } => {
                // Fault checks only run while a partition rule or link
                // fault is installed; on the quiet fast path both are
                // vacuously false.
                if !self.net.quiet() {
                    if self.net.blocked(from, to) {
                        self.msgs.release(msg);
                        self.net.note_partition_drop();
                        self.stats.messages_dropped_partition += 1;
                        self.recorder.record(
                            self.now,
                            SimEvent::MessageDropped {
                                from,
                                to,
                                cause: DropCause::Partition,
                            },
                        );
                        return;
                    }
                    if self.net.link_severed(from, to) {
                        // Packets already in flight when an asymmetric
                        // partition was installed die at delivery time,
                        // just like in-flight packets under a symmetric
                        // partition.
                        self.msgs.release(msg);
                        self.net.note_link_drop();
                        self.stats.messages_dropped_link += 1;
                        self.recorder.record(
                            self.now,
                            SimEvent::MessageDropped {
                                from,
                                to,
                                cause: DropCause::LinkFault,
                            },
                        );
                        return;
                    }
                }
                if self.nodes[to.index()].status != NodeStatus::Running {
                    self.msgs.release(msg);
                    self.stats.messages_dropped_dead += 1;
                    self.recorder.record(
                        self.now,
                        SimEvent::MessageDropped {
                            from,
                            to,
                            cause: DropCause::DeadNode,
                        },
                    );
                    return;
                }
                let Some(payload) = self.msgs.consume(msg) else {
                    return;
                };
                self.stats.messages_delivered += 1;
                self.recorder
                    .record(self.now, SimEvent::MessageDelivered { from, to });
                let effects = self.with_ctx(to, |proto, ctx| proto.on_message(from, payload, ctx));
                self.apply_effects(to, effects);
            }
            EventKind::Timer {
                node,
                id,
                epoch,
                token,
            } => {
                // Resolve unconditionally: the registry slot is freed
                // (and its generation bumped) the moment the timer event
                // fires, whatever the node's state.
                let was_cancelled = self.timers.resolve(id);
                let slot = &self.nodes[node.index()];
                if slot.status != NodeStatus::Running || slot.epoch != epoch || was_cancelled {
                    self.stats.timers_stale += 1;
                    self.recorder
                        .record(self.now, SimEvent::TimerStale { node });
                    return;
                }
                self.stats.timers_fired += 1;
                self.recorder
                    .record(self.now, SimEvent::TimerFired { node });
                let effects = self.with_ctx(node, |proto, ctx| proto.on_timer(token, ctx));
                self.apply_effects(node, effects);
            }
            EventKind::Request { node, request } => {
                if self.nodes[node.index()].status != NodeStatus::Running {
                    self.stats.requests_dropped += 1;
                    self.recorder
                        .record(self.now, SimEvent::RequestDropped { node });
                    return;
                }
                self.stats.requests_delivered += 1;
                self.recorder
                    .record(self.now, SimEvent::RequestDelivered { node });
                let effects = self.with_ctx(node, |proto, ctx| proto.on_request(request, ctx));
                self.apply_effects(node, effects);
            }
            EventKind::Crash(node) => {
                let slot = &mut self.nodes[node.index()];
                if slot.status == NodeStatus::Running {
                    slot.status = NodeStatus::Crashed;
                    slot.epoch += 1;
                    self.recorder
                        .record(self.now, SimEvent::NodeCrashed { node });
                }
            }
            EventKind::Restart(node) => {
                if self.nodes[node.index()].status == NodeStatus::Crashed {
                    self.nodes[node.index()].status = NodeStatus::Running;
                    self.nodes[node.index()].epoch += 1;
                    self.recorder
                        .record(self.now, SimEvent::NodeRestarted { node });
                    let effects = self.with_ctx(node, |proto, ctx| proto.on_restart(ctx));
                    self.apply_effects(node, effects);
                }
            }
            EventKind::PartitionStart { handle, rule } => {
                let id = self.net.install(rule);
                self.partition_handles.insert(handle, id);
                self.recorder.record(
                    self.now,
                    SimEvent::FaultActivated {
                        kind: FaultKind::Partition,
                    },
                );
            }
            EventKind::PartitionEnd { handle } => {
                if let Some(id) = self.partition_handles.remove(&handle) {
                    self.net.remove(id);
                    self.recorder.record(
                        self.now,
                        SimEvent::FaultCleared {
                            kind: FaultKind::Partition,
                        },
                    );
                }
            }
            EventKind::LinkFaultStart { handle, fault } => {
                let id = self.net.install_link_fault(fault);
                self.link_fault_handles.insert(handle, id);
                self.recorder.record(
                    self.now,
                    SimEvent::FaultActivated {
                        kind: FaultKind::LinkFault,
                    },
                );
            }
            EventKind::LinkFaultEnd { handle } => {
                if let Some(id) = self.link_fault_handles.remove(&handle) {
                    self.net.remove_link_fault(id);
                    self.recorder.record(
                        self.now,
                        SimEvent::FaultCleared {
                            kind: FaultKind::LinkFault,
                        },
                    );
                }
            }
            EventKind::SetSlowdown { node, extra } => {
                self.net.set_slowdown(node, extra);
                let kind = FaultKind::Slowdown;
                self.recorder.record(
                    self.now,
                    if extra.is_zero() {
                        SimEvent::FaultCleared { kind }
                    } else {
                        SimEvent::FaultActivated { kind }
                    },
                );
            }
        }
    }

    fn with_ctx<F>(&mut self, node: NodeId, f: F) -> Vec<Effect<P>>
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P>),
    {
        let n = self.nodes.len();
        let mut effects = std::mem::take(&mut self.scratch);
        let slot = &mut self.nodes[node.index()];
        let mut ctx = Ctx {
            node,
            n,
            now: self.now,
            rng: &mut slot.rng,
            effects: &mut effects,
            timers: &mut self.timers,
            tracing: self.tracing,
            capture: self.recorder.level(),
        };
        f(&mut slot.proto, &mut ctx);
        effects
    }

    /// Schedules one delivery of the arena payload `msg` from `from` to
    /// `to`: counters, partition/link-fault verdicts, latency sampling
    /// and FIFO clamping — in exactly the per-send order of the seed
    /// kernel, so RNG draws and event sequence numbers are unchanged.
    ///
    /// The caller has already retained one arena reference for this
    /// recipient ([`MsgArena::retain_n`]); a send-time drop releases it.
    fn send_one(&mut self, from: NodeId, to: NodeId, msg: MsgRef) {
        self.stats.messages_sent += 1;
        self.recorder
            .record(self.now, SimEvent::MessageSent { from, to });
        // On the quiet fast path (no partition rules, no link faults)
        // the blocked check is vacuously false and the verdict is the
        // default, so both are skipped without touching the RNG —
        // `link_verdict` draws only for matching probabilistic rules,
        // which cannot exist while the network is quiet.
        let verdict = if self.net.quiet() {
            crate::LinkVerdict::default()
        } else {
            if self.net.blocked(from, to) {
                self.msgs.release(msg);
                self.net.note_partition_drop();
                self.stats.messages_dropped_partition += 1;
                self.recorder.record(
                    self.now,
                    SimEvent::MessageDropped {
                        from,
                        to,
                        cause: DropCause::Partition,
                    },
                );
                return;
            }
            if self.net.active_link_faults() > 0 {
                self.net.link_verdict(from, to, &mut self.net_rng)
            } else {
                crate::LinkVerdict::default()
            }
        };
        if verdict.drop {
            self.msgs.release(msg);
            self.stats.messages_dropped_link += 1;
            self.recorder.record(
                self.now,
                SimEvent::MessageDropped {
                    from,
                    to,
                    cause: DropCause::LinkFault,
                },
            );
            return;
        }
        let delay = self.net.sample_delay(from, to, &mut self.net_rng) + self.net.slowdown(from);
        let mut deliver_at = self.now + delay;
        if self.fifo_links {
            let idx = from.index() * self.n + to.index();
            if let Some(last) = self.link_clock.get_mut(idx) {
                deliver_at = deliver_at.max(*last);
                *last = deliver_at;
            }
        }
        if !verdict.extra.is_zero() {
            // Hold the packet back *after* the FIFO clock was
            // advanced, so packets sent later can overtake it.
            self.stats.messages_reordered_link += 1;
            deliver_at += verdict.extra;
        }
        if verdict.duplicate {
            self.stats.messages_duplicated_link += 1;
            let dup_delay =
                self.net.sample_delay(from, to, &mut self.net_rng) + self.net.slowdown(from);
            let dup_at = (self.now + dup_delay).max(deliver_at);
            // The fanout pre-paid one reference for this recipient; the
            // duplicate is an extra delivery on top.
            self.msgs.retain(msg);
            self.push(dup_at, EventKind::Deliver { from, to, msg });
        }
        self.push(deliver_at, EventKind::Deliver { from, to, msg });
    }

    fn apply_effects(&mut self, from: NodeId, mut effects: Vec<Effect<P>>) {
        if effects.is_empty() {
            // Most deliveries produce no effects; hand the buffer
            // straight back without touching node state.
            if effects.capacity() > self.scratch.capacity() {
                self.scratch = effects;
            }
            return;
        }
        let epoch = self.nodes[from.index()].epoch;
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    let handle = self.msgs.insert(msg);
                    self.msgs.retain_n(handle, 1);
                    self.send_one(from, to, handle);
                    self.msgs.seal(handle);
                }
                Effect::Broadcast { msg } => {
                    let handle = self.msgs.insert(msg);
                    // Pre-pay the whole fanout in one arena touch;
                    // send-time drops release their reference back.
                    self.msgs.retain_n(handle, self.n.saturating_sub(1) as u32);
                    for to in NodeId::all(self.n) {
                        if to != from {
                            self.send_one(from, to, handle);
                        }
                    }
                    self.msgs.seal(handle);
                }
                Effect::Multicast { targets, msg } => {
                    let handle = self.msgs.insert(msg);
                    self.msgs.retain_n(handle, targets.len() as u32);
                    for to in targets {
                        self.send_one(from, to, handle);
                    }
                    self.msgs.seal(handle);
                }
                Effect::SetTimer { id, delay, token } => {
                    let at = self.now + delay;
                    self.push(
                        at,
                        EventKind::Timer {
                            node: from,
                            id,
                            epoch,
                            token,
                        },
                    );
                }
                Effect::CancelTimer(id) => {
                    self.timers.cancel(id);
                }
                Effect::Commit(commit) => {
                    self.commits.push(CommitRecord {
                        time: self.now,
                        node: from,
                        commit,
                    });
                    self.recorder
                        .record(self.now, SimEvent::Committed { node: from });
                }
                Effect::Panic(reason) => {
                    let slot = &mut self.nodes[from.index()];
                    if slot.status == NodeStatus::Running {
                        slot.status = NodeStatus::Panicked;
                        slot.epoch += 1;
                    }
                    self.panics.push(PanicRecord {
                        time: self.now,
                        node: from,
                        reason,
                    });
                    self.recorder
                        .record(self.now, SimEvent::NodePanicked { node: from });
                }
                Effect::Span(phase) => {
                    self.recorder
                        .record(self.now, SimEvent::Phase { node: from, phase });
                }
                Effect::Gauge { metric, value } => {
                    self.recorder.record(
                        self.now,
                        SimEvent::Gauge {
                            node: from,
                            metric,
                            value,
                        },
                    );
                }
                Effect::Log(line) => {
                    self.recorder.record(
                        self.now,
                        SimEvent::Log {
                            node: from,
                            line: line.clone(),
                        },
                    );
                    if self.tracing {
                        if self.trace.len() >= self.trace_cap {
                            self.trace.pop_front();
                            self.stats.dropped_trace_lines += 1;
                        }
                        self.trace.push_back(TraceLine {
                            time: self.now,
                            node: from,
                            line,
                        });
                    }
                }
            }
        }
        // Hand the (drained) buffer back for the next callback. Node
        // construction uses per-node buffers, so keep the larger one.
        if effects.capacity() > self.scratch.capacity() {
            self.scratch = effects;
        }
    }
}

impl<P: Protocol> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("commits", &self.commits.len())
            .field("panics", &self.panics.len())
            .finish()
    }
}

/// Convenience: a duration of `secs` seconds (shorthand used throughout
/// the test suites).
pub fn secs(secs: u64) -> SimDuration {
    SimDuration::from_secs(secs)
}

/// Convenience: a duration of `millis` milliseconds.
pub fn millis(millis: u64) -> SimDuration {
    SimDuration::from_millis(millis)
}
