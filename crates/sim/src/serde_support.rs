//! JSON (de)serialisation of the kernel's observable run outputs.
//!
//! The bench harness memoises whole runs in an on-disk cache, so the
//! types a [`RunResult`] is made of — instants, node ids, panic records
//! and traffic counters — must round-trip through JSON losslessly. The
//! newtypes serialise as their raw integer payloads (microseconds,
//! dense node index); the records serialise as maps keyed by field
//! name.
//!
//! [`RunResult`]: https://docs.rs/stabl/latest/stabl/struct.RunResult.html

use serde::{Content, DeError, Deserialize, Serialize};

use crate::{NodeId, PanicRecord, SimDuration, SimStats, SimTime};

impl Serialize for SimTime {
    fn to_content(&self) -> Content {
        Content::U64(self.as_micros())
    }
}

impl Deserialize for SimTime {
    fn from_content(content: &Content) -> Result<SimTime, DeError> {
        u64::from_content(content).map(SimTime::from_micros)
    }
}

impl Serialize for SimDuration {
    fn to_content(&self) -> Content {
        Content::U64(self.as_micros())
    }
}

impl Deserialize for SimDuration {
    fn from_content(content: &Content) -> Result<SimDuration, DeError> {
        u64::from_content(content).map(SimDuration::from_micros)
    }
}

impl Serialize for NodeId {
    fn to_content(&self) -> Content {
        Content::U64(u64::from(self.as_u32()))
    }
}

impl Deserialize for NodeId {
    fn from_content(content: &Content) -> Result<NodeId, DeError> {
        u32::from_content(content).map(NodeId::new)
    }
}

impl Serialize for PanicRecord {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("time".to_owned(), self.time.to_content()),
            ("node".to_owned(), self.node.to_content()),
            ("reason".to_owned(), self.reason.to_content()),
        ])
    }
}

impl Deserialize for PanicRecord {
    fn from_content(content: &Content) -> Result<PanicRecord, DeError> {
        Ok(PanicRecord {
            time: serde::__private::field(content, "time")?,
            node: serde::__private::field(content, "node")?,
            reason: serde::__private::field(content, "reason")?,
        })
    }
}

impl Serialize for SimStats {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("messages_sent".to_owned(), self.messages_sent.to_content()),
            (
                "messages_delivered".to_owned(),
                self.messages_delivered.to_content(),
            ),
            (
                "messages_dropped_dead".to_owned(),
                self.messages_dropped_dead.to_content(),
            ),
            (
                "messages_dropped_partition".to_owned(),
                self.messages_dropped_partition.to_content(),
            ),
            ("timers_fired".to_owned(), self.timers_fired.to_content()),
            ("timers_stale".to_owned(), self.timers_stale.to_content()),
            (
                "requests_delivered".to_owned(),
                self.requests_delivered.to_content(),
            ),
            (
                "requests_dropped".to_owned(),
                self.requests_dropped.to_content(),
            ),
            (
                "events_processed".to_owned(),
                self.events_processed.to_content(),
            ),
        ])
    }
}

impl Deserialize for SimStats {
    fn from_content(content: &Content) -> Result<SimStats, DeError> {
        Ok(SimStats {
            messages_sent: serde::__private::field(content, "messages_sent")?,
            messages_delivered: serde::__private::field(content, "messages_delivered")?,
            messages_dropped_dead: serde::__private::field(content, "messages_dropped_dead")?,
            messages_dropped_partition: serde::__private::field(
                content,
                "messages_dropped_partition",
            )?,
            timers_fired: serde::__private::field(content, "timers_fired")?,
            timers_stale: serde::__private::field(content, "timers_stale")?,
            requests_delivered: serde::__private::field(content, "requests_delivered")?,
            requests_dropped: serde::__private::field(content, "requests_dropped")?,
            events_processed: serde::__private::field(content, "events_processed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize>(value: &T) -> T {
        T::from_content(&value.to_content()).expect("roundtrip")
    }

    #[test]
    fn newtypes_roundtrip_as_integers() {
        let t = SimTime::from_micros(1_234_567);
        assert_eq!(t.to_content(), Content::U64(1_234_567));
        assert_eq!(roundtrip(&t), t);
        let d = SimDuration::from_millis(250);
        assert_eq!(roundtrip(&d), d);
        let node = NodeId::new(7);
        assert_eq!(node.to_content(), Content::U64(7));
        assert_eq!(roundtrip(&node), node);
    }

    #[test]
    fn panic_record_roundtrips() {
        let record = PanicRecord {
            time: SimTime::from_secs(133),
            node: NodeId::new(9),
            reason: "EAH mismatch".to_owned(),
        };
        assert_eq!(roundtrip(&record), record);
    }

    #[test]
    fn stats_roundtrip() {
        let stats = SimStats {
            messages_sent: 1,
            messages_delivered: 2,
            messages_dropped_dead: 3,
            messages_dropped_partition: 4,
            timers_fired: 5,
            timers_stale: 6,
            requests_delivered: 7,
            requests_dropped: 8,
            events_processed: 9,
        };
        assert_eq!(roundtrip(&stats), stats);
    }
}
