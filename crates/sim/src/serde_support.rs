//! JSON (de)serialisation of the kernel's observable run outputs.
//!
//! The bench harness memoises whole runs in an on-disk cache, so the
//! types a [`RunResult`] is made of — instants, node ids, panic records
//! and traffic counters — must round-trip through JSON losslessly. The
//! newtypes serialise as their raw integer payloads (microseconds,
//! dense node index); the records serialise as maps keyed by field
//! name.
//!
//! [`RunResult`]: https://docs.rs/stabl/latest/stabl/struct.RunResult.html

use serde::{Content, DeError, Deserialize, Serialize};

use crate::{
    ByzantineBehavior, ByzantineSpec, CaptureLevel, EventCounters, LinkFault, NodeId, PanicRecord,
    SimDuration, SimEvent, SimStats, SimTime, TimedEvent,
};

impl Serialize for SimTime {
    fn to_content(&self) -> Content {
        Content::U64(self.as_micros())
    }
}

impl Deserialize for SimTime {
    fn from_content(content: &Content) -> Result<SimTime, DeError> {
        u64::from_content(content).map(SimTime::from_micros)
    }
}

impl Serialize for SimDuration {
    fn to_content(&self) -> Content {
        Content::U64(self.as_micros())
    }
}

impl Deserialize for SimDuration {
    fn from_content(content: &Content) -> Result<SimDuration, DeError> {
        u64::from_content(content).map(SimDuration::from_micros)
    }
}

impl Serialize for NodeId {
    fn to_content(&self) -> Content {
        Content::U64(u64::from(self.as_u32()))
    }
}

impl Deserialize for NodeId {
    fn from_content(content: &Content) -> Result<NodeId, DeError> {
        u32::from_content(content).map(NodeId::new)
    }
}

impl Serialize for PanicRecord {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("time".to_owned(), self.time.to_content()),
            ("node".to_owned(), self.node.to_content()),
            ("reason".to_owned(), self.reason.to_content()),
        ])
    }
}

impl Deserialize for PanicRecord {
    fn from_content(content: &Content) -> Result<PanicRecord, DeError> {
        Ok(PanicRecord {
            time: serde::__private::field(content, "time")?,
            node: serde::__private::field(content, "node")?,
            reason: serde::__private::field(content, "reason")?,
        })
    }
}

impl Serialize for SimStats {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("messages_sent".to_owned(), self.messages_sent.to_content()),
            (
                "messages_delivered".to_owned(),
                self.messages_delivered.to_content(),
            ),
            (
                "messages_dropped_dead".to_owned(),
                self.messages_dropped_dead.to_content(),
            ),
            (
                "messages_dropped_partition".to_owned(),
                self.messages_dropped_partition.to_content(),
            ),
            (
                "messages_dropped_link".to_owned(),
                self.messages_dropped_link.to_content(),
            ),
            (
                "messages_duplicated_link".to_owned(),
                self.messages_duplicated_link.to_content(),
            ),
            (
                "messages_reordered_link".to_owned(),
                self.messages_reordered_link.to_content(),
            ),
            ("timers_fired".to_owned(), self.timers_fired.to_content()),
            ("timers_stale".to_owned(), self.timers_stale.to_content()),
            (
                "requests_delivered".to_owned(),
                self.requests_delivered.to_content(),
            ),
            (
                "requests_dropped".to_owned(),
                self.requests_dropped.to_content(),
            ),
            (
                "events_processed".to_owned(),
                self.events_processed.to_content(),
            ),
            (
                "dropped_trace_lines".to_owned(),
                self.dropped_trace_lines.to_content(),
            ),
            (
                "speculative_reexecutions".to_owned(),
                self.speculative_reexecutions.to_content(),
            ),
            (
                "conflict_aborts".to_owned(),
                self.conflict_aborts.to_content(),
            ),
            (
                "pool_evictions".to_owned(),
                self.pool_evictions.to_content(),
            ),
            (
                "pool_replacements".to_owned(),
                self.pool_replacements.to_content(),
            ),
        ])
    }
}

impl Deserialize for SimStats {
    fn from_content(content: &Content) -> Result<SimStats, DeError> {
        Ok(SimStats {
            messages_sent: serde::__private::field(content, "messages_sent")?,
            messages_delivered: serde::__private::field(content, "messages_delivered")?,
            messages_dropped_dead: serde::__private::field(content, "messages_dropped_dead")?,
            messages_dropped_partition: serde::__private::field(
                content,
                "messages_dropped_partition",
            )?,
            messages_dropped_link: serde::__private::field(content, "messages_dropped_link")?,
            messages_duplicated_link: serde::__private::field(content, "messages_duplicated_link")?,
            messages_reordered_link: serde::__private::field(content, "messages_reordered_link")?,
            timers_fired: serde::__private::field(content, "timers_fired")?,
            timers_stale: serde::__private::field(content, "timers_stale")?,
            requests_delivered: serde::__private::field(content, "requests_delivered")?,
            requests_dropped: serde::__private::field(content, "requests_dropped")?,
            events_processed: serde::__private::field(content, "events_processed")?,
            dropped_trace_lines: serde::__private::field(content, "dropped_trace_lines")?,
            speculative_reexecutions: serde::__private::field(content, "speculative_reexecutions")?,
            conflict_aborts: serde::__private::field(content, "conflict_aborts")?,
            pool_evictions: serde::__private::field(content, "pool_evictions")?,
            pool_replacements: serde::__private::field(content, "pool_replacements")?,
        })
    }
}

impl Serialize for CaptureLevel {
    fn to_content(&self) -> Content {
        Content::Str(self.name().to_owned())
    }
}

impl Deserialize for CaptureLevel {
    fn from_content(content: &Content) -> Result<CaptureLevel, DeError> {
        match content {
            Content::Str(s) => CaptureLevel::ALL
                .into_iter()
                .find(|level| level.name() == s.as_str())
                .ok_or_else(|| DeError::custom(format!("unknown capture level {s:?}"))),
            _ => Err(DeError::custom("expected capture level string")),
        }
    }
}

impl Serialize for SimEvent {
    /// One flat map per event, tagged by `kind`, so a JSON-Lines dump is
    /// self-describing: `{"kind":"message_dropped","from":0,"to":3,
    /// "cause":"partition"}`.
    fn to_content(&self) -> Content {
        let mut fields = vec![("kind".to_owned(), Content::Str(self.kind().to_owned()))];
        match self {
            SimEvent::NodeCrashed { node }
            | SimEvent::NodeRestarted { node }
            | SimEvent::NodePanicked { node }
            | SimEvent::TimerFired { node }
            | SimEvent::TimerStale { node }
            | SimEvent::RequestDelivered { node }
            | SimEvent::RequestDropped { node }
            | SimEvent::Committed { node } => {
                fields.push(("node".to_owned(), node.to_content()));
            }
            SimEvent::MessageSent { from, to } | SimEvent::MessageDelivered { from, to } => {
                fields.push(("from".to_owned(), from.to_content()));
                fields.push(("to".to_owned(), to.to_content()));
            }
            SimEvent::MessageDropped { from, to, cause } => {
                fields.push(("from".to_owned(), from.to_content()));
                fields.push(("to".to_owned(), to.to_content()));
                fields.push(("cause".to_owned(), Content::Str(cause.name().to_owned())));
            }
            SimEvent::FaultActivated { kind } | SimEvent::FaultCleared { kind } => {
                fields.push(("fault".to_owned(), Content::Str(kind.name().to_owned())));
            }
            SimEvent::ClientSubmitted { client, node }
            | SimEvent::ClientRetried { client, node } => {
                fields.push(("client".to_owned(), client.to_content()));
                fields.push(("node".to_owned(), node.to_content()));
            }
            SimEvent::ClientGaveUp { client } => {
                fields.push(("client".to_owned(), client.to_content()));
            }
            SimEvent::Phase { node, phase } => {
                fields.push(("node".to_owned(), node.to_content()));
                fields.push(("phase".to_owned(), Content::Str((*phase).to_owned())));
            }
            SimEvent::Log { node, line } => {
                fields.push(("node".to_owned(), node.to_content()));
                fields.push(("line".to_owned(), line.to_content()));
            }
            SimEvent::Gauge {
                node,
                metric,
                value,
            } => {
                fields.push(("node".to_owned(), node.to_content()));
                fields.push(("metric".to_owned(), Content::Str((*metric).to_owned())));
                fields.push(("value".to_owned(), value.to_content()));
            }
        }
        Content::Map(fields)
    }
}

impl Serialize for TimedEvent {
    /// Flattened alongside the event's own fields: `{"t_us":…,"seq":…,
    /// "kind":…,…}`.
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("t_us".to_owned(), self.time.to_content()),
            ("seq".to_owned(), self.seq.to_content()),
        ];
        if let Content::Map(event_fields) = self.event.to_content() {
            fields.extend(event_fields);
        }
        Content::Map(fields)
    }
}

impl Serialize for EventCounters {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("node_crashes".to_owned(), self.node_crashes.to_content()),
            ("node_restarts".to_owned(), self.node_restarts.to_content()),
            ("node_panics".to_owned(), self.node_panics.to_content()),
            ("messages_sent".to_owned(), self.messages_sent.to_content()),
            (
                "messages_delivered".to_owned(),
                self.messages_delivered.to_content(),
            ),
            (
                "messages_dropped".to_owned(),
                self.messages_dropped.to_content(),
            ),
            ("timers_fired".to_owned(), self.timers_fired.to_content()),
            ("timers_stale".to_owned(), self.timers_stale.to_content()),
            (
                "requests_delivered".to_owned(),
                self.requests_delivered.to_content(),
            ),
            (
                "requests_dropped".to_owned(),
                self.requests_dropped.to_content(),
            ),
            (
                "faults_activated".to_owned(),
                self.faults_activated.to_content(),
            ),
            (
                "faults_cleared".to_owned(),
                self.faults_cleared.to_content(),
            ),
            (
                "client_submits".to_owned(),
                self.client_submits.to_content(),
            ),
            (
                "client_retries".to_owned(),
                self.client_retries.to_content(),
            ),
            (
                "client_give_ups".to_owned(),
                self.client_give_ups.to_content(),
            ),
            ("commits".to_owned(), self.commits.to_content()),
            ("phase_marks".to_owned(), self.phase_marks.to_content()),
            ("log_lines".to_owned(), self.log_lines.to_content()),
            ("gauge_samples".to_owned(), self.gauge_samples.to_content()),
        ])
    }
}

impl Deserialize for EventCounters {
    fn from_content(content: &Content) -> Result<EventCounters, DeError> {
        Ok(EventCounters {
            node_crashes: serde::__private::field(content, "node_crashes")?,
            node_restarts: serde::__private::field(content, "node_restarts")?,
            node_panics: serde::__private::field(content, "node_panics")?,
            messages_sent: serde::__private::field(content, "messages_sent")?,
            messages_delivered: serde::__private::field(content, "messages_delivered")?,
            messages_dropped: serde::__private::field(content, "messages_dropped")?,
            timers_fired: serde::__private::field(content, "timers_fired")?,
            timers_stale: serde::__private::field(content, "timers_stale")?,
            requests_delivered: serde::__private::field(content, "requests_delivered")?,
            requests_dropped: serde::__private::field(content, "requests_dropped")?,
            faults_activated: serde::__private::field(content, "faults_activated")?,
            faults_cleared: serde::__private::field(content, "faults_cleared")?,
            client_submits: serde::__private::field(content, "client_submits")?,
            client_retries: serde::__private::field(content, "client_retries")?,
            client_give_ups: serde::__private::field(content, "client_give_ups")?,
            commits: serde::__private::field(content, "commits")?,
            phase_marks: serde::__private::field(content, "phase_marks")?,
            log_lines: serde::__private::field(content, "log_lines")?,
            gauge_samples: serde::__private::field(content, "gauge_samples")?,
        })
    }
}

impl Serialize for LinkFault {
    fn to_content(&self) -> Content {
        let group = |g: Option<&std::collections::BTreeSet<NodeId>>| match g {
            None => Content::Null,
            Some(set) => Content::Seq(set.iter().map(Serialize::to_content).collect()),
        };
        Content::Map(vec![
            ("from".to_owned(), group(self.from_group())),
            ("to".to_owned(), group(self.to_group())),
            ("drop_p".to_owned(), Content::F64(self.drop_p())),
            ("dup_p".to_owned(), Content::F64(self.dup_p())),
            ("reorder_p".to_owned(), Content::F64(self.reorder_p())),
            (
                "reorder_extra".to_owned(),
                self.reorder_extra().to_content(),
            ),
        ])
    }
}

impl Deserialize for LinkFault {
    fn from_content(content: &Content) -> Result<LinkFault, DeError> {
        Ok(LinkFault::from_parts(
            serde::__private::field::<Option<Vec<NodeId>>>(content, "from")?,
            serde::__private::field::<Option<Vec<NodeId>>>(content, "to")?,
            serde::__private::field(content, "drop_p")?,
            serde::__private::field(content, "dup_p")?,
            serde::__private::field(content, "reorder_p")?,
            serde::__private::field(content, "reorder_extra")?,
        ))
    }
}

impl Serialize for ByzantineBehavior {
    fn to_content(&self) -> Content {
        match self {
            ByzantineBehavior::Mutate => Content::Str("mutate".to_owned()),
            ByzantineBehavior::Equivocate => Content::Str("equivocate".to_owned()),
            ByzantineBehavior::Withhold => Content::Str("withhold".to_owned()),
            ByzantineBehavior::Delay(extra) => Content::Map(vec![(
                "delay_micros".to_owned(),
                Content::U64(extra.as_micros()),
            )]),
        }
    }
}

impl Deserialize for ByzantineBehavior {
    fn from_content(content: &Content) -> Result<ByzantineBehavior, DeError> {
        match content {
            Content::Str(s) => match s.as_str() {
                "mutate" => Ok(ByzantineBehavior::Mutate),
                "equivocate" => Ok(ByzantineBehavior::Equivocate),
                "withhold" => Ok(ByzantineBehavior::Withhold),
                other => Err(DeError::custom(format!(
                    "unknown byzantine behavior {other:?}"
                ))),
            },
            Content::Map(_) => {
                let micros: u64 = serde::__private::field(content, "delay_micros")?;
                Ok(ByzantineBehavior::Delay(SimDuration::from_micros(micros)))
            }
            _ => Err(DeError::custom("expected byzantine behavior string or map")),
        }
    }
}

impl Serialize for ByzantineSpec {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "nodes".to_owned(),
                Content::Seq(self.nodes().iter().map(Serialize::to_content).collect()),
            ),
            ("behavior".to_owned(), self.behavior().to_content()),
        ])
    }
}

impl Deserialize for ByzantineSpec {
    fn from_content(content: &Content) -> Result<ByzantineSpec, DeError> {
        let nodes: Vec<NodeId> = serde::__private::field(content, "nodes")?;
        let behavior: ByzantineBehavior = serde::__private::field(content, "behavior")?;
        Ok(ByzantineSpec::new(nodes, behavior))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DropCause, FaultKind};

    fn roundtrip<T: Serialize + Deserialize>(value: &T) -> T {
        T::from_content(&value.to_content()).expect("roundtrip")
    }

    #[test]
    fn newtypes_roundtrip_as_integers() {
        let t = SimTime::from_micros(1_234_567);
        assert_eq!(t.to_content(), Content::U64(1_234_567));
        assert_eq!(roundtrip(&t), t);
        let d = SimDuration::from_millis(250);
        assert_eq!(roundtrip(&d), d);
        let node = NodeId::new(7);
        assert_eq!(node.to_content(), Content::U64(7));
        assert_eq!(roundtrip(&node), node);
    }

    #[test]
    fn panic_record_roundtrips() {
        let record = PanicRecord {
            time: SimTime::from_secs(133),
            node: NodeId::new(9),
            reason: "EAH mismatch".to_owned(),
        };
        assert_eq!(roundtrip(&record), record);
    }

    #[test]
    fn link_fault_roundtrips() {
        let fault = LinkFault::between([NodeId::new(1), NodeId::new(2)], [NodeId::new(0)])
            .with_drop(0.25)
            .with_duplicate(0.5)
            .with_reorder(0.75, SimDuration::from_millis(40));
        assert_eq!(roundtrip(&fault), fault);
        // An unconstrained rule keeps its None groups distinct from
        // empty groups.
        let all = LinkFault::all().with_drop(1.0);
        let back = roundtrip(&all);
        assert_eq!(back, all);
        assert!(back.from_group().is_none());
    }

    #[test]
    fn byzantine_spec_roundtrips() {
        for behavior in [
            ByzantineBehavior::Mutate,
            ByzantineBehavior::Equivocate,
            ByzantineBehavior::Withhold,
            ByzantineBehavior::Delay(SimDuration::from_millis(750)),
        ] {
            let spec = ByzantineSpec::new([NodeId::new(8), NodeId::new(9)], behavior);
            assert_eq!(roundtrip(&spec), spec);
        }
        let none = ByzantineSpec::none();
        assert_eq!(roundtrip(&none), none);
    }

    #[test]
    fn stats_roundtrip() {
        let stats = SimStats {
            messages_sent: 1,
            messages_delivered: 2,
            messages_dropped_dead: 3,
            messages_dropped_partition: 4,
            messages_dropped_link: 10,
            messages_duplicated_link: 11,
            messages_reordered_link: 12,
            timers_fired: 5,
            timers_stale: 6,
            requests_delivered: 7,
            requests_dropped: 8,
            events_processed: 9,
            dropped_trace_lines: 13,
            speculative_reexecutions: 14,
            conflict_aborts: 15,
            pool_evictions: 16,
            pool_replacements: 17,
        };
        assert_eq!(roundtrip(&stats), stats);
    }

    #[test]
    fn capture_level_roundtrips() {
        for level in CaptureLevel::ALL {
            assert_eq!(roundtrip(&level), level);
        }
    }

    #[test]
    fn sim_events_serialise_tagged_by_kind() {
        let dropped = SimEvent::MessageDropped {
            from: NodeId::new(0),
            to: NodeId::new(3),
            cause: DropCause::Partition,
        };
        let Content::Map(fields) = dropped.to_content() else {
            panic!("expected map");
        };
        assert_eq!(
            fields[0],
            (
                "kind".to_owned(),
                Content::Str("message_dropped".to_owned())
            )
        );
        assert!(fields.contains(&("cause".to_owned(), Content::Str("partition".to_owned()))));

        let phase = SimEvent::Phase {
            node: NodeId::new(2),
            phase: "sortition",
        };
        let Content::Map(fields) = phase.to_content() else {
            panic!("expected map");
        };
        assert!(fields.contains(&("phase".to_owned(), Content::Str("sortition".to_owned()))));

        let fault = SimEvent::FaultActivated {
            kind: FaultKind::Slowdown,
        };
        let Content::Map(fields) = fault.to_content() else {
            panic!("expected map");
        };
        assert!(fields.contains(&("fault".to_owned(), Content::Str("slowdown".to_owned()))));
    }

    #[test]
    fn timed_event_flattens_time_and_seq() {
        let timed = TimedEvent {
            time: SimTime::from_millis(5),
            seq: 9,
            event: SimEvent::Committed {
                node: NodeId::new(1),
            },
        };
        let Content::Map(fields) = timed.to_content() else {
            panic!("expected map");
        };
        assert_eq!(fields[0], ("t_us".to_owned(), Content::U64(5_000)));
        assert_eq!(fields[1], ("seq".to_owned(), Content::U64(9)));
        assert_eq!(
            fields[2],
            ("kind".to_owned(), Content::Str("committed".to_owned()))
        );
    }

    #[test]
    fn event_counters_roundtrip() {
        let mut counters = EventCounters::default();
        counters.commits = 42;
        counters.phase_marks = 7;
        counters.log_lines = 1;
        assert_eq!(roundtrip(&counters), counters);
    }
}
