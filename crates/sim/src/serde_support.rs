//! JSON (de)serialisation of the kernel's observable run outputs.
//!
//! The bench harness memoises whole runs in an on-disk cache, so the
//! types a [`RunResult`] is made of — instants, node ids, panic records
//! and traffic counters — must round-trip through JSON losslessly. The
//! newtypes serialise as their raw integer payloads (microseconds,
//! dense node index); the records serialise as maps keyed by field
//! name.
//!
//! [`RunResult`]: https://docs.rs/stabl/latest/stabl/struct.RunResult.html

use serde::{Content, DeError, Deserialize, Serialize};

use crate::{
    ByzantineBehavior, ByzantineSpec, LinkFault, NodeId, PanicRecord, SimDuration, SimStats,
    SimTime,
};

impl Serialize for SimTime {
    fn to_content(&self) -> Content {
        Content::U64(self.as_micros())
    }
}

impl Deserialize for SimTime {
    fn from_content(content: &Content) -> Result<SimTime, DeError> {
        u64::from_content(content).map(SimTime::from_micros)
    }
}

impl Serialize for SimDuration {
    fn to_content(&self) -> Content {
        Content::U64(self.as_micros())
    }
}

impl Deserialize for SimDuration {
    fn from_content(content: &Content) -> Result<SimDuration, DeError> {
        u64::from_content(content).map(SimDuration::from_micros)
    }
}

impl Serialize for NodeId {
    fn to_content(&self) -> Content {
        Content::U64(u64::from(self.as_u32()))
    }
}

impl Deserialize for NodeId {
    fn from_content(content: &Content) -> Result<NodeId, DeError> {
        u32::from_content(content).map(NodeId::new)
    }
}

impl Serialize for PanicRecord {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("time".to_owned(), self.time.to_content()),
            ("node".to_owned(), self.node.to_content()),
            ("reason".to_owned(), self.reason.to_content()),
        ])
    }
}

impl Deserialize for PanicRecord {
    fn from_content(content: &Content) -> Result<PanicRecord, DeError> {
        Ok(PanicRecord {
            time: serde::__private::field(content, "time")?,
            node: serde::__private::field(content, "node")?,
            reason: serde::__private::field(content, "reason")?,
        })
    }
}

impl Serialize for SimStats {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("messages_sent".to_owned(), self.messages_sent.to_content()),
            (
                "messages_delivered".to_owned(),
                self.messages_delivered.to_content(),
            ),
            (
                "messages_dropped_dead".to_owned(),
                self.messages_dropped_dead.to_content(),
            ),
            (
                "messages_dropped_partition".to_owned(),
                self.messages_dropped_partition.to_content(),
            ),
            (
                "messages_dropped_link".to_owned(),
                self.messages_dropped_link.to_content(),
            ),
            (
                "messages_duplicated_link".to_owned(),
                self.messages_duplicated_link.to_content(),
            ),
            (
                "messages_reordered_link".to_owned(),
                self.messages_reordered_link.to_content(),
            ),
            ("timers_fired".to_owned(), self.timers_fired.to_content()),
            ("timers_stale".to_owned(), self.timers_stale.to_content()),
            (
                "requests_delivered".to_owned(),
                self.requests_delivered.to_content(),
            ),
            (
                "requests_dropped".to_owned(),
                self.requests_dropped.to_content(),
            ),
            (
                "events_processed".to_owned(),
                self.events_processed.to_content(),
            ),
        ])
    }
}

impl Deserialize for SimStats {
    fn from_content(content: &Content) -> Result<SimStats, DeError> {
        Ok(SimStats {
            messages_sent: serde::__private::field(content, "messages_sent")?,
            messages_delivered: serde::__private::field(content, "messages_delivered")?,
            messages_dropped_dead: serde::__private::field(content, "messages_dropped_dead")?,
            messages_dropped_partition: serde::__private::field(
                content,
                "messages_dropped_partition",
            )?,
            messages_dropped_link: serde::__private::field(content, "messages_dropped_link")?,
            messages_duplicated_link: serde::__private::field(content, "messages_duplicated_link")?,
            messages_reordered_link: serde::__private::field(content, "messages_reordered_link")?,
            timers_fired: serde::__private::field(content, "timers_fired")?,
            timers_stale: serde::__private::field(content, "timers_stale")?,
            requests_delivered: serde::__private::field(content, "requests_delivered")?,
            requests_dropped: serde::__private::field(content, "requests_dropped")?,
            events_processed: serde::__private::field(content, "events_processed")?,
        })
    }
}

impl Serialize for LinkFault {
    fn to_content(&self) -> Content {
        let group = |g: Option<&std::collections::BTreeSet<NodeId>>| match g {
            None => Content::Null,
            Some(set) => Content::Seq(set.iter().map(Serialize::to_content).collect()),
        };
        Content::Map(vec![
            ("from".to_owned(), group(self.from_group())),
            ("to".to_owned(), group(self.to_group())),
            ("drop_p".to_owned(), Content::F64(self.drop_p())),
            ("dup_p".to_owned(), Content::F64(self.dup_p())),
            ("reorder_p".to_owned(), Content::F64(self.reorder_p())),
            (
                "reorder_extra".to_owned(),
                self.reorder_extra().to_content(),
            ),
        ])
    }
}

impl Deserialize for LinkFault {
    fn from_content(content: &Content) -> Result<LinkFault, DeError> {
        Ok(LinkFault::from_parts(
            serde::__private::field::<Option<Vec<NodeId>>>(content, "from")?,
            serde::__private::field::<Option<Vec<NodeId>>>(content, "to")?,
            serde::__private::field(content, "drop_p")?,
            serde::__private::field(content, "dup_p")?,
            serde::__private::field(content, "reorder_p")?,
            serde::__private::field(content, "reorder_extra")?,
        ))
    }
}

impl Serialize for ByzantineBehavior {
    fn to_content(&self) -> Content {
        match self {
            ByzantineBehavior::Mutate => Content::Str("mutate".to_owned()),
            ByzantineBehavior::Equivocate => Content::Str("equivocate".to_owned()),
            ByzantineBehavior::Withhold => Content::Str("withhold".to_owned()),
            ByzantineBehavior::Delay(extra) => Content::Map(vec![(
                "delay_micros".to_owned(),
                Content::U64(extra.as_micros()),
            )]),
        }
    }
}

impl Deserialize for ByzantineBehavior {
    fn from_content(content: &Content) -> Result<ByzantineBehavior, DeError> {
        match content {
            Content::Str(s) => match s.as_str() {
                "mutate" => Ok(ByzantineBehavior::Mutate),
                "equivocate" => Ok(ByzantineBehavior::Equivocate),
                "withhold" => Ok(ByzantineBehavior::Withhold),
                other => Err(DeError::custom(format!(
                    "unknown byzantine behavior {other:?}"
                ))),
            },
            Content::Map(_) => {
                let micros: u64 = serde::__private::field(content, "delay_micros")?;
                Ok(ByzantineBehavior::Delay(SimDuration::from_micros(micros)))
            }
            _ => Err(DeError::custom("expected byzantine behavior string or map")),
        }
    }
}

impl Serialize for ByzantineSpec {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "nodes".to_owned(),
                Content::Seq(self.nodes().iter().map(Serialize::to_content).collect()),
            ),
            ("behavior".to_owned(), self.behavior().to_content()),
        ])
    }
}

impl Deserialize for ByzantineSpec {
    fn from_content(content: &Content) -> Result<ByzantineSpec, DeError> {
        let nodes: Vec<NodeId> = serde::__private::field(content, "nodes")?;
        let behavior: ByzantineBehavior = serde::__private::field(content, "behavior")?;
        Ok(ByzantineSpec::new(nodes, behavior))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize>(value: &T) -> T {
        T::from_content(&value.to_content()).expect("roundtrip")
    }

    #[test]
    fn newtypes_roundtrip_as_integers() {
        let t = SimTime::from_micros(1_234_567);
        assert_eq!(t.to_content(), Content::U64(1_234_567));
        assert_eq!(roundtrip(&t), t);
        let d = SimDuration::from_millis(250);
        assert_eq!(roundtrip(&d), d);
        let node = NodeId::new(7);
        assert_eq!(node.to_content(), Content::U64(7));
        assert_eq!(roundtrip(&node), node);
    }

    #[test]
    fn panic_record_roundtrips() {
        let record = PanicRecord {
            time: SimTime::from_secs(133),
            node: NodeId::new(9),
            reason: "EAH mismatch".to_owned(),
        };
        assert_eq!(roundtrip(&record), record);
    }

    #[test]
    fn link_fault_roundtrips() {
        let fault = LinkFault::between([NodeId::new(1), NodeId::new(2)], [NodeId::new(0)])
            .with_drop(0.25)
            .with_duplicate(0.5)
            .with_reorder(0.75, SimDuration::from_millis(40));
        assert_eq!(roundtrip(&fault), fault);
        // An unconstrained rule keeps its None groups distinct from
        // empty groups.
        let all = LinkFault::all().with_drop(1.0);
        let back = roundtrip(&all);
        assert_eq!(back, all);
        assert!(back.from_group().is_none());
    }

    #[test]
    fn byzantine_spec_roundtrips() {
        for behavior in [
            ByzantineBehavior::Mutate,
            ByzantineBehavior::Equivocate,
            ByzantineBehavior::Withhold,
            ByzantineBehavior::Delay(SimDuration::from_millis(750)),
        ] {
            let spec = ByzantineSpec::new([NodeId::new(8), NodeId::new(9)], behavior);
            assert_eq!(roundtrip(&spec), spec);
        }
        let none = ByzantineSpec::none();
        assert_eq!(roundtrip(&none), none);
    }

    #[test]
    fn stats_roundtrip() {
        let stats = SimStats {
            messages_sent: 1,
            messages_delivered: 2,
            messages_dropped_dead: 3,
            messages_dropped_partition: 4,
            messages_dropped_link: 10,
            messages_duplicated_link: 11,
            messages_reordered_link: 12,
            timers_fired: 5,
            timers_stale: 6,
            requests_delivered: 7,
            requests_dropped: 8,
            events_processed: 9,
        };
        assert_eq!(roundtrip(&stats), stats);
    }
}
