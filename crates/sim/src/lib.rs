//! # stabl-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate of the Stabl reproduction: a single-threaded,
//! fully deterministic discrete-event simulator on which the five blockchain
//! protocols (`stabl-algorand`, `stabl-aptos`, `stabl-avalanche`,
//! `stabl-redbelly`, `stabl-solana`) run as [`Protocol`] state machines.
//!
//! It replaces the paper's physical testbed (a Proxmox cluster with
//! netfilter-based fault injection): nodes are processes with a
//! crash/restart lifecycle, the network delivers messages with configurable
//! latency and honours netfilter-like [`PartitionRule`]s, and every source
//! of randomness flows from one seed so a run is reproducible bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use stabl_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime, Simulation};
//!
//! /// A node that echoes every request to all peers and commits on receipt.
//! struct Echo;
//!
//! impl Protocol for Echo {
//!     type Msg = u64;
//!     type Request = u64;
//!     type Commit = u64;
//!     type Timer = ();
//!     type Config = ();
//!
//!     fn new(_: NodeId, _: usize, _: &(), _: &mut Ctx<'_, Self>) -> Self { Echo }
//!     fn on_message(&mut self, _: NodeId, m: u64, ctx: &mut Ctx<'_, Self>) { ctx.commit(m); }
//!     fn on_timer(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
//!     fn on_request(&mut self, r: u64, ctx: &mut Ctx<'_, Self>) { ctx.broadcast(r); }
//!     fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
//! }
//!
//! let mut sim = Simulation::<Echo>::new(3, 42, ());
//! sim.schedule_request(SimTime::from_secs(1), NodeId::new(0), 7);
//! sim.run_until(SimTime::from_secs(2));
//! assert_eq!(sim.commits().len(), 2); // both peers committed the echo
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agenda;
mod byzantine;
mod conn;
mod net;
mod protocol;
mod resource;
mod rng;
mod serde_support;
mod sim;
mod stats;
mod time;
mod trace;

pub use agenda::{Agenda, BUCKET_WIDTH_MICROS, RING_BUCKETS};
pub use byzantine::{ByzConfig, ByzantineBehavior, ByzantineSpec, ByzantineWrapper};
pub use conn::{ConnAction, ConnConfig, ConnectionManager};
pub use net::{
    LatencyModel, LatencyTopology, LinkFault, LinkFaultId, LinkVerdict, Network, NodeId,
    PartitionId, PartitionRule,
};
pub use protocol::{Ctx, Protocol, TimerId};
pub use resource::CpuMeter;
pub use rng::DetRng;
pub use sim::{millis, secs, NodeStatus, SimBuilder, Simulation, DEFAULT_TRACE_CAP};
pub use stats::{CommitRecord, ContentionStats, PanicRecord, SimStats, TraceLine};
pub use time::{SimDuration, SimTime};
pub use trace::{
    CaptureLevel, DropCause, EventCounters, EventRecorder, FaultKind, SimEvent, TimedEvent,
    DEFAULT_EVENT_CAP,
};

#[cfg(test)]
mod kernel_prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Trivial protocol committing every received broadcast.
    struct Echoes;
    impl Protocol for Echoes {
        type Msg = u64;
        type Request = u64;
        type Commit = u64;
        type Timer = ();
        type Config = ();
        fn new(_: NodeId, _: usize, _: &(), _: &mut Ctx<'_, Self>) -> Self {
            Echoes
        }
        fn on_message(&mut self, _: NodeId, m: u64, ctx: &mut Ctx<'_, Self>) {
            ctx.commit(m);
        }
        fn on_timer(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_request(&mut self, r: u64, ctx: &mut Ctx<'_, Self>) {
            ctx.broadcast(r);
        }
        fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
    }

    #[derive(Clone, Debug)]
    enum Op {
        Request {
            at_ms: u64,
            node: u32,
            value: u64,
        },
        Crash {
            at_ms: u64,
            node: u32,
        },
        Restart {
            at_ms: u64,
            node: u32,
        },
        Partition {
            at_ms: u64,
            len_ms: u64,
            node: u32,
        },
        LinkFault {
            at_ms: u64,
            len_ms: u64,
            node: u32,
            drop_pct: u8,
            dup_pct: u8,
            reorder_pct: u8,
        },
        Sever {
            at_ms: u64,
            len_ms: u64,
            node: u32,
        },
    }

    fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..5_000, 0..n, proptest::num::u64::ANY)
                .prop_map(|(at_ms, node, value)| Op::Request { at_ms, node, value }),
            (0u64..5_000, 0..n).prop_map(|(at_ms, node)| Op::Crash { at_ms, node }),
            (0u64..5_000, 0..n).prop_map(|(at_ms, node)| Op::Restart { at_ms, node }),
            (0u64..5_000, 1u64..2_000, 0..n).prop_map(|(at_ms, len_ms, node)| Op::Partition {
                at_ms,
                len_ms,
                node
            }),
            (
                (0u64..5_000, 1u64..2_000, 0..n),
                (0u8..101, 0u8..101, 0u8..101)
            )
                .prop_map(
                    |((at_ms, len_ms, node), (drop_pct, dup_pct, reorder_pct))| Op::LinkFault {
                        at_ms,
                        len_ms,
                        node,
                        drop_pct,
                        dup_pct,
                        reorder_pct,
                    }
                ),
            (0u64..5_000, 1u64..2_000, 0..n).prop_map(|(at_ms, len_ms, node)| Op::Sever {
                at_ms,
                len_ms,
                node
            }),
        ]
    }

    fn apply(sim: &mut Simulation<Echoes>, ops: &[Op], n: usize) {
        for op in ops {
            match *op {
                Op::Request { at_ms, node, value } => {
                    sim.schedule_request(SimTime::from_millis(at_ms), NodeId::new(node), value);
                }
                Op::Crash { at_ms, node } => {
                    sim.schedule_crash(SimTime::from_millis(at_ms), NodeId::new(node));
                }
                Op::Restart { at_ms, node } => {
                    sim.schedule_restart(SimTime::from_millis(at_ms), NodeId::new(node));
                }
                Op::Partition {
                    at_ms,
                    len_ms,
                    node,
                } => {
                    sim.schedule_partition(
                        SimTime::from_millis(at_ms),
                        SimTime::from_millis(at_ms + len_ms),
                        PartitionRule::isolate([NodeId::new(node)], n),
                    );
                }
                Op::LinkFault {
                    at_ms,
                    len_ms,
                    node,
                    drop_pct,
                    dup_pct,
                    reorder_pct,
                } => {
                    sim.schedule_link_fault(
                        SimTime::from_millis(at_ms),
                        SimTime::from_millis(at_ms + len_ms),
                        LinkFault::between([NodeId::new(node)], NodeId::all(n))
                            .with_drop(f64::from(drop_pct) / 100.0)
                            .with_duplicate(f64::from(dup_pct) / 100.0)
                            .with_reorder(
                                f64::from(reorder_pct) / 100.0,
                                SimDuration::from_millis(50),
                            ),
                    );
                }
                Op::Sever {
                    at_ms,
                    len_ms,
                    node,
                } => {
                    sim.schedule_link_fault(
                        SimTime::from_millis(at_ms),
                        SimTime::from_millis(at_ms + len_ms),
                        LinkFault::sever(
                            NodeId::all(n).filter(|id| *id != NodeId::new(node)),
                            [NodeId::new(node)],
                        ),
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary schedules keep the kernel's accounting balanced and
        /// identical schedules replay identically.
        #[test]
        fn kernel_invariants_under_arbitrary_schedules(
            ops in proptest::collection::vec(op_strategy(4), 0..40),
            seed in 0u64..1_000,
        ) {
            let run = |ops: &[Op]| {
                let mut sim = Simulation::<Echoes>::new(4, seed, ());
                apply(&mut sim, ops, 4);
                sim.run_until(SimTime::from_secs(10));
                let stats = sim.stats();
                // Accounting: every sent message (plus every duplicate
                // copy injected by link faults) is delivered or dropped.
                prop_assert_eq!(
                    stats.messages_sent + stats.messages_duplicated_link,
                    stats.messages_delivered
                        + stats.messages_dropped_dead
                        + stats.messages_dropped_partition
                        + stats.messages_dropped_link
                );
                // The kernel's counters mirror the network's book-keeping.
                prop_assert_eq!(stats.messages_dropped_link, sim.network().link_drops());
                prop_assert_eq!(stats.messages_duplicated_link, sim.network().link_dups());
                prop_assert_eq!(stats.messages_reordered_link, sim.network().link_reorders());
                // Commits only ever come from deliveries.
                prop_assert!(sim.commits().len() as u64 <= stats.messages_delivered);
                // Clock finishes at the horizon and the queue drained to it.
                prop_assert_eq!(sim.now(), SimTime::from_secs(10));
                Ok(sim
                    .commits()
                    .iter()
                    .map(|c| (c.time.as_micros(), c.node.as_u32(), c.commit))
                    .collect::<Vec<_>>())
            };
            let a = run(&ops)?;
            let b = run(&ops)?;
            prop_assert_eq!(a, b, "identical schedules must replay identically");
        }
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;

    /// A ping protocol exercising timers, broadcast, crash/restart and
    /// partitions: every node pings all peers each 100 ms and commits the
    /// sequence number of every ping it receives.
    #[derive(Debug)]
    struct Pinger {
        seq: u64,
        received: u64,
        restarted: bool,
    }

    #[derive(Clone, Debug)]
    enum PingMsg {
        Ping(u64),
    }

    impl Protocol for Pinger {
        type Msg = PingMsg;
        type Request = u64;
        type Commit = (u32, u64);
        type Timer = ();
        type Config = ();

        fn new(_: NodeId, _: usize, _: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            ctx.set_timer(SimDuration::from_millis(100), ());
            Pinger {
                seq: 0,
                received: 0,
                restarted: false,
            }
        }

        fn on_message(&mut self, from: NodeId, PingMsg::Ping(s): PingMsg, ctx: &mut Ctx<'_, Self>) {
            self.received += 1;
            ctx.commit((from.as_u32(), s));
        }

        fn on_timer(&mut self, _: (), ctx: &mut Ctx<'_, Self>) {
            self.seq += 1;
            ctx.broadcast(PingMsg::Ping(self.seq));
            ctx.set_timer(SimDuration::from_millis(100), ());
        }

        fn on_request(&mut self, seq: u64, ctx: &mut Ctx<'_, Self>) {
            ctx.broadcast(PingMsg::Ping(seq));
        }

        fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>) {
            self.restarted = true;
            ctx.set_timer(SimDuration::from_millis(100), ());
        }
    }

    fn pinger_sim(n: usize, seed: u64) -> Simulation<Pinger> {
        Simulation::new(n, seed, ())
    }

    #[test]
    fn timers_drive_periodic_broadcast() {
        let mut sim = pinger_sim(3, 1);
        sim.run_until(SimTime::from_secs(1));
        // Each node fires ~10 times, each ping reaches 2 peers.
        let commits = sim.commits().len() as u64;
        assert!((50..=70).contains(&commits), "commits = {commits}");
        assert!(sim.stats().timers_fired >= 30);
    }

    #[test]
    fn cancelled_timers_never_fire_and_count_as_stale() {
        /// Arms a decoy and a keeper timer at every fire, cancelling the
        /// decoy immediately; only keeper tokens may ever be delivered.
        struct Canceller;
        impl Protocol for Canceller {
            type Msg = u64;
            type Request = u64;
            type Commit = u64;
            type Timer = u8;
            type Config = ();
            fn new(_: NodeId, _: usize, _: &(), ctx: &mut Ctx<'_, Self>) -> Self {
                let decoy = ctx.set_timer(SimDuration::from_millis(50), 0);
                ctx.set_timer(SimDuration::from_millis(100), 1);
                ctx.cancel_timer(decoy);
                Canceller
            }
            fn on_message(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, Self>) {}
            fn on_timer(&mut self, token: u8, ctx: &mut Ctx<'_, Self>) {
                assert_eq!(token, 1, "a cancelled timer fired");
                ctx.commit(u64::from(token));
                let decoy = ctx.set_timer(SimDuration::from_millis(50), 0);
                ctx.set_timer(SimDuration::from_millis(100), 1);
                ctx.cancel_timer(decoy);
            }
            fn on_request(&mut self, _: u64, _: &mut Ctx<'_, Self>) {}
            fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
        }

        let mut sim = Simulation::<Canceller>::new(3, 9, ());
        sim.run_until(SimTime::from_secs(1));
        let stats = sim.stats();
        // One decoy is armed and cancelled per keeper fire (plus the one
        // from `new`, minus the final decoy whose slot lies past the
        // horizon), so stale resolutions track fired ones exactly.
        assert!(stats.timers_fired >= 27, "fired = {}", stats.timers_fired);
        assert_eq!(stats.timers_stale, stats.timers_fired);
        assert_eq!(sim.commits().len() as u64, stats.timers_fired);
    }

    #[test]
    fn crash_stops_timers_and_receiving() {
        let mut sim = pinger_sim(3, 2);
        sim.schedule_crash(SimTime::from_millis(350), NodeId::new(2));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.status(NodeId::new(2)), NodeStatus::Crashed);
        // No commits from node2 after the crash.
        let late = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(2) && c.time > SimTime::from_millis(360))
            .count();
        assert_eq!(late, 0);
        assert!(sim.stats().messages_dropped_dead > 0);
        assert!(
            sim.stats().timers_stale > 0,
            "crashed node's timer is stale"
        );
    }

    #[test]
    fn restart_invokes_on_restart_and_resumes() {
        let mut sim = pinger_sim(3, 3);
        sim.schedule_crash(SimTime::from_millis(300), NodeId::new(1));
        sim.schedule_restart(SimTime::from_millis(600), NodeId::new(1));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.status(NodeId::new(1)), NodeStatus::Running);
        assert!(sim.node(NodeId::new(1)).restarted);
        // It pings again after the restart.
        let late = sim
            .commits()
            .iter()
            .filter(|c| c.commit.0 == 1 && c.time > SimTime::from_millis(700))
            .count();
        assert!(late > 0, "restarted node resumed pinging");
    }

    #[test]
    fn restart_of_running_node_is_noop() {
        let mut sim = pinger_sim(2, 4);
        sim.schedule_restart(SimTime::from_millis(100), NodeId::new(0));
        sim.run_until(SimTime::from_millis(200));
        assert!(!sim.node(NodeId::new(0)).restarted);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut sim = pinger_sim(4, 5);
        sim.schedule_partition(
            SimTime::from_millis(200),
            SimTime::from_millis(700),
            PartitionRule::isolate([NodeId::new(3)], 4),
        );
        sim.run_until(SimTime::from_secs(1));
        // During the partition node3 receives nothing.
        let during = sim
            .commits()
            .iter()
            .filter(|c| {
                c.node == NodeId::new(3)
                    && c.time > SimTime::from_millis(220)
                    && c.time < SimTime::from_millis(700)
            })
            .count();
        assert_eq!(during, 0);
        // After healing it receives pings again.
        let after = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(3) && c.time > SimTime::from_millis(720))
            .count();
        assert!(after > 0);
        assert!(sim.network().partition_drops() > 0);
        assert_eq!(sim.network().active_rules(), 0, "rule removed after heal");
    }

    #[test]
    fn requests_to_dead_nodes_are_dropped() {
        let mut sim = pinger_sim(2, 6);
        sim.schedule_crash(SimTime::from_millis(10), NodeId::new(0));
        sim.schedule_request(SimTime::from_millis(20), NodeId::new(0), 99);
        sim.schedule_request(SimTime::from_millis(20), NodeId::new(1), 100);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.stats().requests_dropped, 1);
        assert_eq!(sim.stats().requests_delivered, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut sim = pinger_sim(5, seed);
            sim.schedule_crash(SimTime::from_millis(300), NodeId::new(4));
            sim.schedule_restart(SimTime::from_millis(700), NodeId::new(4));
            sim.run_until(SimTime::from_secs(2));
            sim.commits()
                .iter()
                .map(|c| (c.time.as_micros(), c.node.as_u32(), c.commit))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds give different schedules");
    }

    #[test]
    fn fifo_links_preserve_per_link_order() {
        // With FIFO links, commits of one sender's pings at one receiver
        // must be in sequence order.
        let mut sim = pinger_sim(2, 7);
        sim.run_until(SimTime::from_secs(3));
        let seqs: Vec<u64> = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.commit.0 == 1)
            .map(|c| c.commit.1)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert!(!seqs.is_empty());
    }

    #[test]
    fn slowdown_delays_a_nodes_messages() {
        let lagged = |slow: bool| {
            let mut sim = pinger_sim(2, 12);
            if slow {
                sim.schedule_slowdown(
                    SimTime::from_millis(0),
                    SimTime::from_secs(5),
                    NodeId::new(1),
                    SimDuration::from_millis(300),
                );
            }
            sim.run_until(SimTime::from_secs(2));
            // First ping from node1 observed at node0.
            sim.commits()
                .iter()
                .find(|c| c.node == NodeId::new(0) && c.commit.0 == 1)
                .map(|c| c.time)
                .expect("ping observed")
        };
        let fast = lagged(false);
        let slow = lagged(true);
        assert!(
            slow >= fast + SimDuration::from_millis(290),
            "slowdown must delay outbound messages: {fast} vs {slow}"
        );
    }

    #[test]
    fn slowdown_expires() {
        let mut sim = pinger_sim(2, 13);
        sim.schedule_slowdown(
            SimTime::from_millis(0),
            SimTime::from_millis(500),
            NodeId::new(1),
            SimDuration::from_millis(400),
        );
        sim.run_until(SimTime::from_secs(3));
        // After expiry, node1's pings arrive with plain link latency
        // again: inter-arrival gaps return to the 100 ms timer period.
        let times: Vec<SimTime> = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.commit.0 == 1)
            .map(|c| c.time)
            .collect();
        let late_gaps: Vec<u64> = times
            .windows(2)
            .filter(|w| w[0] > SimTime::from_secs(1))
            .map(|w| (w[1] - w[0]).as_millis())
            .collect();
        assert!(!late_gaps.is_empty());
        assert!(
            late_gaps.iter().all(|g| (80..=120).contains(g)),
            "gaps after expiry: {late_gaps:?}"
        );
    }

    #[test]
    fn lossy_link_fault_drops_messages() {
        let mut sim = pinger_sim(3, 21);
        sim.schedule_link_fault(
            SimTime::from_millis(0),
            SimTime::from_secs(2),
            LinkFault::all().with_drop(0.5),
        );
        sim.run_until(SimTime::from_secs(2));
        let stats = sim.stats();
        assert!(stats.messages_dropped_link > 0, "loss must bite");
        assert!(stats.messages_delivered > 0, "but not everything dies");
        assert_eq!(stats.messages_dropped_link, sim.network().link_drops());
    }

    #[test]
    fn asymmetric_partition_kills_one_direction_only() {
        let mut sim = pinger_sim(2, 22);
        // node1 -> node0 dies; node0 -> node1 stays up.
        sim.schedule_link_fault(
            SimTime::from_millis(0),
            SimTime::from_secs(2),
            LinkFault::sever([NodeId::new(1)], [NodeId::new(0)]),
        );
        sim.run_until(SimTime::from_secs(2));
        let from1 = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0))
            .count();
        let from0 = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(1))
            .count();
        assert_eq!(from1, 0, "nothing flows node1 -> node0");
        assert!(from0 > 0, "node0 -> node1 unaffected");
    }

    #[test]
    fn link_fault_lifts_at_end_of_window() {
        let mut sim = pinger_sim(2, 23);
        sim.schedule_link_fault(
            SimTime::from_millis(0),
            SimTime::from_secs(1),
            LinkFault::sever([NodeId::new(1)], [NodeId::new(0)]),
        );
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.network().active_link_faults(), 0, "fault removed");
        let late = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.time > SimTime::from_millis(1200))
            .count();
        assert!(late > 0, "traffic resumes after the window");
    }

    #[test]
    fn duplicating_fault_delivers_extra_copies() {
        let mut sim = pinger_sim(2, 24);
        sim.schedule_link_fault(
            SimTime::from_millis(0),
            SimTime::from_secs(2),
            LinkFault::all().with_duplicate(1.0),
        );
        sim.run_until(SimTime::from_secs(2));
        let stats = sim.stats();
        assert!(stats.messages_duplicated_link > 0);
        assert!(
            stats.messages_delivered > stats.messages_sent,
            "copies land"
        );
        assert_eq!(stats.messages_duplicated_link, sim.network().link_dups());
    }

    #[test]
    fn reordering_fault_breaks_fifo_order() {
        // With a heavy reorder fault the per-link FIFO guarantee must
        // break: some ping sequence numbers arrive out of order.
        let mut sim = pinger_sim(2, 25);
        sim.schedule_link_fault(
            SimTime::from_millis(0),
            SimTime::from_secs(5),
            LinkFault::all().with_reorder(0.5, SimDuration::from_millis(400)),
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.stats().messages_reordered_link > 0);
        let seqs: Vec<u64> = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.commit.0 == 1)
            .map(|c| c.commit.1)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "reordering must be observable");
    }

    #[test]
    fn link_faults_are_deterministic() {
        let run = |seed| {
            let mut sim = pinger_sim(4, seed);
            sim.schedule_link_fault(
                SimTime::from_millis(100),
                SimTime::from_secs(2),
                LinkFault::all()
                    .with_drop(0.2)
                    .with_duplicate(0.1)
                    .with_reorder(0.3, SimDuration::from_millis(80)),
            );
            sim.run_until(SimTime::from_secs(2));
            sim.commits()
                .iter()
                .map(|c| (c.time.as_micros(), c.node.as_u32(), c.commit))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = pinger_sim(1, 8); // single node: broadcasts go nowhere
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn events_never_fire_before_schedule_time() {
        let mut sim = pinger_sim(3, 9);
        sim.run_until(SimTime::from_millis(150));
        let early = sim
            .commits()
            .iter()
            .filter(|c| c.time < SimTime::from_millis(100))
            .count();
        assert_eq!(early, 0, "first pings need one timer period plus latency");
    }
}
