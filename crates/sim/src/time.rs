//! Simulated time.
//!
//! The kernel measures time in integer microseconds wrapped in the
//! [`SimTime`] and [`SimDuration`] newtypes so that instants and spans can
//! never be confused ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in microseconds since the start of
/// the run.
///
/// # Examples
///
/// ```
/// use stabl_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(133);
/// assert_eq!(t.as_secs_f64(), 133.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use stabl_sim::SimDuration;
///
/// assert_eq!(SimDuration::from_millis(1500), SimDuration::from_micros(1_500_000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since the start of the run.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from milliseconds since the start of the run.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from seconds since the start of the run.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// This instant as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating instant addition.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span from seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// This span as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span as whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating span subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Multiplies the span by a non-negative factor, saturating on
    /// overflow.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0 && !factor.is_nan(),
            "invalid factor: {factor}"
        );
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Elapsed span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "time went backwards: {rhs} > {self}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(
            SimDuration::from_secs(1),
            SimDuration::from_micros(1_000_000)
        );
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(1.5),
            SimDuration::from_secs(3)
        );
        assert_eq!(
            SimDuration::from_micros(u64::MAX).mul_f64(2.0),
            SimDuration::from_micros(u64::MAX)
        );
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
