//! The protocol trait implemented by every simulated blockchain node, and
//! the [`Ctx`] handle through which a node interacts with the world.

use std::fmt::Debug;

use smallvec::SmallVec;

use crate::agenda::TimerRegistry;
use crate::{CaptureLevel, ContentionStats, DetRng, NodeId, SimDuration, SimTime};

/// Handle to a pending timer, usable to cancel it.
///
/// Packs the timer's registry slot and a generation stamp, so a handle
/// kept past its timer's firing can never cancel an unrelated timer
/// that happens to reuse the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// Inline capacity of a multicast target list before it spills to the
/// heap (committee sizes beyond this are rare in the modelled chains).
pub(crate) const MULTICAST_INLINE: usize = 8;

/// A deterministic state machine driven by the simulation kernel.
///
/// One instance runs per validator node. All interaction with the outside
/// world — sending messages, arming timers, committing transactions —
/// happens through the [`Ctx`] passed to each callback; effects are applied
/// by the kernel after the callback returns, which keeps re-entrancy
/// impossible and executions deterministic.
///
/// # Crash/restart semantics
///
/// When the harness crashes a node, the kernel stops delivering messages
/// and timers to it but keeps the instance. When the node is restarted,
/// [`Protocol::on_restart`] runs: the implementation must discard its
/// *volatile* state (mempool contents, in-flight votes, open timers — all
/// timers are force-cancelled by the kernel) while keeping its *durable*
/// state (the committed chain), mirroring a real validator rebooting from
/// disk.
pub trait Protocol: Sized {
    /// Wire message exchanged between nodes.
    type Msg: Clone + Debug;
    /// Client request submitted to a node (a transaction).
    type Request: Clone + Debug;
    /// Commit notification payload (typically a transaction id).
    type Commit: Clone + Debug;
    /// Timer token distinguishing the purposes of timers.
    type Timer: Clone + Debug;
    /// Static per-run configuration shared by all nodes.
    type Config: Clone;

    /// Constructs the node `id` of an `n`-node network and performs
    /// start-up work (arming the first timers, etc.).
    fn new(id: NodeId, n: usize, config: &Self::Config, ctx: &mut Ctx<'_, Self>) -> Self;

    /// Handles a message delivered from `from`.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self>);

    /// Handles an armed timer firing.
    fn on_timer(&mut self, timer: Self::Timer, ctx: &mut Ctx<'_, Self>);

    /// Handles a client submitting a request directly to this node.
    fn on_request(&mut self, request: Self::Request, ctx: &mut Ctx<'_, Self>);

    /// Reinitialises the node after a restart (see the trait docs).
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>);

    /// Reports this node's accumulated contention counters (speculative
    /// re-executions, conflict aborts, pool evictions/replacements).
    ///
    /// The kernel folds every node's report into [`SimStats`] when a
    /// run's statistics are read. The default reports zeros, which is
    /// correct for protocols whose model has no mempool or speculative
    /// execution layer.
    ///
    /// [`SimStats`]: crate::SimStats
    fn contention_stats(&self) -> ContentionStats {
        ContentionStats::default()
    }
}

/// An effect requested by a protocol callback, applied by the kernel after
/// the callback returns.
#[derive(Debug)]
pub(crate) enum Effect<P: Protocol> {
    Send {
        to: NodeId,
        msg: P::Msg,
    },
    /// One payload to every other node; the kernel expands the fanout
    /// (in ascending node order, skipping the sender) against a single
    /// arena-stored payload instead of `n - 1` eager clones.
    Broadcast {
        msg: P::Msg,
    },
    /// One payload to an explicit target list, expanded like
    /// [`Effect::Broadcast`] but in list order.
    Multicast {
        targets: SmallVec<NodeId, MULTICAST_INLINE>,
        msg: P::Msg,
    },
    SetTimer {
        id: TimerId,
        delay: SimDuration,
        token: P::Timer,
    },
    CancelTimer(TimerId),
    Commit(P::Commit),
    Panic(String),
    Log(String),
    Span(&'static str),
    Gauge {
        metric: &'static str,
        value: u64,
    },
}

/// The execution context passed to every [`Protocol`] callback.
///
/// Provides the current simulated time, the node's deterministic RNG and
/// buffered effect emission (sends, timers, commits).
#[derive(Debug)]
pub struct Ctx<'a, P: Protocol> {
    pub(crate) node: NodeId,
    pub(crate) n: usize,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) effects: &'a mut Vec<Effect<P>>,
    pub(crate) timers: &'a mut TimerRegistry,
    pub(crate) tracing: bool,
    pub(crate) capture: CaptureLevel,
}

impl<'a, P: Protocol> Ctx<'a, P> {
    /// The id of the node executing this callback.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The number of validator nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sends `msg` to `to`. Sending to self delivers through the network
    /// like any other message.
    pub fn send(&mut self, to: NodeId, msg: P::Msg) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Sends `msg` to every other node.
    ///
    /// The payload is stored once and fanned out by the kernel (see
    /// [`Effect::Broadcast`]); recipients observe exactly the same
    /// deliveries as `n - 1` individual [`Ctx::send`] calls in
    /// ascending node order.
    pub fn broadcast(&mut self, msg: P::Msg) {
        self.effects.push(Effect::Broadcast { msg });
    }

    /// Sends `msg` to each node in `targets`.
    pub fn multicast<I>(&mut self, targets: I, msg: P::Msg)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let targets: SmallVec<NodeId, MULTICAST_INLINE> = targets.into_iter().collect();
        self.effects.push(Effect::Multicast { targets, msg });
    }

    /// Arms a timer that fires after `delay` with `token`; returns a
    /// handle usable with [`Ctx::cancel_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: P::Timer) -> TimerId {
        let id = self.timers.arm();
        self.effects.push(Effect::SetTimer { id, delay, token });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Reports that this node has committed (finalised and executed)
    /// `commit`; recorded with the current time in the run's commit log.
    pub fn commit(&mut self, commit: P::Commit) {
        self.effects.push(Effect::Commit(commit));
    }

    /// Reports a fatal, unrecoverable node failure (the analogue of a
    /// Rust/Go `panic` in a real validator, like Solana's EAH abort).
    /// The node halts permanently and cannot be restarted.
    pub fn panic_node(&mut self, reason: impl Into<String>) {
        self.effects.push(Effect::Panic(reason.into()));
    }

    /// Records a diagnostic line in the simulation trace (retained when
    /// tracing is enabled on the simulation, and recorded as a typed
    /// [`SimEvent::Log`] under [`CaptureLevel::Full`]).
    ///
    /// [`SimEvent::Log`]: crate::SimEvent::Log
    pub fn log(&mut self, line: impl AsRef<str>) {
        if self.tracing || self.capture == CaptureLevel::Full {
            self.effects.push(Effect::Log(line.as_ref().to_owned()));
        }
    }

    /// Marks this node entering the consensus phase `phase` (e.g.
    /// `"sortition"`, `"snowball_poll"`, `"leader_slot"`), recorded as a
    /// typed [`SimEvent::Phase`] from [`CaptureLevel::Events`] up.
    ///
    /// A no-op below that level, so protocols can mark phases
    /// unconditionally without string formatting or hot-loop cost; the
    /// mark never perturbs determinism (it only records).
    ///
    /// [`SimEvent::Phase`]: crate::SimEvent::Phase
    pub fn span(&mut self, phase: &'static str) {
        if self.capture >= CaptureLevel::Events {
            self.effects.push(Effect::Span(phase));
        }
    }

    /// Samples the named per-node metric (e.g. `"mempool_depth"`,
    /// `"round"`, `"connections"`), recorded as a typed
    /// [`SimEvent::Gauge`] from [`CaptureLevel::Events`] up.
    ///
    /// Like [`Ctx::span`], a no-op below that level and
    /// deterministic-neutral above it: the sample only records, it never
    /// feeds back into protocol state or the RNG, so gauges can be
    /// emitted unconditionally on hot paths.
    ///
    /// [`SimEvent::Gauge`]: crate::SimEvent::Gauge
    pub fn gauge(&mut self, metric: &'static str, value: u64) {
        if self.capture >= CaptureLevel::Events {
            self.effects.push(Effect::Gauge { metric, value });
        }
    }
}
