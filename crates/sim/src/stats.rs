//! Run-level observations collected by the kernel: commit log, panics and
//! traffic counters.

use crate::{NodeId, SimTime};

/// One commit notification: node `node` committed `commit` at `time`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord<C> {
    /// When the commit happened on the simulated clock.
    pub time: SimTime,
    /// The node that reported the commit.
    pub node: NodeId,
    /// The protocol-defined commit payload (typically a transaction id).
    pub commit: C,
}

/// A fatal node failure reported through [`Ctx::panic_node`].
///
/// [`Ctx::panic_node`]: crate::Ctx::panic_node
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicRecord {
    /// When the node aborted.
    pub time: SimTime,
    /// The node that aborted.
    pub node: NodeId,
    /// The panic message.
    pub reason: String,
}

/// A line logged by a node through [`Ctx::log`] while tracing is enabled.
///
/// [`Ctx::log`]: crate::Ctx::log
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceLine {
    /// When the line was logged.
    pub time: SimTime,
    /// The node that logged it.
    pub node: NodeId,
    /// The logged text.
    pub line: String,
}

/// Aggregate traffic and scheduling counters for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the network by protocols.
    pub messages_sent: u64,
    /// Messages delivered to a running node.
    pub messages_delivered: u64,
    /// Messages dropped because the destination (or source) was crashed
    /// or panicked.
    pub messages_dropped_dead: u64,
    /// Messages dropped by partition rules.
    pub messages_dropped_partition: u64,
    /// Messages dropped by probabilistic link faults or asymmetric
    /// partitions.
    pub messages_dropped_link: u64,
    /// Extra message copies injected by duplicating link faults (each
    /// one adds a delivery on top of `messages_sent`).
    pub messages_duplicated_link: u64,
    /// Messages held back by reordering link faults (delivered late,
    /// possibly overtaken by packets sent after them).
    pub messages_reordered_link: u64,
    /// Timers that fired and were dispatched.
    pub timers_fired: u64,
    /// Timers skipped because they were cancelled or invalidated by a
    /// crash/restart.
    pub timers_stale: u64,
    /// Client requests delivered to a running node.
    pub requests_delivered: u64,
    /// Client requests dropped because the target node was down.
    pub requests_dropped: u64,
    /// Total events processed by the kernel.
    pub events_processed: u64,
    /// [`TraceLine`]s evicted from the bounded trace ring after it
    /// filled (long runs keep the newest lines; this counts the loss).
    pub dropped_trace_lines: u64,
}
