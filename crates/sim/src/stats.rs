//! Run-level observations collected by the kernel: commit log, panics and
//! traffic counters.

use crate::{NodeId, SimTime};

/// One commit notification: node `node` committed `commit` at `time`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRecord<C> {
    /// When the commit happened on the simulated clock.
    pub time: SimTime,
    /// The node that reported the commit.
    pub node: NodeId,
    /// The protocol-defined commit payload (typically a transaction id).
    pub commit: C,
}

/// A fatal node failure reported through [`Ctx::panic_node`].
///
/// [`Ctx::panic_node`]: crate::Ctx::panic_node
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicRecord {
    /// When the node aborted.
    pub time: SimTime,
    /// The node that aborted.
    pub node: NodeId,
    /// The panic message.
    pub reason: String,
}

/// A line logged by a node through [`Ctx::log`] while tracing is enabled.
///
/// [`Ctx::log`]: crate::Ctx::log
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceLine {
    /// When the line was logged.
    pub time: SimTime,
    /// The node that logged it.
    pub node: NodeId,
    /// The logged text.
    pub line: String,
}

/// Aggregate traffic and scheduling counters for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the network by protocols.
    pub messages_sent: u64,
    /// Messages delivered to a running node.
    pub messages_delivered: u64,
    /// Messages dropped because the destination (or source) was crashed
    /// or panicked.
    pub messages_dropped_dead: u64,
    /// Messages dropped by partition rules.
    pub messages_dropped_partition: u64,
    /// Messages dropped by probabilistic link faults or asymmetric
    /// partitions.
    pub messages_dropped_link: u64,
    /// Extra message copies injected by duplicating link faults (each
    /// one adds a delivery on top of `messages_sent`).
    pub messages_duplicated_link: u64,
    /// Messages held back by reordering link faults (delivered late,
    /// possibly overtaken by packets sent after them).
    pub messages_reordered_link: u64,
    /// Timers that fired and were dispatched.
    pub timers_fired: u64,
    /// Timers skipped because they were cancelled or invalidated by a
    /// crash/restart.
    pub timers_stale: u64,
    /// Client requests delivered to a running node.
    pub requests_delivered: u64,
    /// Client requests dropped because the target node was down.
    pub requests_dropped: u64,
    /// Total events processed by the kernel.
    pub events_processed: u64,
    /// [`TraceLine`]s evicted from the bounded trace ring after it
    /// filled (long runs keep the newest lines; this counts the loss).
    pub dropped_trace_lines: u64,
    /// Speculative transaction executions that had to be redone —
    /// Block-STM within-block conflict re-executions plus
    /// `SEQUENCE_NUMBER_TOO_OLD` re-runs (folded from per-node
    /// [`ContentionStats`]).
    pub speculative_reexecutions: u64,
    /// Speculative executions aborted because another transaction in the
    /// same block wrote an account they read (folded from per-node
    /// [`ContentionStats`]).
    pub conflict_aborts: u64,
    /// Transactions a node's pool turned away for capacity (folded from
    /// per-node [`ContentionStats`]).
    pub pool_evictions: u64,
    /// Attempts to occupy an already-taken (account, nonce) pool slot
    /// with a different transaction — first arrival wins, like
    /// production pools without fee bumping (folded from per-node
    /// [`ContentionStats`]).
    pub pool_replacements: u64,
}

impl SimStats {
    /// Folds one node's contention counters into the run totals.
    pub fn absorb_contention(&mut self, c: &ContentionStats) {
        self.speculative_reexecutions += c.speculative_reexecutions;
        self.conflict_aborts += c.conflict_aborts;
        self.pool_evictions += c.pool_evictions;
        self.pool_replacements += c.pool_replacements;
    }
}

/// Per-node contention counters reported by a protocol through
/// [`Protocol::contention_stats`]; the kernel folds them into
/// [`SimStats`] when a run's statistics are read.
///
/// All four stay zero for the paper's uniform constant-rate workload on
/// honest configurations — they move when production-shaped traffic
/// (Zipf skew, bursts, conflicting read-write sets) stresses the
/// mempool and execution layers.
///
/// [`Protocol::contention_stats`]: crate::Protocol::contention_stats
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentionStats {
    /// Speculative executions that were redone (Block-STM conflict
    /// re-executions and stale re-runs).
    pub speculative_reexecutions: u64,
    /// Speculative executions aborted on a read-write conflict.
    pub conflict_aborts: u64,
    /// Transactions turned away by a full pool.
    pub pool_evictions: u64,
    /// Conflicting same-nonce arrivals (attempted replacements).
    pub pool_replacements: u64,
}

impl ContentionStats {
    /// Sums another node's counters into this one.
    pub fn merge(&mut self, other: &ContentionStats) {
        self.speculative_reexecutions += other.speculative_reexecutions;
        self.conflict_aborts += other.conflict_aborts;
        self.pool_evictions += other.pool_evictions;
        self.pool_replacements += other.pool_replacements;
    }

    /// Total contention events of any kind.
    pub fn total(&self) -> u64 {
        self.speculative_reexecutions
            + self.conflict_aborts
            + self.pool_evictions
            + self.pool_replacements
    }
}
