//! Node-local resource accounting.
//!
//! [`CpuMeter`] models the exponentially-decaying CPU usage tracker that
//! AvalancheGo's `cpuResourceTracker.Usage` exposes to its inbound message
//! throttler: work charges usage instantaneously, and usage decays towards
//! zero with a configurable half-life.

use crate::{SimDuration, SimTime};

/// An exponentially-decaying usage meter.
///
/// `usage` is expressed in "cores": charging 1.0 core-second over one
/// second of simulated time sustains a usage near 1.0.
///
/// # Examples
///
/// ```
/// use stabl_sim::{CpuMeter, SimDuration, SimTime};
///
/// let mut meter = CpuMeter::new(SimDuration::from_secs(5));
/// meter.charge(SimTime::from_secs(0), 2.0);
/// let now = meter.usage(SimTime::from_secs(5));
/// assert!(now < 2.0 && now > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuMeter {
    half_life: SimDuration,
    usage: f64,
    last: SimTime,
}

impl CpuMeter {
    /// Creates a meter whose accumulated usage halves every `half_life`.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is zero.
    pub fn new(half_life: SimDuration) -> Self {
        assert!(!half_life.is_zero(), "half-life must be positive");
        CpuMeter {
            half_life,
            usage: 0.0,
            last: SimTime::ZERO,
        }
    }

    /// Adds `cost` (core-seconds) of work at time `now`.
    pub fn charge(&mut self, now: SimTime, cost: f64) {
        self.decay_to(now);
        self.usage += cost.max(0.0);
    }

    /// Current decayed usage at time `now`.
    pub fn usage(&mut self, now: SimTime) -> f64 {
        self.decay_to(now);
        self.usage
    }

    /// Current decayed usage at `now` without updating the meter
    /// (read-only diagnostics).
    pub fn usage_peek(&self, now: SimTime) -> f64 {
        if now <= self.last {
            return self.usage;
        }
        let dt = (now - self.last).as_secs_f64();
        self.usage * 0.5f64.powf(dt / self.half_life.as_secs_f64())
    }

    /// Resets the meter to zero (e.g. on node restart).
    pub fn reset(&mut self, now: SimTime) {
        self.usage = 0.0;
        self.last = now;
    }

    fn decay_to(&mut self, now: SimTime) {
        if now <= self.last {
            return;
        }
        let dt = (now - self.last).as_secs_f64();
        let hl = self.half_life.as_secs_f64();
        self.usage *= 0.5f64.powf(dt / hl);
        self.last = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decays_by_half_each_half_life() {
        let mut m = CpuMeter::new(SimDuration::from_secs(2));
        m.charge(SimTime::ZERO, 8.0);
        assert!((m.usage(SimTime::from_secs(2)) - 4.0).abs() < 1e-9);
        assert!((m.usage(SimTime::from_secs(4)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn charges_accumulate() {
        let mut m = CpuMeter::new(SimDuration::from_secs(10));
        m.charge(SimTime::ZERO, 1.0);
        m.charge(SimTime::ZERO, 1.0);
        assert!((m.usage(SimTime::ZERO) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_cost_ignored() {
        let mut m = CpuMeter::new(SimDuration::from_secs(1));
        m.charge(SimTime::ZERO, -5.0);
        assert_eq!(m.usage(SimTime::ZERO), 0.0);
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let mut m = CpuMeter::new(SimDuration::from_secs(1));
        m.charge(SimTime::from_secs(10), 1.0);
        // Query at an earlier time: no decay, no panic.
        assert!((m.usage(SimTime::from_secs(5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_usage() {
        let mut m = CpuMeter::new(SimDuration::from_secs(1));
        m.charge(SimTime::ZERO, 3.0);
        m.reset(SimTime::from_secs(1));
        assert_eq!(m.usage(SimTime::from_secs(1)), 0.0);
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn zero_half_life_rejected() {
        let _ = CpuMeter::new(SimDuration::ZERO);
    }
}
