//! Deterministic pseudo-random number generation.
//!
//! The kernel owns its PRNG instead of depending on the `rand` crate
//! because value stability across platforms and crate versions is a core
//! deliverable: a seed must reproduce a run bit-for-bit forever. The
//! implementation is the well-known xoshiro256\*\* generator seeded through
//! SplitMix64, the combination recommended by the xoshiro authors.

use crate::SimDuration;

/// SplitMix64 step, used to expand a single `u64` seed into a full
/// xoshiro256\*\* state and to derive independent per-node streams.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// Every node and subsystem in a simulation owns an independent stream
/// derived from the master seed, so adding draws in one component never
/// perturbs another.
///
/// # Examples
///
/// ```
/// use stabl_sim::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent stream labelled by `label`.
    ///
    /// Streams with different labels derived from the same generator are
    /// statistically independent; the parent generator is not advanced.
    pub fn derive(&self, label: u64) -> DetRng {
        let mut sm = self.s[0] ^ self.s[2] ^ label.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            // The rejection threshold `(2^64 - bound) % bound` is below
            // `bound`, so `low >= bound` accepts without the 64-bit
            // division; the exact threshold is only computed in the
            // `low < bound` sliver (probability `bound / 2^64`).
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected: retry with fresh bits to stay unbiased.
        }
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range: [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly random duration in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.range_inclusive(lo.as_micros(), hi.as_micros()))
    }

    /// Chooses `count` distinct indices out of `0..population` (a uniform
    /// sample without replacement, Floyd's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `count > population`.
    pub fn sample_indices(&mut self, population: usize, count: usize) -> Vec<usize> {
        assert!(count <= population, "cannot sample {count} of {population}");
        let mut chosen: Vec<usize> = Vec::with_capacity(count);
        for j in population - count..population {
            let t = self.next_below(j as u64 + 1) as usize;
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot pick from an empty slice");
        &slice[self.next_below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_stable_and_independent() {
        let root = DetRng::new(99);
        let mut c1 = root.derive(1);
        let mut c1_again = root.derive(1);
        let mut c2 = root.derive(2);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::new(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = DetRng::new(4);
        let seen: HashSet<u64> = (0..200).map(|_| rng.next_below(4)).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut rng = DetRng::new(5);
        let seen: HashSet<u64> = (0..500).map(|_| rng.range_inclusive(10, 12)).collect();
        assert!(seen.contains(&10) && seen.contains(&12));
        assert_eq!(rng.range_inclusive(7, 7), 7);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(6);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(8);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = DetRng::new(9);
        for _ in 0..50 {
            let sample = rng.sample_indices(10, 4);
            assert_eq!(sample.len(), 4);
            let set: HashSet<usize> = sample.iter().copied().collect();
            assert_eq!(set.len(), 4);
            assert!(sample.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = DetRng::new(10);
        let sample = rng.sample_indices(5, 5);
        let set: HashSet<usize> = sample.into_iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(11);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn rough_uniformity_of_f64() {
        let mut rng = DetRng::new(12);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean drifted: {mean}");
    }
}
