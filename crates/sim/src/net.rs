//! The simulated network: node identities, link latency and partitions.

use std::collections::BTreeSet;
use std::fmt;

use crate::{DetRng, SimDuration};

/// Identifies a validator node in a simulation.
///
/// Node ids are dense indices `0..n`, which lets protocol implementations
/// index per-node tables directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node, usable to index per-node tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over all node ids of an `n`-node network.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u32).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// Link latency model: a base one-way delay plus uniform jitter.
///
/// The paper deploys its 15 VMs inside one Proxmox cluster, so a single
/// homogeneous model is faithful; geo-distributed profiles can be modelled
/// with a larger base and jitter.
///
/// # Examples
///
/// ```
/// use stabl_sim::{LatencyModel, SimDuration};
///
/// let lan = LatencyModel::new(SimDuration::from_millis(5), SimDuration::from_millis(5));
/// assert_eq!(lan.min_delay(), SimDuration::from_millis(5));
/// assert_eq!(lan.max_delay(), SimDuration::from_millis(10));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    base: SimDuration,
    jitter: SimDuration,
}

impl LatencyModel {
    /// Creates a model with one-way delay uniform in `[base, base + jitter]`.
    #[inline]
    pub const fn new(base: SimDuration, jitter: SimDuration) -> Self {
        LatencyModel { base, jitter }
    }

    /// A LAN-like profile (5–10 ms one way), matching the paper's cluster.
    pub const fn lan() -> Self {
        LatencyModel::new(SimDuration::from_millis(5), SimDuration::from_millis(5))
    }

    /// A WAN-like profile (40–120 ms one way) for geo-distributed studies.
    pub const fn wan() -> Self {
        LatencyModel::new(SimDuration::from_millis(40), SimDuration::from_millis(80))
    }

    /// The smallest possible one-way delay.
    pub fn min_delay(&self) -> SimDuration {
        self.base
    }

    /// The largest possible one-way delay.
    pub fn max_delay(&self) -> SimDuration {
        self.base + self.jitter
    }

    /// Samples a one-way delay.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        if self.jitter.is_zero() {
            self.base
        } else {
            self.base + rng.duration_between(SimDuration::ZERO, self.jitter)
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::lan()
    }
}

/// A region-based latency topology: every node lives in a region and
/// the one-way delay between two nodes is drawn from the latency model
/// of their region pair.
///
/// # Examples
///
/// ```
/// use stabl_sim::{LatencyModel, LatencyTopology, NodeId, SimDuration};
///
/// // Two regions: a LAN locally, an ocean in between.
/// let local = LatencyModel::lan();
/// let ocean = LatencyModel::new(SimDuration::from_millis(70), SimDuration::from_millis(30));
/// let topology = LatencyTopology::new(
///     vec![vec![local, ocean], vec![ocean, local]],
///     vec![0, 0, 1, 1],
/// );
/// assert_eq!(topology.model_for(NodeId::new(0), NodeId::new(1)), local);
/// assert_eq!(topology.model_for(NodeId::new(0), NodeId::new(3)), ocean);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyTopology {
    matrix: Vec<Vec<LatencyModel>>,
    assignment: Vec<usize>,
}

impl LatencyTopology {
    /// Creates a topology from a square region-pair latency `matrix` and
    /// a node→region `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or not square, or if an assignment
    /// references a missing region.
    pub fn new(matrix: Vec<Vec<LatencyModel>>, assignment: Vec<usize>) -> LatencyTopology {
        let regions = matrix.len();
        assert!(regions > 0, "topology needs at least one region");
        assert!(
            matrix.iter().all(|row| row.len() == regions),
            "latency matrix must be square"
        );
        assert!(
            assignment.iter().all(|r| *r < regions),
            "assignment references a missing region"
        );
        LatencyTopology { matrix, assignment }
    }

    /// A canned geo-distributed profile: `regions` regions with LAN
    /// latency inside a region and WAN latency between regions, nodes
    /// assigned round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is zero.
    pub fn geo(regions: usize, n: usize) -> LatencyTopology {
        assert!(regions > 0, "topology needs at least one region");
        let wan = LatencyModel::wan();
        let lan = LatencyModel::lan();
        let matrix = (0..regions)
            .map(|a| {
                (0..regions)
                    .map(|b| if a == b { lan } else { wan })
                    .collect()
            })
            .collect();
        let assignment = (0..n).map(|i| i % regions).collect();
        LatencyTopology::new(matrix, assignment)
    }

    /// The region of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` has no assignment.
    pub fn region_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()]
    }

    /// The latency model governing packets from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either node has no assignment.
    pub fn model_for(&self, from: NodeId, to: NodeId) -> LatencyModel {
        self.matrix[self.region_of(from)][self.region_of(to)]
    }

    /// Samples a one-way delay for a packet from `from` to `to`.
    #[inline]
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> SimDuration {
        self.model_for(from, to).sample(rng)
    }
}

/// Handle to an installed partition rule, used to remove it again.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(u64);

/// A netfilter-like rule that drops every packet between two node sets.
///
/// This mirrors how Stabl's observers program the Linux `netfilter` /
/// traffic-control interface on each machine: packets whose source is in
/// one group and destination in the other are silently dropped, in both
/// directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionRule {
    group_a: BTreeSet<NodeId>,
    group_b: BTreeSet<NodeId>,
}

impl PartitionRule {
    /// Creates a rule severing `group_a` from `group_b`.
    ///
    /// # Panics
    ///
    /// Panics if the groups overlap (a node cannot be severed from
    /// itself).
    pub fn new<A, B>(group_a: A, group_b: B) -> Self
    where
        A: IntoIterator<Item = NodeId>,
        B: IntoIterator<Item = NodeId>,
    {
        let group_a: BTreeSet<NodeId> = group_a.into_iter().collect();
        let group_b: BTreeSet<NodeId> = group_b.into_iter().collect();
        assert!(
            group_a.is_disjoint(&group_b),
            "partition groups must be disjoint"
        );
        PartitionRule { group_a, group_b }
    }

    /// Creates the paper's canonical rule: isolate `isolated` from every
    /// other node in an `n`-node network.
    pub fn isolate<I>(isolated: I, n: usize) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let group_a: BTreeSet<NodeId> = isolated.into_iter().collect();
        let group_b: BTreeSet<NodeId> = NodeId::all(n).filter(|id| !group_a.contains(id)).collect();
        PartitionRule { group_a, group_b }
    }

    /// `true` if a packet from `from` to `to` matches this rule (and is
    /// therefore dropped).
    pub fn blocks(&self, from: NodeId, to: NodeId) -> bool {
        (self.group_a.contains(&from) && self.group_b.contains(&to))
            || (self.group_b.contains(&from) && self.group_a.contains(&to))
    }
}

/// Handle to an installed link-fault rule, used to remove it again.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkFaultId(u64);

/// A message-level fault rule on a set of directed links.
///
/// Where a [`PartitionRule`] severs links symmetrically and completely,
/// a `LinkFault` degrades them: each matching packet is independently
/// dropped with probability `drop_p`, duplicated with probability
/// `dup_p` (the copy arrives later, like a retransmit), or held back by
/// an extra uniformly-sampled delay with probability `reorder_p` — so
/// packets sent afterwards can overtake it, modelling UDP-style
/// reordering on an otherwise FIFO link. A rule with `drop_p = 1.0` is
/// an *asymmetric partition*: traffic dies in one direction while the
/// reverse direction stays up (the half-open links real netfilter
/// misconfigurations produce).
///
/// Rules match directionally: a packet from `a` to `b` matches if `a`
/// is in the source group (or the group is `None` = every node) and
/// `b` is in the destination group.
///
/// All randomness is drawn from the kernel's deterministic network RNG,
/// so runs stay bit-identical per seed.
///
/// # Examples
///
/// ```
/// use stabl_sim::{LinkFault, NodeId, SimDuration};
///
/// // 5 % loss on every link.
/// let lossy = LinkFault::all().with_drop(0.05);
/// assert!(lossy.matches(NodeId::new(0), NodeId::new(1)));
///
/// // node0 can talk to node1, but nothing flows back.
/// let half_open = LinkFault::sever([NodeId::new(1)], [NodeId::new(0)]);
/// assert!(half_open.matches(NodeId::new(1), NodeId::new(0)));
/// assert!(!half_open.matches(NodeId::new(0), NodeId::new(1)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFault {
    from: Option<BTreeSet<NodeId>>,
    to: Option<BTreeSet<NodeId>>,
    drop_p: f64,
    dup_p: f64,
    reorder_p: f64,
    reorder_extra: SimDuration,
}

impl LinkFault {
    /// A rule matching every directed link, with no effects until a
    /// `with_*` builder arms one.
    pub fn all() -> LinkFault {
        LinkFault {
            from: None,
            to: None,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_extra: SimDuration::ZERO,
        }
    }

    /// A rule matching only packets from a node in `from` to a node in
    /// `to` (one direction).
    pub fn between<A, B>(from: A, to: B) -> LinkFault
    where
        A: IntoIterator<Item = NodeId>,
        B: IntoIterator<Item = NodeId>,
    {
        LinkFault {
            from: Some(from.into_iter().collect()),
            to: Some(to.into_iter().collect()),
            ..LinkFault::all()
        }
    }

    /// An asymmetric partition: every packet from `from` to `to` is
    /// dropped; the reverse direction is untouched.
    pub fn sever<A, B>(from: A, to: B) -> LinkFault
    where
        A: IntoIterator<Item = NodeId>,
        B: IntoIterator<Item = NodeId>,
    {
        LinkFault::between(from, to).with_drop(1.0)
    }

    /// Sets the per-packet drop probability.
    pub fn with_drop(mut self, p: f64) -> LinkFault {
        self.drop_p = p;
        self
    }

    /// Sets the per-packet duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> LinkFault {
        self.dup_p = p;
        self
    }

    /// Sets the per-packet reordering probability and the maximum extra
    /// delay a reordered packet is held back by (sampled uniformly in
    /// `[0, extra]`).
    pub fn with_reorder(mut self, p: f64, extra: SimDuration) -> LinkFault {
        self.reorder_p = p;
        self.reorder_extra = extra;
        self
    }

    /// The drop probability.
    pub fn drop_p(&self) -> f64 {
        self.drop_p
    }

    /// The duplication probability.
    pub fn dup_p(&self) -> f64 {
        self.dup_p
    }

    /// The reordering probability.
    pub fn reorder_p(&self) -> f64 {
        self.reorder_p
    }

    /// The maximum extra delay of a reordered packet.
    pub fn reorder_extra(&self) -> SimDuration {
        self.reorder_extra
    }

    /// The source group (`None` = every node).
    pub fn from_group(&self) -> Option<&BTreeSet<NodeId>> {
        self.from.as_ref()
    }

    /// The destination group (`None` = every node).
    pub fn to_group(&self) -> Option<&BTreeSet<NodeId>> {
        self.to.as_ref()
    }

    /// Rebuilds a rule from its serialised parts (used by the serde
    /// support; prefer the builders above).
    pub fn from_parts(
        from: Option<Vec<NodeId>>,
        to: Option<Vec<NodeId>>,
        drop_p: f64,
        dup_p: f64,
        reorder_p: f64,
        reorder_extra: SimDuration,
    ) -> LinkFault {
        LinkFault {
            from: from.map(|v| v.into_iter().collect()),
            to: to.map(|v| v.into_iter().collect()),
            drop_p,
            dup_p,
            reorder_p,
            reorder_extra,
        }
    }

    /// `true` if every armed probability lies in `[0, 1]`.
    pub fn probabilities_valid(&self) -> bool {
        [self.drop_p, self.dup_p, self.reorder_p]
            .iter()
            .all(|p| (0.0..=1.0).contains(p))
    }

    /// `true` if a packet from `from` to `to` matches this rule.
    pub fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.as_ref().is_none_or(|g| g.contains(&from))
            && self.to.as_ref().is_none_or(|g| g.contains(&to))
    }

    /// `true` if this rule deterministically kills matching packets
    /// (an asymmetric partition rather than probabilistic loss).
    pub fn is_total_drop(&self) -> bool {
        self.drop_p >= 1.0
    }
}

/// What the active link faults decided for one packet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkVerdict {
    /// The packet is dropped before delivery.
    pub drop: bool,
    /// A duplicate copy is delivered as well.
    pub duplicate: bool,
    /// Extra hold-back delay (reordering); zero if none.
    pub extra: SimDuration,
}

/// The network fabric of a simulation: latency plus active partitions,
/// message-level link faults and per-node slowdowns.
#[derive(Clone, Debug)]
pub struct Network {
    latency: LatencyModel,
    topology: Option<LatencyTopology>,
    rules: Vec<(PartitionId, PartitionRule)>,
    next_rule: u64,
    dropped_by_partition: u64,
    link_faults: Vec<(LinkFaultId, LinkFault)>,
    next_link_fault: u64,
    link_drops: u64,
    link_dups: u64,
    link_reorders: u64,
    /// Extra delay added to every message a node sends (a slow but
    /// correct node: overloaded CPU, congested uplink).
    slowdowns: std::collections::BTreeMap<NodeId, SimDuration>,
}

impl Network {
    /// Creates a fabric with the given latency model and no partitions.
    pub fn new(latency: LatencyModel) -> Self {
        Network {
            latency,
            topology: None,
            rules: Vec::new(),
            next_rule: 0,
            dropped_by_partition: 0,
            link_faults: Vec::new(),
            next_link_fault: 0,
            link_drops: 0,
            link_dups: 0,
            link_reorders: 0,
            slowdowns: std::collections::BTreeMap::new(),
        }
    }

    /// The latency model in force (the uniform fallback when a
    /// topology is installed).
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Installs a region-based latency topology; per-pair models replace
    /// the uniform latency for every subsequent packet.
    pub fn set_topology(&mut self, topology: LatencyTopology) {
        self.topology = Some(topology);
    }

    /// The installed topology, if any.
    pub fn topology(&self) -> Option<&LatencyTopology> {
        self.topology.as_ref()
    }

    /// Installs a drop rule; returns its handle.
    pub fn install(&mut self, rule: PartitionRule) -> PartitionId {
        let id = PartitionId(self.next_rule);
        self.next_rule += 1;
        self.rules.push((id, rule));
        id
    }

    /// Removes a rule; `true` if it was present.
    pub fn remove(&mut self, id: PartitionId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|(rid, _)| *rid != id);
        self.rules.len() != before
    }

    /// `true` if any active rule drops packets from `from` to `to`.
    #[inline]
    pub fn blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.rules.iter().any(|(_, r)| r.blocks(from, to))
    }

    /// `true` while no partition rule and no link fault is installed —
    /// the kernel skips all per-packet fault checks on this fast path.
    #[inline]
    pub fn quiet(&self) -> bool {
        self.rules.is_empty() && self.link_faults.is_empty()
    }

    /// Records a partition drop (kernel book-keeping).
    pub(crate) fn note_partition_drop(&mut self) {
        self.dropped_by_partition += 1;
    }

    /// Number of packets dropped by partition rules so far.
    pub fn partition_drops(&self) -> u64 {
        self.dropped_by_partition
    }

    /// Number of active rules.
    pub fn active_rules(&self) -> usize {
        self.rules.len()
    }

    /// Installs a message-level link fault; returns its handle.
    pub fn install_link_fault(&mut self, fault: LinkFault) -> LinkFaultId {
        let id = LinkFaultId(self.next_link_fault);
        self.next_link_fault += 1;
        self.link_faults.push((id, fault));
        id
    }

    /// Removes a link fault; `true` if it was present.
    pub fn remove_link_fault(&mut self, id: LinkFaultId) -> bool {
        let before = self.link_faults.len();
        self.link_faults.retain(|(fid, _)| *fid != id);
        self.link_faults.len() != before
    }

    /// Number of active link faults.
    #[inline]
    pub fn active_link_faults(&self) -> usize {
        self.link_faults.len()
    }

    /// `true` if an active *total-drop* link fault (asymmetric
    /// partition) kills packets from `from` to `to`. Probabilistic
    /// rules are decided per packet by [`Network`] internals instead.
    #[inline]
    pub fn link_severed(&self, from: NodeId, to: NodeId) -> bool {
        self.link_faults
            .iter()
            .any(|(_, f)| f.is_total_drop() && f.matches(from, to))
    }

    /// Decides the fate of one packet under the active link faults,
    /// drawing from `rng` only for matching probabilistic rules (so
    /// fault-free runs consume no extra randomness). Effects of
    /// multiple matching rules combine: any drop wins, any duplication
    /// duplicates, reorder delays add up. Book-keeping counters are
    /// updated here.
    pub(crate) fn link_verdict(
        &mut self,
        from: NodeId,
        to: NodeId,
        rng: &mut DetRng,
    ) -> LinkVerdict {
        let mut verdict = LinkVerdict::default();
        for (_, fault) in &self.link_faults {
            if !fault.matches(from, to) {
                continue;
            }
            if fault.drop_p > 0.0 && (fault.is_total_drop() || rng.chance(fault.drop_p)) {
                verdict.drop = true;
            }
            if fault.dup_p > 0.0 && rng.chance(fault.dup_p) {
                verdict.duplicate = true;
            }
            if fault.reorder_p > 0.0
                && !fault.reorder_extra.is_zero()
                && rng.chance(fault.reorder_p)
            {
                verdict.extra += rng.duration_between(SimDuration::ZERO, fault.reorder_extra);
            }
        }
        if verdict.drop {
            // A dropped packet is neither duplicated nor delayed.
            verdict.duplicate = false;
            verdict.extra = SimDuration::ZERO;
            self.link_drops += 1;
        } else {
            if verdict.duplicate {
                self.link_dups += 1;
            }
            if !verdict.extra.is_zero() {
                self.link_reorders += 1;
            }
        }
        verdict
    }

    /// Records a link-fault drop decided at delivery time (a packet
    /// already in flight when an asymmetric partition was installed).
    pub(crate) fn note_link_drop(&mut self) {
        self.link_drops += 1;
    }

    /// Packets dropped by link faults so far.
    pub fn link_drops(&self) -> u64 {
        self.link_drops
    }

    /// Packets duplicated by link faults so far.
    pub fn link_dups(&self) -> u64 {
        self.link_dups
    }

    /// Packets held back (reordered) by link faults so far.
    pub fn link_reorders(&self) -> u64 {
        self.link_reorders
    }

    /// Samples a one-way delay for a packet from `from` to `to`.
    #[inline]
    pub fn sample_delay(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> SimDuration {
        match &self.topology {
            Some(topology) => topology.sample(from, to, rng),
            None => {
                let _ = (from, to);
                self.latency.sample(rng)
            }
        }
    }

    /// Slows `node` down: every message it sends is delayed by `extra`
    /// on top of the link latency. `SimDuration::ZERO` removes the
    /// slowdown.
    pub fn set_slowdown(&mut self, node: NodeId, extra: SimDuration) {
        if extra.is_zero() {
            self.slowdowns.remove(&node);
        } else {
            self.slowdowns.insert(node, extra);
        }
    }

    /// The extra outbound delay of `node` (zero if not slowed).
    #[inline]
    pub fn slowdown(&self, node: NodeId) -> SimDuration {
        self.slowdowns
            .get(&node)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new(LatencyModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.as_u32(), 7);
        assert_eq!(id.to_string(), "node7");
        assert_eq!(NodeId::all(3).count(), 3);
    }

    #[test]
    fn latency_sample_within_bounds() {
        let model = LatencyModel::new(SimDuration::from_millis(10), SimDuration::from_millis(20));
        let mut rng = DetRng::new(1);
        for _ in 0..500 {
            let d = model.sample(&mut rng);
            assert!(d >= model.min_delay() && d <= model.max_delay());
        }
    }

    #[test]
    fn zero_jitter_is_constant() {
        let model = LatencyModel::new(SimDuration::from_millis(10), SimDuration::ZERO);
        let mut rng = DetRng::new(2);
        assert_eq!(model.sample(&mut rng), SimDuration::from_millis(10));
    }

    #[test]
    fn partition_rule_blocks_both_directions() {
        let rule = PartitionRule::new(ids(&[0, 1]), ids(&[2, 3]));
        assert!(rule.blocks(NodeId::new(0), NodeId::new(2)));
        assert!(rule.blocks(NodeId::new(3), NodeId::new(1)));
        assert!(!rule.blocks(NodeId::new(0), NodeId::new(1)));
        assert!(!rule.blocks(NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    fn isolate_builds_complement() {
        let rule = PartitionRule::isolate(ids(&[4]), 6);
        assert!(rule.blocks(NodeId::new(4), NodeId::new(0)));
        assert!(rule.blocks(NodeId::new(5), NodeId::new(4)));
        assert!(!rule.blocks(NodeId::new(0), NodeId::new(5)));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_groups_rejected() {
        let _ = PartitionRule::new(ids(&[0, 1]), ids(&[1, 2]));
    }

    #[test]
    fn topology_routes_by_region() {
        let lan = LatencyModel::lan();
        let wan = LatencyModel::wan();
        let topology = LatencyTopology::new(vec![vec![lan, wan], vec![wan, lan]], vec![0, 1, 0, 1]);
        assert_eq!(topology.region_of(NodeId::new(2)), 0);
        assert_eq!(topology.model_for(NodeId::new(0), NodeId::new(2)), lan);
        assert_eq!(topology.model_for(NodeId::new(0), NodeId::new(1)), wan);
        let mut rng = DetRng::new(5);
        for _ in 0..100 {
            let d = topology.sample(NodeId::new(0), NodeId::new(1), &mut rng);
            assert!(d >= wan.min_delay() && d <= wan.max_delay());
        }
    }

    #[test]
    fn geo_profile_assigns_round_robin() {
        let topology = LatencyTopology::geo(3, 7);
        assert_eq!(topology.region_of(NodeId::new(0)), 0);
        assert_eq!(topology.region_of(NodeId::new(4)), 1);
        assert_eq!(topology.region_of(NodeId::new(6)), 0);
        assert_eq!(
            topology.model_for(NodeId::new(0), NodeId::new(3)),
            LatencyModel::lan(),
            "same region"
        );
        assert_eq!(
            topology.model_for(NodeId::new(0), NodeId::new(1)),
            LatencyModel::wan(),
            "cross region"
        );
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_matrix_rejected() {
        let lan = LatencyModel::lan();
        let _ = LatencyTopology::new(vec![vec![lan, lan], vec![lan]], vec![0]);
    }

    #[test]
    fn network_with_topology_samples_per_pair() {
        let mut net = Network::default();
        net.set_topology(LatencyTopology::geo(2, 4));
        assert!(net.topology().is_some());
        let mut rng = DetRng::new(9);
        let near = net.sample_delay(NodeId::new(0), NodeId::new(2), &mut rng);
        assert!(near <= LatencyModel::lan().max_delay());
        let far = net.sample_delay(NodeId::new(0), NodeId::new(1), &mut rng);
        assert!(far >= LatencyModel::wan().min_delay());
    }

    #[test]
    fn slowdowns_set_and_clear() {
        let mut net = Network::default();
        let node = NodeId::new(3);
        assert!(net.slowdown(node).is_zero());
        net.set_slowdown(node, SimDuration::from_millis(250));
        assert_eq!(net.slowdown(node), SimDuration::from_millis(250));
        net.set_slowdown(node, SimDuration::ZERO);
        assert!(net.slowdown(node).is_zero());
    }

    #[test]
    fn network_install_and_remove() {
        let mut net = Network::default();
        let a = NodeId::new(0);
        let b = NodeId::new(5);
        assert!(!net.blocked(a, b));
        let id = net.install(PartitionRule::isolate([b], 10));
        assert!(net.blocked(a, b));
        assert!(net.blocked(b, a));
        assert_eq!(net.active_rules(), 1);
        assert!(net.remove(id));
        assert!(!net.blocked(a, b));
        assert!(!net.remove(id), "double remove reports absence");
    }

    #[test]
    fn link_fault_matches_directionally() {
        let fault = LinkFault::between(ids(&[0, 1]), ids(&[2]));
        assert!(fault.matches(NodeId::new(0), NodeId::new(2)));
        assert!(fault.matches(NodeId::new(1), NodeId::new(2)));
        assert!(!fault.matches(NodeId::new(2), NodeId::new(0)), "one-way");
        assert!(!fault.matches(NodeId::new(0), NodeId::new(1)));
        assert!(LinkFault::all().matches(NodeId::new(7), NodeId::new(9)));
    }

    #[test]
    fn sever_is_total_drop() {
        let fault = LinkFault::sever(ids(&[0]), ids(&[1]));
        assert!(fault.is_total_drop());
        assert!(fault.probabilities_valid());
        assert!(!LinkFault::all().with_drop(0.5).is_total_drop());
        assert!(!LinkFault::all().with_drop(1.5).probabilities_valid());
    }

    #[test]
    fn link_fault_install_and_remove() {
        let mut net = Network::default();
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        assert!(!net.link_severed(a, b));
        let id = net.install_link_fault(LinkFault::sever([a], [b]));
        assert!(net.link_severed(a, b));
        assert!(!net.link_severed(b, a), "reverse direction stays up");
        assert_eq!(net.active_link_faults(), 1);
        assert!(net.remove_link_fault(id));
        assert!(!net.link_severed(a, b));
        assert!(!net.remove_link_fault(id), "double remove reports absence");
    }

    #[test]
    fn probabilistic_loss_is_not_severed() {
        let mut net = Network::default();
        net.install_link_fault(LinkFault::all().with_drop(0.99));
        assert!(
            !net.link_severed(NodeId::new(0), NodeId::new(1)),
            "only drop_p = 1.0 kills in-flight packets"
        );
    }

    #[test]
    fn verdict_counts_and_respects_probabilities() {
        let mut net = Network::default();
        net.install_link_fault(LinkFault::all().with_drop(0.5));
        let mut rng = DetRng::new(11);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mut dropped = 0u64;
        for _ in 0..1_000 {
            if net.link_verdict(a, b, &mut rng).drop {
                dropped += 1;
            }
        }
        assert_eq!(net.link_drops(), dropped);
        assert!((300..=700).contains(&dropped), "dropped = {dropped}");
        assert_eq!(net.link_dups(), 0);
        assert_eq!(net.link_reorders(), 0);
    }

    #[test]
    fn dropped_packet_is_neither_duplicated_nor_delayed() {
        let mut net = Network::default();
        net.install_link_fault(
            LinkFault::all()
                .with_drop(1.0)
                .with_duplicate(1.0)
                .with_reorder(1.0, SimDuration::from_millis(100)),
        );
        let mut rng = DetRng::new(3);
        let verdict = net.link_verdict(NodeId::new(0), NodeId::new(1), &mut rng);
        assert!(verdict.drop);
        assert!(!verdict.duplicate);
        assert!(verdict.extra.is_zero());
        assert_eq!(net.link_dups(), 0);
    }

    #[test]
    fn verdict_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = Network::default();
            net.install_link_fault(
                LinkFault::all()
                    .with_drop(0.3)
                    .with_duplicate(0.2)
                    .with_reorder(0.4, SimDuration::from_millis(50)),
            );
            let mut rng = DetRng::new(seed);
            (0..200)
                .map(|_| net.link_verdict(NodeId::new(0), NodeId::new(1), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn overlapping_rules_union() {
        let mut net = Network::default();
        let r1 = net.install(PartitionRule::isolate([NodeId::new(1)], 4));
        let _r2 = net.install(PartitionRule::isolate([NodeId::new(2)], 4));
        assert!(net.blocked(NodeId::new(1), NodeId::new(0)));
        assert!(net.blocked(NodeId::new(2), NodeId::new(0)));
        net.remove(r1);
        assert!(!net.blocked(NodeId::new(1), NodeId::new(0)));
        assert!(net.blocked(NodeId::new(2), NodeId::new(0)));
    }
}
