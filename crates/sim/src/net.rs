//! The simulated network: node identities, link latency and partitions.

use std::collections::BTreeSet;
use std::fmt;

use crate::{DetRng, SimDuration};

/// Identifies a validator node in a simulation.
///
/// Node ids are dense indices `0..n`, which lets protocol implementations
/// index per-node tables directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node, usable to index per-node tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over all node ids of an `n`-node network.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u32).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// Link latency model: a base one-way delay plus uniform jitter.
///
/// The paper deploys its 15 VMs inside one Proxmox cluster, so a single
/// homogeneous model is faithful; geo-distributed profiles can be modelled
/// with a larger base and jitter.
///
/// # Examples
///
/// ```
/// use stabl_sim::{LatencyModel, SimDuration};
///
/// let lan = LatencyModel::new(SimDuration::from_millis(5), SimDuration::from_millis(5));
/// assert_eq!(lan.min_delay(), SimDuration::from_millis(5));
/// assert_eq!(lan.max_delay(), SimDuration::from_millis(10));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    base: SimDuration,
    jitter: SimDuration,
}

impl LatencyModel {
    /// Creates a model with one-way delay uniform in `[base, base + jitter]`.
    pub const fn new(base: SimDuration, jitter: SimDuration) -> Self {
        LatencyModel { base, jitter }
    }

    /// A LAN-like profile (5–10 ms one way), matching the paper's cluster.
    pub const fn lan() -> Self {
        LatencyModel::new(SimDuration::from_millis(5), SimDuration::from_millis(5))
    }

    /// A WAN-like profile (40–120 ms one way) for geo-distributed studies.
    pub const fn wan() -> Self {
        LatencyModel::new(SimDuration::from_millis(40), SimDuration::from_millis(80))
    }

    /// The smallest possible one-way delay.
    pub fn min_delay(&self) -> SimDuration {
        self.base
    }

    /// The largest possible one-way delay.
    pub fn max_delay(&self) -> SimDuration {
        self.base + self.jitter
    }

    /// Samples a one-way delay.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        if self.jitter.is_zero() {
            self.base
        } else {
            self.base + rng.duration_between(SimDuration::ZERO, self.jitter)
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::lan()
    }
}

/// A region-based latency topology: every node lives in a region and
/// the one-way delay between two nodes is drawn from the latency model
/// of their region pair.
///
/// # Examples
///
/// ```
/// use stabl_sim::{LatencyModel, LatencyTopology, NodeId, SimDuration};
///
/// // Two regions: a LAN locally, an ocean in between.
/// let local = LatencyModel::lan();
/// let ocean = LatencyModel::new(SimDuration::from_millis(70), SimDuration::from_millis(30));
/// let topology = LatencyTopology::new(
///     vec![vec![local, ocean], vec![ocean, local]],
///     vec![0, 0, 1, 1],
/// );
/// assert_eq!(topology.model_for(NodeId::new(0), NodeId::new(1)), local);
/// assert_eq!(topology.model_for(NodeId::new(0), NodeId::new(3)), ocean);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyTopology {
    matrix: Vec<Vec<LatencyModel>>,
    assignment: Vec<usize>,
}

impl LatencyTopology {
    /// Creates a topology from a square region-pair latency `matrix` and
    /// a node→region `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or not square, or if an assignment
    /// references a missing region.
    pub fn new(matrix: Vec<Vec<LatencyModel>>, assignment: Vec<usize>) -> LatencyTopology {
        let regions = matrix.len();
        assert!(regions > 0, "topology needs at least one region");
        assert!(
            matrix.iter().all(|row| row.len() == regions),
            "latency matrix must be square"
        );
        assert!(
            assignment.iter().all(|r| *r < regions),
            "assignment references a missing region"
        );
        LatencyTopology { matrix, assignment }
    }

    /// A canned geo-distributed profile: `regions` regions with LAN
    /// latency inside a region and WAN latency between regions, nodes
    /// assigned round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is zero.
    pub fn geo(regions: usize, n: usize) -> LatencyTopology {
        assert!(regions > 0, "topology needs at least one region");
        let wan = LatencyModel::wan();
        let lan = LatencyModel::lan();
        let matrix = (0..regions)
            .map(|a| {
                (0..regions)
                    .map(|b| if a == b { lan } else { wan })
                    .collect()
            })
            .collect();
        let assignment = (0..n).map(|i| i % regions).collect();
        LatencyTopology::new(matrix, assignment)
    }

    /// The region of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` has no assignment.
    pub fn region_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()]
    }

    /// The latency model governing packets from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either node has no assignment.
    pub fn model_for(&self, from: NodeId, to: NodeId) -> LatencyModel {
        self.matrix[self.region_of(from)][self.region_of(to)]
    }

    /// Samples a one-way delay for a packet from `from` to `to`.
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> SimDuration {
        self.model_for(from, to).sample(rng)
    }
}

/// Handle to an installed partition rule, used to remove it again.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(u64);

/// A netfilter-like rule that drops every packet between two node sets.
///
/// This mirrors how Stabl's observers program the Linux `netfilter` /
/// traffic-control interface on each machine: packets whose source is in
/// one group and destination in the other are silently dropped, in both
/// directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionRule {
    group_a: BTreeSet<NodeId>,
    group_b: BTreeSet<NodeId>,
}

impl PartitionRule {
    /// Creates a rule severing `group_a` from `group_b`.
    ///
    /// # Panics
    ///
    /// Panics if the groups overlap (a node cannot be severed from
    /// itself).
    pub fn new<A, B>(group_a: A, group_b: B) -> Self
    where
        A: IntoIterator<Item = NodeId>,
        B: IntoIterator<Item = NodeId>,
    {
        let group_a: BTreeSet<NodeId> = group_a.into_iter().collect();
        let group_b: BTreeSet<NodeId> = group_b.into_iter().collect();
        assert!(
            group_a.is_disjoint(&group_b),
            "partition groups must be disjoint"
        );
        PartitionRule { group_a, group_b }
    }

    /// Creates the paper's canonical rule: isolate `isolated` from every
    /// other node in an `n`-node network.
    pub fn isolate<I>(isolated: I, n: usize) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let group_a: BTreeSet<NodeId> = isolated.into_iter().collect();
        let group_b: BTreeSet<NodeId> = NodeId::all(n).filter(|id| !group_a.contains(id)).collect();
        PartitionRule { group_a, group_b }
    }

    /// `true` if a packet from `from` to `to` matches this rule (and is
    /// therefore dropped).
    pub fn blocks(&self, from: NodeId, to: NodeId) -> bool {
        (self.group_a.contains(&from) && self.group_b.contains(&to))
            || (self.group_b.contains(&from) && self.group_a.contains(&to))
    }
}

/// The network fabric of a simulation: latency plus active partitions
/// and per-node slowdowns.
#[derive(Clone, Debug)]
pub struct Network {
    latency: LatencyModel,
    topology: Option<LatencyTopology>,
    rules: Vec<(PartitionId, PartitionRule)>,
    next_rule: u64,
    dropped_by_partition: u64,
    /// Extra delay added to every message a node sends (a slow but
    /// correct node: overloaded CPU, congested uplink).
    slowdowns: std::collections::HashMap<NodeId, SimDuration>,
}

impl Network {
    /// Creates a fabric with the given latency model and no partitions.
    pub fn new(latency: LatencyModel) -> Self {
        Network {
            latency,
            topology: None,
            rules: Vec::new(),
            next_rule: 0,
            dropped_by_partition: 0,
            slowdowns: std::collections::HashMap::new(),
        }
    }

    /// The latency model in force (the uniform fallback when a
    /// topology is installed).
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Installs a region-based latency topology; per-pair models replace
    /// the uniform latency for every subsequent packet.
    pub fn set_topology(&mut self, topology: LatencyTopology) {
        self.topology = Some(topology);
    }

    /// The installed topology, if any.
    pub fn topology(&self) -> Option<&LatencyTopology> {
        self.topology.as_ref()
    }

    /// Installs a drop rule; returns its handle.
    pub fn install(&mut self, rule: PartitionRule) -> PartitionId {
        let id = PartitionId(self.next_rule);
        self.next_rule += 1;
        self.rules.push((id, rule));
        id
    }

    /// Removes a rule; `true` if it was present.
    pub fn remove(&mut self, id: PartitionId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|(rid, _)| *rid != id);
        self.rules.len() != before
    }

    /// `true` if any active rule drops packets from `from` to `to`.
    pub fn blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.rules.iter().any(|(_, r)| r.blocks(from, to))
    }

    /// Records a partition drop (kernel book-keeping).
    pub(crate) fn note_partition_drop(&mut self) {
        self.dropped_by_partition += 1;
    }

    /// Number of packets dropped by partition rules so far.
    pub fn partition_drops(&self) -> u64 {
        self.dropped_by_partition
    }

    /// Number of active rules.
    pub fn active_rules(&self) -> usize {
        self.rules.len()
    }

    /// Samples a one-way delay for a packet from `from` to `to`.
    pub fn sample_delay(&self, from: NodeId, to: NodeId, rng: &mut DetRng) -> SimDuration {
        match &self.topology {
            Some(topology) => topology.sample(from, to, rng),
            None => {
                let _ = (from, to);
                self.latency.sample(rng)
            }
        }
    }

    /// Slows `node` down: every message it sends is delayed by `extra`
    /// on top of the link latency. `SimDuration::ZERO` removes the
    /// slowdown.
    pub fn set_slowdown(&mut self, node: NodeId, extra: SimDuration) {
        if extra.is_zero() {
            self.slowdowns.remove(&node);
        } else {
            self.slowdowns.insert(node, extra);
        }
    }

    /// The extra outbound delay of `node` (zero if not slowed).
    pub fn slowdown(&self, node: NodeId) -> SimDuration {
        self.slowdowns
            .get(&node)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new(LatencyModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.as_u32(), 7);
        assert_eq!(id.to_string(), "node7");
        assert_eq!(NodeId::all(3).count(), 3);
    }

    #[test]
    fn latency_sample_within_bounds() {
        let model = LatencyModel::new(SimDuration::from_millis(10), SimDuration::from_millis(20));
        let mut rng = DetRng::new(1);
        for _ in 0..500 {
            let d = model.sample(&mut rng);
            assert!(d >= model.min_delay() && d <= model.max_delay());
        }
    }

    #[test]
    fn zero_jitter_is_constant() {
        let model = LatencyModel::new(SimDuration::from_millis(10), SimDuration::ZERO);
        let mut rng = DetRng::new(2);
        assert_eq!(model.sample(&mut rng), SimDuration::from_millis(10));
    }

    #[test]
    fn partition_rule_blocks_both_directions() {
        let rule = PartitionRule::new(ids(&[0, 1]), ids(&[2, 3]));
        assert!(rule.blocks(NodeId::new(0), NodeId::new(2)));
        assert!(rule.blocks(NodeId::new(3), NodeId::new(1)));
        assert!(!rule.blocks(NodeId::new(0), NodeId::new(1)));
        assert!(!rule.blocks(NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    fn isolate_builds_complement() {
        let rule = PartitionRule::isolate(ids(&[4]), 6);
        assert!(rule.blocks(NodeId::new(4), NodeId::new(0)));
        assert!(rule.blocks(NodeId::new(5), NodeId::new(4)));
        assert!(!rule.blocks(NodeId::new(0), NodeId::new(5)));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_groups_rejected() {
        let _ = PartitionRule::new(ids(&[0, 1]), ids(&[1, 2]));
    }

    #[test]
    fn topology_routes_by_region() {
        let lan = LatencyModel::lan();
        let wan = LatencyModel::wan();
        let topology = LatencyTopology::new(vec![vec![lan, wan], vec![wan, lan]], vec![0, 1, 0, 1]);
        assert_eq!(topology.region_of(NodeId::new(2)), 0);
        assert_eq!(topology.model_for(NodeId::new(0), NodeId::new(2)), lan);
        assert_eq!(topology.model_for(NodeId::new(0), NodeId::new(1)), wan);
        let mut rng = DetRng::new(5);
        for _ in 0..100 {
            let d = topology.sample(NodeId::new(0), NodeId::new(1), &mut rng);
            assert!(d >= wan.min_delay() && d <= wan.max_delay());
        }
    }

    #[test]
    fn geo_profile_assigns_round_robin() {
        let topology = LatencyTopology::geo(3, 7);
        assert_eq!(topology.region_of(NodeId::new(0)), 0);
        assert_eq!(topology.region_of(NodeId::new(4)), 1);
        assert_eq!(topology.region_of(NodeId::new(6)), 0);
        assert_eq!(
            topology.model_for(NodeId::new(0), NodeId::new(3)),
            LatencyModel::lan(),
            "same region"
        );
        assert_eq!(
            topology.model_for(NodeId::new(0), NodeId::new(1)),
            LatencyModel::wan(),
            "cross region"
        );
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_matrix_rejected() {
        let lan = LatencyModel::lan();
        let _ = LatencyTopology::new(vec![vec![lan, lan], vec![lan]], vec![0]);
    }

    #[test]
    fn network_with_topology_samples_per_pair() {
        let mut net = Network::default();
        net.set_topology(LatencyTopology::geo(2, 4));
        assert!(net.topology().is_some());
        let mut rng = DetRng::new(9);
        let near = net.sample_delay(NodeId::new(0), NodeId::new(2), &mut rng);
        assert!(near <= LatencyModel::lan().max_delay());
        let far = net.sample_delay(NodeId::new(0), NodeId::new(1), &mut rng);
        assert!(far >= LatencyModel::wan().min_delay());
    }

    #[test]
    fn slowdowns_set_and_clear() {
        let mut net = Network::default();
        let node = NodeId::new(3);
        assert!(net.slowdown(node).is_zero());
        net.set_slowdown(node, SimDuration::from_millis(250));
        assert_eq!(net.slowdown(node), SimDuration::from_millis(250));
        net.set_slowdown(node, SimDuration::ZERO);
        assert!(net.slowdown(node).is_zero());
    }

    #[test]
    fn network_install_and_remove() {
        let mut net = Network::default();
        let a = NodeId::new(0);
        let b = NodeId::new(5);
        assert!(!net.blocked(a, b));
        let id = net.install(PartitionRule::isolate([b], 10));
        assert!(net.blocked(a, b));
        assert!(net.blocked(b, a));
        assert_eq!(net.active_rules(), 1);
        assert!(net.remove(id));
        assert!(!net.blocked(a, b));
        assert!(!net.remove(id), "double remove reports absence");
    }

    #[test]
    fn overlapping_rules_union() {
        let mut net = Network::default();
        let r1 = net.install(PartitionRule::isolate([NodeId::new(1)], 4));
        let _r2 = net.install(PartitionRule::isolate([NodeId::new(2)], 4));
        assert!(net.blocked(NodeId::new(1), NodeId::new(0)));
        assert!(net.blocked(NodeId::new(2), NodeId::new(0)));
        net.remove(r1);
        assert!(!net.blocked(NodeId::new(1), NodeId::new(0)));
        assert!(net.blocked(NodeId::new(2), NodeId::new(0)));
    }
}
