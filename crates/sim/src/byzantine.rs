//! Byzantine node behaviors: a transparent protocol wrapper that makes
//! selected nodes misbehave on their outbound traffic.
//!
//! The paper measures how chains tolerate *Byzantine* deviations, not
//! just crashes (§2: Redbelly's t < n/3, Algorand's 20 % assumption).
//! [`ByzantineWrapper`] turns any honest [`Protocol`] implementation
//! into a network where the nodes named by a [`ByzantineSpec`] deviate
//! in one of four ways while every other node runs the inner protocol
//! unchanged:
//!
//! * **Withhold** — outbound messages are silently discarded (a mute
//!   node that still processes inbound traffic, like a validator whose
//!   egress died).
//! * **Delay** — every outbound message is held back by a fixed extra
//!   delay before entering the network (a laggard that keeps
//!   responding, the slow-but-Byzantine case).
//! * **Mutate** — outbound payloads are replaced with the *stale*
//!   payload from the node's previous callback, corrupting its stream
//!   with replayed state. Mutation-by-replay is the only
//!   protocol-agnostic corruption possible: `Msg` is an opaque
//!   associated type, and a stale-but-well-formed message is exactly
//!   the kind of equivocation consensus protocols must reject.
//! * **Equivocate** — conflicting payloads to different peers: peers
//!   with an even node index receive the fresh payload, peers with an
//!   odd index receive the stale one from the previous callback.
//!
//! The wrapper is *bit-transparent* for honest nodes and for a spec
//! with no Byzantine nodes: it forwards effects unchanged and draws no
//! extra randomness, so wrapping does not perturb a run's RNG streams.

use std::collections::BTreeSet;
use std::fmt;

use crate::protocol::Effect;
use crate::{Ctx, NodeId, Protocol, SimDuration};

/// How a Byzantine node deviates (see the module docs for semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzantineBehavior {
    /// Replace outbound payloads with the previous callback's payload.
    Mutate,
    /// Fresh payload to even-indexed peers, stale payload to odd ones.
    Equivocate,
    /// Hold every outbound message back by this extra delay.
    Delay(SimDuration),
    /// Discard every outbound message.
    Withhold,
}

/// Which nodes misbehave, and how.
///
/// # Examples
///
/// ```
/// use stabl_sim::{ByzantineBehavior, ByzantineSpec, NodeId};
///
/// let spec = ByzantineSpec::new([NodeId::new(3)], ByzantineBehavior::Equivocate);
/// assert!(spec.is_active());
/// assert!(spec.is_byzantine(NodeId::new(3)));
/// assert!(!spec.is_byzantine(NodeId::new(0)));
/// assert!(!ByzantineSpec::none().is_active());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ByzantineSpec {
    nodes: BTreeSet<NodeId>,
    behavior: ByzantineBehavior,
}

impl ByzantineSpec {
    /// A spec with no Byzantine nodes (the wrapper becomes transparent).
    pub fn none() -> ByzantineSpec {
        ByzantineSpec {
            nodes: BTreeSet::new(),
            behavior: ByzantineBehavior::Equivocate,
        }
    }

    /// Makes every node in `nodes` deviate with `behavior`.
    pub fn new<I>(nodes: I, behavior: ByzantineBehavior) -> ByzantineSpec
    where
        I: IntoIterator<Item = NodeId>,
    {
        ByzantineSpec {
            nodes: nodes.into_iter().collect(),
            behavior,
        }
    }

    /// `true` if at least one node misbehaves.
    pub fn is_active(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// `true` if `node` is Byzantine under this spec.
    pub fn is_byzantine(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// The misbehaving nodes.
    pub fn nodes(&self) -> &BTreeSet<NodeId> {
        &self.nodes
    }

    /// The deviation applied to every Byzantine node.
    pub fn behavior(&self) -> ByzantineBehavior {
        self.behavior
    }
}

impl Default for ByzantineSpec {
    fn default() -> Self {
        ByzantineSpec::none()
    }
}

/// Configuration of a [`ByzantineWrapper`]: the inner protocol's config
/// plus the Byzantine spec.
#[derive(Clone, Debug)]
pub struct ByzConfig<C> {
    /// The wrapped protocol's configuration.
    pub inner: C,
    /// Which nodes misbehave, and how.
    pub spec: ByzantineSpec,
}

impl<C> ByzConfig<C> {
    /// Pairs an inner config with a Byzantine spec.
    pub fn new(inner: C, spec: ByzantineSpec) -> ByzConfig<C> {
        ByzConfig { inner, spec }
    }
}

/// Timer token of a [`ByzantineWrapper`]: either the inner protocol's
/// timer or a delayed outbound delivery (the `Delay` behavior).
pub enum ByzTimer<P: Protocol> {
    /// The inner protocol armed this timer.
    Inner(P::Timer),
    /// A held-back outbound message now due to enter the network.
    Deliver {
        /// The original recipient.
        to: NodeId,
        /// The original payload.
        msg: P::Msg,
    },
}

impl<P: Protocol> Clone for ByzTimer<P> {
    fn clone(&self) -> Self {
        match self {
            ByzTimer::Inner(t) => ByzTimer::Inner(t.clone()),
            ByzTimer::Deliver { to, msg } => ByzTimer::Deliver {
                to: *to,
                msg: msg.clone(),
            },
        }
    }
}

impl<P: Protocol> fmt::Debug for ByzTimer<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByzTimer::Inner(t) => f.debug_tuple("Inner").field(t).finish(),
            ByzTimer::Deliver { to, msg } => f
                .debug_struct("Deliver")
                .field("to", to)
                .field("msg", msg)
                .finish(),
        }
    }
}

/// Runs protocol `P` on every node, making the nodes selected by the
/// [`ByzantineSpec`] misbehave on their outbound messages.
///
/// Honest nodes (and every node under an inactive spec) behave
/// bit-identically to the unwrapped protocol.
pub struct ByzantineWrapper<P: Protocol> {
    inner: P,
    byzantine: bool,
    behavior: ByzantineBehavior,
    /// The payload most recently sent by a *previous* callback — the
    /// stale message Mutate and Equivocate replay.
    last_sent: Option<P::Msg>,
}

impl<P: Protocol> ByzantineWrapper<P> {
    /// The wrapped protocol instance (for post-run inspection).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// `true` if this node misbehaves.
    pub fn is_byzantine(&self) -> bool {
        self.byzantine
    }

    /// Runs an inner-protocol callback against a scratch effect buffer,
    /// then relays the buffered effects through the Byzantine filter.
    fn drive<F>(&mut self, ctx: &mut Ctx<'_, Self>, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P>),
    {
        let mut effects: Vec<Effect<P>> = Vec::new();
        {
            let mut inner_ctx = Ctx {
                node: ctx.node,
                n: ctx.n,
                now: ctx.now,
                rng: &mut *ctx.rng,
                effects: &mut effects,
                timers: &mut *ctx.timers,
                tracing: ctx.tracing,
                capture: ctx.capture,
            };
            f(&mut self.inner, &mut inner_ctx);
        }
        self.relay(effects, ctx);
    }

    /// Applies the Byzantine filter to one callback's worth of effects.
    fn relay(&mut self, effects: Vec<Effect<P>>, ctx: &mut Ctx<'_, Self>) {
        // The stale payload seen by this whole callback is fixed up
        // front, so a broadcast equivocates consistently: every odd
        // peer sees the same previous-round payload.
        let mut fresh: Option<P::Msg> = None;
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    if !self.byzantine {
                        ctx.send(to, msg);
                        continue;
                    }
                    match self.behavior {
                        ByzantineBehavior::Withhold => {}
                        ByzantineBehavior::Delay(extra) => {
                            ctx.set_timer(extra, ByzTimer::Deliver { to, msg });
                        }
                        ByzantineBehavior::Mutate => {
                            let wire = self.last_sent.clone().unwrap_or_else(|| msg.clone());
                            fresh = Some(msg);
                            ctx.send(to, wire);
                        }
                        ByzantineBehavior::Equivocate => {
                            let wire = if to.as_u32() % 2 == 1 {
                                self.last_sent.clone().unwrap_or_else(|| msg.clone())
                            } else {
                                msg.clone()
                            };
                            fresh = Some(msg);
                            ctx.send(to, wire);
                        }
                    }
                }
                Effect::Broadcast { msg } => {
                    if !self.byzantine {
                        ctx.effects.push(Effect::Broadcast { msg });
                        continue;
                    }
                    // Expand the fanout exactly as the kernel would
                    // (ascending node order, skipping the sender) and
                    // deviate per target.
                    let me = ctx.node;
                    let n = ctx.n;
                    match self.behavior {
                        ByzantineBehavior::Withhold => {}
                        ByzantineBehavior::Delay(extra) => {
                            for to in NodeId::all(n).filter(|to| *to != me) {
                                ctx.set_timer(
                                    extra,
                                    ByzTimer::Deliver {
                                        to,
                                        msg: msg.clone(),
                                    },
                                );
                            }
                        }
                        ByzantineBehavior::Mutate => {
                            let wire = self.last_sent.clone().unwrap_or_else(|| msg.clone());
                            fresh = Some(msg);
                            ctx.effects.push(Effect::Broadcast { msg: wire });
                        }
                        ByzantineBehavior::Equivocate => {
                            for to in NodeId::all(n).filter(|to| *to != me) {
                                let wire = if to.as_u32() % 2 == 1 {
                                    self.last_sent.clone().unwrap_or_else(|| msg.clone())
                                } else {
                                    msg.clone()
                                };
                                ctx.send(to, wire);
                            }
                            fresh = Some(msg);
                        }
                    }
                }
                Effect::Multicast { targets, msg } => {
                    if !self.byzantine {
                        ctx.effects.push(Effect::Multicast { targets, msg });
                        continue;
                    }
                    match self.behavior {
                        ByzantineBehavior::Withhold => {}
                        ByzantineBehavior::Delay(extra) => {
                            for to in targets {
                                ctx.set_timer(
                                    extra,
                                    ByzTimer::Deliver {
                                        to,
                                        msg: msg.clone(),
                                    },
                                );
                            }
                        }
                        ByzantineBehavior::Mutate => {
                            let wire = self.last_sent.clone().unwrap_or_else(|| msg.clone());
                            fresh = Some(msg);
                            ctx.effects.push(Effect::Multicast { targets, msg: wire });
                        }
                        ByzantineBehavior::Equivocate => {
                            for to in targets {
                                let wire = if to.as_u32() % 2 == 1 {
                                    self.last_sent.clone().unwrap_or_else(|| msg.clone())
                                } else {
                                    msg.clone()
                                };
                                ctx.send(to, wire);
                            }
                            fresh = Some(msg);
                        }
                    }
                }
                Effect::SetTimer { id, delay, token } => {
                    ctx.effects.push(Effect::SetTimer {
                        id,
                        delay,
                        token: ByzTimer::Inner(token),
                    });
                }
                Effect::CancelTimer(id) => ctx.effects.push(Effect::CancelTimer(id)),
                Effect::Commit(commit) => ctx.effects.push(Effect::Commit(commit)),
                Effect::Panic(reason) => ctx.effects.push(Effect::Panic(reason)),
                Effect::Log(line) => ctx.effects.push(Effect::Log(line)),
                Effect::Span(phase) => ctx.effects.push(Effect::Span(phase)),
                Effect::Gauge { metric, value } => {
                    ctx.effects.push(Effect::Gauge { metric, value })
                }
            }
        }
        if let Some(msg) = fresh {
            self.last_sent = Some(msg);
        }
    }
}

impl<P: Protocol> Protocol for ByzantineWrapper<P> {
    type Msg = P::Msg;
    type Request = P::Request;
    type Commit = P::Commit;
    type Timer = ByzTimer<P>;
    type Config = ByzConfig<P::Config>;

    fn new(id: NodeId, n: usize, config: &Self::Config, ctx: &mut Ctx<'_, Self>) -> Self {
        let mut effects: Vec<Effect<P>> = Vec::new();
        let inner = {
            let mut inner_ctx = Ctx {
                node: id,
                n,
                now: ctx.now,
                rng: &mut *ctx.rng,
                effects: &mut effects,
                timers: &mut *ctx.timers,
                tracing: ctx.tracing,
                capture: ctx.capture,
            };
            P::new(id, n, &config.inner, &mut inner_ctx)
        };
        let mut wrapper = ByzantineWrapper {
            inner,
            byzantine: config.spec.is_byzantine(id),
            behavior: config.spec.behavior(),
            last_sent: None,
        };
        wrapper.relay(effects, ctx);
        wrapper
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self>) {
        self.drive(ctx, |inner, inner_ctx| {
            inner.on_message(from, msg, inner_ctx)
        });
    }

    fn on_timer(&mut self, timer: Self::Timer, ctx: &mut Ctx<'_, Self>) {
        match timer {
            ByzTimer::Inner(token) => {
                self.drive(ctx, |inner, inner_ctx| inner.on_timer(token, inner_ctx));
            }
            // The Byzantine filter already ran when the message was
            // held back; release it into the network untouched.
            ByzTimer::Deliver { to, msg } => ctx.send(to, msg),
        }
    }

    fn on_request(&mut self, request: Self::Request, ctx: &mut Ctx<'_, Self>) {
        self.drive(ctx, |inner, inner_ctx| inner.on_request(request, inner_ctx));
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.last_sent = None;
        self.drive(ctx, |inner, inner_ctx| inner.on_restart(inner_ctx));
    }

    fn contention_stats(&self) -> crate::ContentionStats {
        self.inner.contention_stats()
    }
}

impl<P: Protocol + fmt::Debug> fmt::Debug for ByzantineWrapper<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ByzantineWrapper")
            .field("inner", &self.inner)
            .field("byzantine", &self.byzantine)
            .field("behavior", &self.behavior)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimTime, Simulation};

    /// Each node broadcasts an increasing sequence number every 100 ms
    /// and commits `(sender, seq)` for every broadcast it receives.
    #[derive(Debug)]
    struct Counter {
        seq: u64,
    }

    impl Protocol for Counter {
        type Msg = u64;
        type Request = u64;
        type Commit = (u32, u64);
        type Timer = ();
        type Config = ();

        fn new(_: NodeId, _: usize, _: &(), ctx: &mut Ctx<'_, Self>) -> Self {
            ctx.set_timer(SimDuration::from_millis(100), ());
            Counter { seq: 0 }
        }
        fn on_message(&mut self, from: NodeId, seq: u64, ctx: &mut Ctx<'_, Self>) {
            ctx.commit((from.as_u32(), seq));
        }
        fn on_timer(&mut self, _: (), ctx: &mut Ctx<'_, Self>) {
            self.seq += 1;
            ctx.broadcast(self.seq);
            ctx.set_timer(SimDuration::from_millis(100), ());
        }
        fn on_request(&mut self, seq: u64, ctx: &mut Ctx<'_, Self>) {
            ctx.broadcast(seq);
        }
        fn on_restart(&mut self, ctx: &mut Ctx<'_, Self>) {
            ctx.set_timer(SimDuration::from_millis(100), ());
        }
    }

    fn byz_sim(n: usize, seed: u64, spec: ByzantineSpec) -> Simulation<ByzantineWrapper<Counter>> {
        Simulation::new(n, seed, ByzConfig::new((), spec))
    }

    fn commits_of(sim: &Simulation<ByzantineWrapper<Counter>>) -> Vec<(u64, u32, (u32, u64))> {
        sim.commits()
            .iter()
            .map(|c| (c.time.as_micros(), c.node.as_u32(), c.commit))
            .collect()
    }

    #[test]
    fn inactive_spec_is_bit_transparent() {
        let mut plain = Simulation::<Counter>::new(3, 42, ());
        plain.run_until(SimTime::from_secs(2));
        let mut wrapped = byz_sim(3, 42, ByzantineSpec::none());
        wrapped.run_until(SimTime::from_secs(2));
        let plain_commits: Vec<_> = plain
            .commits()
            .iter()
            .map(|c| (c.time.as_micros(), c.node.as_u32(), c.commit))
            .collect();
        assert_eq!(plain_commits, commits_of(&wrapped));
        assert_eq!(plain.stats(), wrapped.stats());
    }

    #[test]
    fn withholding_node_goes_mute() {
        let spec = ByzantineSpec::new([NodeId::new(2)], ByzantineBehavior::Withhold);
        let mut sim = byz_sim(3, 7, spec);
        sim.run_until(SimTime::from_secs(2));
        let from_byz = sim.commits().iter().filter(|c| c.commit.0 == 2).count();
        assert_eq!(from_byz, 0, "withheld broadcasts never arrive");
        let at_byz = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(2))
            .count();
        assert!(at_byz > 0, "the mute node still processes inbound traffic");
        assert!(sim.node(NodeId::new(2)).is_byzantine());
    }

    #[test]
    fn delaying_node_arrives_late() {
        let first_arrival = |spec: ByzantineSpec| {
            let mut sim = byz_sim(2, 9, spec);
            sim.run_until(SimTime::from_secs(2));
            sim.commits()
                .iter()
                .find(|c| c.commit.0 == 1)
                .map(|c| c.time)
                .expect("node1's broadcast observed")
        };
        let honest = first_arrival(ByzantineSpec::none());
        let delayed = first_arrival(ByzantineSpec::new(
            [NodeId::new(1)],
            ByzantineBehavior::Delay(SimDuration::from_millis(500)),
        ));
        assert!(
            delayed >= honest + SimDuration::from_millis(450),
            "delay must hold messages back: {honest} vs {delayed}"
        );
    }

    #[test]
    fn equivocating_node_sends_conflicting_payloads() {
        // 3 nodes; node2 equivocates. In round k, node0 (even) sees seq
        // k while node1 (odd) sees seq k-1: conflicting views of the
        // same broadcast.
        let spec = ByzantineSpec::new([NodeId::new(2)], ByzantineBehavior::Equivocate);
        let mut sim = byz_sim(3, 11, spec);
        sim.run_until(SimTime::from_secs(1));
        let seen_by = |node: u32| -> Vec<u64> {
            sim.commits()
                .iter()
                .filter(|c| c.node == NodeId::new(node) && c.commit.0 == 2)
                .map(|c| c.commit.1)
                .collect()
        };
        let even_view = seen_by(0);
        let odd_view = seen_by(1);
        assert!(!even_view.is_empty() && !odd_view.is_empty());
        assert_ne!(
            even_view, odd_view,
            "peers must observe conflicting streams"
        );
        assert!(
            odd_view.iter().zip(even_view.iter()).all(|(o, e)| o <= e),
            "odd peers lag behind: {odd_view:?} vs {even_view:?}"
        );
    }

    #[test]
    fn mutating_node_replays_stale_payloads() {
        let spec = ByzantineSpec::new([NodeId::new(1)], ByzantineBehavior::Mutate);
        let mut sim = byz_sim(2, 13, spec);
        sim.run_until(SimTime::from_secs(1));
        let seen: Vec<u64> = sim
            .commits()
            .iter()
            .filter(|c| c.node == NodeId::new(0) && c.commit.0 == 1)
            .map(|c| c.commit.1)
            .collect();
        // Round k delivers the payload of round k-1 (round 1 passes
        // through unchanged): 1, 1, 2, 3, ... instead of 1, 2, 3, ...
        assert!(seen.len() >= 3);
        assert_eq!(seen[0], 1);
        assert_eq!(seen[1], 1, "round 2 replays round 1's payload");
        assert!(seen.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn byzantine_runs_are_deterministic() {
        let run = |seed| {
            let spec = ByzantineSpec::new([NodeId::new(0)], ByzantineBehavior::Equivocate);
            let mut sim = byz_sim(4, seed, spec);
            sim.run_until(SimTime::from_secs(1));
            commits_of(&sim)
        };
        assert_eq!(run(5), run(5));
    }
}
