//! Integration tests of the `stabl` command-line binary.

use std::process::Command;

fn stabl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_stabl"))
}

#[test]
fn list_prints_chains_and_thresholds() {
    let output = stabl().arg("list").output().expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    for chain in ["Algorand", "Aptos", "Avalanche", "Redbelly", "Solana"] {
        assert!(stdout.contains(chain), "missing {chain} in:\n{stdout}");
    }
    assert!(stdout.contains("scenarios:"));
}

#[test]
fn run_executes_a_quick_scenario() {
    let output = stabl()
        .args(["run", "redbelly", "crash", "--secs", "40", "--seed", "7"])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf8");
    assert!(stdout.contains("Redbelly"), "{stdout}");
    assert!(stdout.contains("sensitivity"), "{stdout}");
}

#[test]
fn run_is_deterministic_per_seed() {
    let run = || {
        let output = stabl()
            .args(["run", "solana", "crash", "--secs", "40", "--seed", "3"])
            .output()
            .expect("binary runs");
        assert!(output.status.success());
        String::from_utf8(output.stdout).expect("utf8")
    };
    assert_eq!(run(), run());
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let cases: &[&[&str]] = &[
        &["frobnicate"],
        &["run", "bitcoin", "crash"],
        &["run", "redbelly", "meteor"],
        &["run", "redbelly", "crash", "--nodes", "3"],
        &[],
    ];
    for args in cases {
        let output = stabl().args(*args).output().expect("binary runs");
        assert!(!output.status.success(), "args {args:?} should fail");
        let stderr = String::from_utf8(output.stderr).expect("utf8");
        assert!(stderr.contains("USAGE"), "args {args:?}: {stderr}");
    }
}
