//! Causal diagnosis of a run: *why* did this chain slow down or stall?
//!
//! Three layers, all pure functions of the deterministic run artifacts
//! ([`RunConfig`], [`RunResult`], [`RunTrace`]) so every output is
//! byte-identical across reruns of the same seed:
//!
//! 1. **Metrics timeline** ([`MetricsTimeline`]) — the structured event
//!    stream bucketed into fixed-cadence frames. Each frame carries the
//!    window's event-count deltas ([`FrameCounts`]) and one
//!    [`GaugeSeries`] per `(metric, node)` pair sampled by
//!    [`Ctx::gauge`], summarised with the integer-exact
//!    [`QuantileSketch`] so frame merging is associative, commutative
//!    and bit-exact — the replication engine's fold invariant extends
//!    to the observability layer.
//! 2. **Latency blame** ([`BlameTable`]) — every committed transaction's
//!    `[submit, commit]` interval is intersected with the fault
//!    schedule, the client retry stream and node-restart events, and
//!    its latency is attributed to the concrete causes that overlapped
//!    it (crash, transient outage, partition, slowdown, link
//!    degradation, retry/backoff, recovery catch-up, Byzantine nodes —
//!    or `baseline` when nothing did).
//! 3. **Liveness post-mortem** ([`LivenessPostMortem`]) — for runs that
//!    stop committing, pinpoints the stall: the last commit instant,
//!    the phase span each node entered and never progressed out of,
//!    the nodes that were down, and the fault windows still active at
//!    (or after) the stall, condensed into a one-paragraph verdict.
//!
//! [`Ctx::gauge`]: stabl_sim::Ctx::gauge

use std::collections::BTreeMap;

use stabl_sim::{ByzantineSpec, SimDuration, SimEvent};
use stabl_stats::QuantileSketch;

use crate::faults::{FaultAction, FaultSchedule};
use crate::harness::{RunConfig, RunResult, RunTrace};

/// Default sampling cadence of the metrics timeline (one frame per
/// simulated second strikes the balance between resolution and artifact
/// size for the paper's 30–400 s horizons).
pub const DEFAULT_CADENCE: SimDuration = SimDuration::from_secs(1);

/// How many of the slowest commits keep a per-transaction blame row.
pub const SLOWEST_TXS: usize = 5;

/// Event-count deltas inside one timeline frame.
///
/// Every field is a plain additive `u64`, so [`FrameCounts::merge`] is
/// integer addition — associative, commutative, bit-exact.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FrameCounts {
    /// `MessageSent` events (only populated at [`CaptureLevel::Full`]).
    ///
    /// [`CaptureLevel::Full`]: stabl_sim::CaptureLevel::Full
    pub sent: u64,
    /// `MessageDelivered` events (only populated at full capture).
    pub delivered: u64,
    /// `MessageDropped` events (only populated at full capture).
    pub dropped: u64,
    /// `TimerFired` events.
    pub timers_fired: u64,
    /// `TimerStale` events.
    pub timers_stale: u64,
    /// `RequestDelivered` events.
    pub requests_delivered: u64,
    /// `RequestDropped` events.
    pub requests_dropped: u64,
    /// `ClientSubmitted` events.
    pub submits: u64,
    /// `ClientRetried` events.
    pub retries: u64,
    /// `ClientGaveUp` events.
    pub give_ups: u64,
    /// `Committed` events.
    pub commits: u64,
    /// `NodeCrashed` events.
    pub crashes: u64,
    /// `NodeRestarted` events.
    pub restarts: u64,
    /// `NodePanicked` events.
    pub panics: u64,
    /// `Phase` marks.
    pub phase_marks: u64,
    /// `Gauge` samples.
    pub gauge_samples: u64,
}

impl FrameCounts {
    fn count(&mut self, event: &SimEvent) {
        match event {
            SimEvent::MessageSent { .. } => self.sent += 1,
            SimEvent::MessageDelivered { .. } => self.delivered += 1,
            SimEvent::MessageDropped { .. } => self.dropped += 1,
            SimEvent::TimerFired { .. } => self.timers_fired += 1,
            SimEvent::TimerStale { .. } => self.timers_stale += 1,
            SimEvent::RequestDelivered { .. } => self.requests_delivered += 1,
            SimEvent::RequestDropped { .. } => self.requests_dropped += 1,
            SimEvent::ClientSubmitted { .. } => self.submits += 1,
            SimEvent::ClientRetried { .. } => self.retries += 1,
            SimEvent::ClientGaveUp { .. } => self.give_ups += 1,
            SimEvent::Committed { .. } => self.commits += 1,
            SimEvent::NodeCrashed { .. } => self.crashes += 1,
            SimEvent::NodeRestarted { .. } => self.restarts += 1,
            SimEvent::NodePanicked { .. } => self.panics += 1,
            SimEvent::Phase { .. } => self.phase_marks += 1,
            SimEvent::Gauge { .. } => self.gauge_samples += 1,
            SimEvent::FaultActivated { .. } | SimEvent::FaultCleared { .. } => {}
            SimEvent::Log { .. } => {}
        }
    }

    /// Adds every count of `other` into `self`.
    pub fn merge(&mut self, other: &FrameCounts) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.timers_fired += other.timers_fired;
        self.timers_stale += other.timers_stale;
        self.requests_delivered += other.requests_delivered;
        self.requests_dropped += other.requests_dropped;
        self.submits += other.submits;
        self.retries += other.retries;
        self.give_ups += other.give_ups;
        self.commits += other.commits;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        self.panics += other.panics;
        self.phase_marks += other.phase_marks;
        self.gauge_samples += other.gauge_samples;
    }

    /// Total events counted in this frame.
    pub fn total(&self) -> u64 {
        self.sent
            + self.delivered
            + self.dropped
            + self.timers_fired
            + self.timers_stale
            + self.requests_delivered
            + self.requests_dropped
            + self.submits
            + self.retries
            + self.give_ups
            + self.commits
            + self.crashes
            + self.restarts
            + self.panics
            + self.phase_marks
            + self.gauge_samples
    }
}

/// The samples one `(metric, node)` pair contributed to one frame.
///
/// Values are summarised with [`QuantileSketch`] (integer bucket
/// counts), and the *latest* sample is kept separately — keyed by the
/// lexicographic maximum of `(time, sequence, value)` so that
/// [`GaugeSeries::merge`] stays associative and commutative even under
/// arbitrary merge orders.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GaugeSeries {
    /// The metric label (e.g. `"mempool_depth"`, `"round"`).
    pub metric: String,
    /// The reporting node's dense index.
    pub node: u64,
    /// Distribution of the sampled values within the frame (the sketch
    /// treats each value as an integer "microsecond"; only the grid is
    /// borrowed, the unit is the metric's own).
    pub values: QuantileSketch,
    /// Simulated time of the latest sample, microseconds.
    pub last_t_us: u64,
    /// Recorder sequence number of the latest sample (tie-break).
    pub last_seq: u64,
    /// The latest sampled value (what a dashboard would show).
    pub last_value: u64,
}

impl GaugeSeries {
    fn record(&mut self, t_us: u64, seq: u64, value: u64) {
        self.values.record_micros(value);
        if (t_us, seq, value) >= (self.last_t_us, self.last_seq, self.last_value) {
            self.last_t_us = t_us;
            self.last_seq = seq;
            self.last_value = value;
        }
    }

    /// Folds `other` into `self`. Associative, commutative, bit-exact.
    pub fn merge(&mut self, other: &GaugeSeries) {
        self.values.merge(&other.values);
        let theirs = (other.last_t_us, other.last_seq, other.last_value);
        if theirs >= (self.last_t_us, self.last_seq, self.last_value) {
            self.last_t_us = other.last_t_us;
            self.last_seq = other.last_seq;
            self.last_value = other.last_value;
        }
    }
}

/// One fixed-cadence bucket of the metrics timeline.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetricsFrame {
    /// The frame's position: covers `[index · cadence, (index+1) · cadence)`.
    pub index: u64,
    /// Frame start, microseconds (inclusive).
    pub start_us: u64,
    /// Frame end, microseconds (exclusive; the last frame is clamped to
    /// the horizon).
    pub end_us: u64,
    /// Event-count deltas inside the frame.
    pub counts: FrameCounts,
    /// Per-`(metric, node)` gauge summaries, sorted by `(metric, node)`.
    pub gauges: Vec<GaugeSeries>,
}

impl MetricsFrame {
    /// Folds `other` (same index) into `self`: counts add, gauge series
    /// merge-join on `(metric, node)`.
    pub fn merge(&mut self, other: &MetricsFrame) {
        self.counts.merge(&other.counts);
        self.end_us = self.end_us.max(other.end_us);
        let mut merged: Vec<GaugeSeries> =
            Vec::with_capacity(self.gauges.len() + other.gauges.len());
        let (mut a, mut b) = (
            self.gauges.iter().peekable(),
            other.gauges.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(sa), Some(sb)) => {
                    let ka = (&sa.metric, sa.node);
                    let kb = (&sb.metric, sb.node);
                    if ka == kb {
                        let mut s = (*sa).clone();
                        s.merge(sb);
                        merged.push(s);
                        a.next();
                        b.next();
                    } else if ka < kb {
                        merged.push((*sa).clone());
                        a.next();
                    } else {
                        merged.push((*sb).clone());
                        b.next();
                    }
                }
                (Some(sa), None) => {
                    merged.push((*sa).clone());
                    a.next();
                }
                (None, Some(sb)) => {
                    merged.push((*sb).clone());
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.gauges = merged;
    }
}

/// The sampled time series of one run: the structured event stream
/// bucketed into fixed-cadence [`MetricsFrame`]s.
///
/// Built by [`MetricsTimeline::from_trace`]; two timelines of the same
/// shape (cadence and node count) merge bit-exactly in any order or
/// grouping, so replicated runs can be folded like the stats sketches.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MetricsTimeline {
    /// The capture level the source trace recorded at (stable name).
    pub capture: String,
    /// Frame width, microseconds.
    pub cadence_us: u64,
    /// The run horizon, microseconds.
    pub horizon_us: u64,
    /// Validator count of the source run.
    pub n: u64,
    /// Events evicted from the recorder ring before the timeline saw
    /// them (non-zero means the oldest frames under-count).
    pub dropped_events: u64,
    /// The frames, one per cadence bucket covering `[0, horizon]`,
    /// sorted by index.
    pub frames: Vec<MetricsFrame>,
}

impl MetricsTimeline {
    /// Buckets `trace` into frames of width `cadence`.
    ///
    /// Every bucket covering `[0, horizon]` is emitted (empty ones
    /// included) so exporters can render a gap-free timeline.
    pub fn from_trace(trace: &RunTrace, cadence: SimDuration) -> MetricsTimeline {
        let cadence_us = cadence.as_micros().max(1);
        let horizon_us = trace.horizon.as_micros();
        let frame_count = (horizon_us / cadence_us) + 1;

        let mut frames: Vec<MetricsFrame> = (0..frame_count)
            .map(|index| MetricsFrame {
                index,
                start_us: index * cadence_us,
                end_us: ((index + 1) * cadence_us).min(horizon_us.max(index * cadence_us + 1)),
                counts: FrameCounts::default(),
                gauges: Vec::new(),
            })
            .collect();
        // Gauge series under construction, keyed for deterministic order.
        let mut gauges: BTreeMap<(u64, String, u64), GaugeSeries> = BTreeMap::new();

        for timed in &trace.events {
            let t_us = timed.time.as_micros();
            let index = (t_us / cadence_us).min(frame_count - 1);
            frames[index as usize].counts.count(&timed.event);
            if let SimEvent::Gauge {
                node,
                metric,
                value,
            } = &timed.event
            {
                let key = (index, (*metric).to_owned(), node.index() as u64);
                gauges
                    .entry(key)
                    .or_insert_with(|| GaugeSeries {
                        metric: (*metric).to_owned(),
                        node: node.index() as u64,
                        values: QuantileSketch::new(),
                        last_t_us: 0,
                        last_seq: 0,
                        last_value: 0,
                    })
                    .record(t_us, timed.seq, *value);
            }
        }
        for ((index, _, _), series) in gauges {
            frames[index as usize].gauges.push(series);
        }

        MetricsTimeline {
            capture: trace.capture.name().to_owned(),
            cadence_us,
            horizon_us,
            n: trace.n as u64,
            dropped_events: trace.dropped_events,
            frames,
        }
    }

    /// Folds `other` into `self`: frames merge-join on index, counts
    /// add, gauge sketches merge. Associative and order-insensitive
    /// bit-for-bit (the proptests in `crates/bench` assert both).
    ///
    /// The two timelines must share `cadence_us` and `n`; the horizon
    /// extends to the maximum of the two.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the shapes differ.
    pub fn merge(&mut self, other: &MetricsTimeline) -> Result<(), String> {
        if self.cadence_us != other.cadence_us {
            return Err(format!(
                "cadence mismatch: {} vs {} µs",
                self.cadence_us, other.cadence_us
            ));
        }
        if self.n != other.n {
            return Err(format!("node-count mismatch: {} vs {}", self.n, other.n));
        }
        self.horizon_us = self.horizon_us.max(other.horizon_us);
        self.dropped_events += other.dropped_events;
        let mut merged: Vec<MetricsFrame> =
            Vec::with_capacity(self.frames.len().max(other.frames.len()));
        let (mut a, mut b) = (
            self.frames.iter().peekable(),
            other.frames.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(fa), Some(fb)) => {
                    if fa.index == fb.index {
                        let mut f = (*fa).clone();
                        f.merge(fb);
                        merged.push(f);
                        a.next();
                        b.next();
                    } else if fa.index < fb.index {
                        merged.push((*fa).clone());
                        a.next();
                    } else {
                        merged.push((*fb).clone());
                        b.next();
                    }
                }
                (Some(fa), None) => {
                    merged.push((*fa).clone());
                    a.next();
                }
                (None, Some(fb)) => {
                    merged.push((*fb).clone());
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.frames = merged;
        Ok(())
    }
}

/// One attributed latency cause, aggregated over every commit it
/// overlapped.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BlameCause {
    /// Cause category: `crash`, `transient`, `partition`, `slowdown`,
    /// `link_degrade`, `retry_backoff`, `recovery_catchup`,
    /// `byzantine` or `baseline`.
    pub category: String,
    /// The concrete cause (category plus victims and window, e.g.
    /// `"transient nodes=[5,6] 10.000s..20.000s"`).
    pub cause: String,
    /// Commits whose `[submit, commit]` interval overlapped the cause.
    pub commits: u64,
    /// Latency distribution of those commits (microsecond grid).
    pub latency: QuantileSketch,
}

/// Per-transaction blame for one of the slowest commits.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TxBlame {
    /// Position in [`RunResult::latencies`].
    pub index: u64,
    /// Submission instant, microseconds.
    pub submit_us: u64,
    /// Commit instant, microseconds.
    pub commit_us: u64,
    /// Client-observed latency, seconds.
    pub latency_secs: f64,
    /// The cause labels attributed to this transaction.
    pub causes: Vec<String>,
}

/// Mean seconds spent in each pipeline stage, from the always-on
/// [`StageLatencies`] decomposition.
///
/// [`StageLatencies`]: crate::metrics::StageLatencies
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageSplit {
    /// Submission → first validator arrival.
    pub queueing_mean_secs: f64,
    /// First arrival → first commit.
    pub consensus_mean_secs: f64,
    /// First commit → client resolution.
    pub delivery_mean_secs: f64,
}

/// The causal latency attribution of a run that committed transactions.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlameTable {
    /// Committed transactions analysed.
    pub commits: u64,
    /// Overall latency distribution (microsecond grid).
    pub overall: QuantileSketch,
    /// Mean stage decomposition of the committed transactions.
    pub stages: StageSplit,
    /// Every cause that overlapped at least one commit, sorted by
    /// `(category, cause)` for stable output.
    pub causes: Vec<BlameCause>,
    /// The [`SLOWEST_TXS`] slowest commits with per-transaction causes
    /// (slowest first; ties broken by submission order).
    pub slowest: Vec<TxBlame>,
}

/// A fault described for humans: kind, victims and active window.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultDescription {
    /// The action kind (`crash`, `transient`, `partition`, `slowdown`,
    /// `link_degrade`).
    pub kind: String,
    /// Whole-node victims (empty for link-level faults).
    pub nodes: Vec<u64>,
    /// Injection instant, microseconds.
    pub at_us: u64,
    /// Window end, microseconds — `None` for a permanent crash.
    pub until_us: Option<u64>,
}

impl FaultDescription {
    fn from_action(action: &FaultAction) -> FaultDescription {
        FaultDescription {
            kind: fault_kind(action).to_owned(),
            nodes: action.victims().iter().map(|n| n.index() as u64).collect(),
            at_us: action.start().as_micros(),
            until_us: action.window().map(|w| w.until.as_micros()),
        }
    }

    fn label(&self) -> String {
        let span = match self.until_us {
            Some(until) => format!(
                "{:.3}s..{:.3}s",
                self.at_us as f64 / 1e6,
                until as f64 / 1e6
            ),
            None => format!("@{:.3}s (permanent)", self.at_us as f64 / 1e6),
        };
        if self.nodes.is_empty() {
            format!("{} {span}", self.kind)
        } else {
            format!("{} nodes={:?} {span}", self.kind, self.nodes)
        }
    }
}

/// The last phase span a node entered (and, in a stalled run, never
/// progressed out of).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StalledPhase {
    /// The node's dense index.
    pub node: u64,
    /// The phase label from [`Ctx::span`].
    ///
    /// [`Ctx::span`]: stabl_sim::Ctx::span
    pub phase: String,
    /// When the node entered it, microseconds.
    pub entered_us: u64,
}

/// Why a run stopped committing: the structured stall verdict.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LivenessPostMortem {
    /// The last commit instant, if anything ever committed.
    pub last_commit_us: Option<u64>,
    /// The stall instant the analysis anchors on (last commit, or 0 if
    /// nothing ever committed).
    pub stall_us: u64,
    /// Transactions still unresolved at the horizon.
    pub unresolved: u64,
    /// Clients that exhausted their retries.
    pub give_ups: u64,
    /// Per node, the last phase span entered — the span that never
    /// closed. Sorted by node. Empty when the trace recorded no phase
    /// marks (capture below `Events`).
    pub stalled_phases: Vec<StalledPhase>,
    /// Nodes down at the horizon: crashed and never restarted, or
    /// panicked. Sorted, deduplicated.
    pub affected_nodes: Vec<u64>,
    /// Fault windows still active at (or beginning after) the stall.
    pub active_faults: Vec<FaultDescription>,
    /// One-paragraph human-readable summary of the above.
    pub verdict: String,
}

/// The complete diagnosis of one run.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Diagnosis {
    /// The run label (typically `chain/scenario`).
    pub label: String,
    /// Capture level of the source trace.
    pub capture: String,
    /// The run horizon, microseconds.
    pub horizon_us: u64,
    /// Validator count.
    pub n: u64,
    /// Committed transaction count.
    pub committed: u64,
    /// Submitted transaction count.
    pub submitted: u64,
    /// `true` if the harness declared liveness lost.
    pub lost_liveness: bool,
    /// Events evicted from the recorder ring (under-counted timeline).
    pub dropped_events: u64,
    /// Free-text trace lines evicted from the kernel ring.
    pub dropped_trace_lines: u64,
    /// Speculative (Block-STM) transaction re-executions, stale plus
    /// conflict-driven. Zero under the paper's contention-free workload.
    pub speculative_reexecutions: u64,
    /// Within-block read-write conflicts the execution engine aborted
    /// and re-ran.
    pub conflict_aborts: u64,
    /// Transactions rejected because an admission pool was full.
    pub pool_evictions: u64,
    /// Transactions rejected by first-arrival-wins nonce-slot conflicts.
    pub pool_replacements: u64,
    /// Every fault the schedule injects (for timeline shading).
    pub faults: Vec<FaultDescription>,
    /// Latency attribution — present when at least one tx committed.
    pub blame: Option<BlameTable>,
    /// Stall analysis — present when the run lost liveness or never
    /// committed anything.
    pub post_mortem: Option<LivenessPostMortem>,
}

fn fault_kind(action: &FaultAction) -> &'static str {
    match action {
        FaultAction::Crash { .. } => "crash",
        FaultAction::Transient { .. } => "transient",
        FaultAction::Partition { .. } => "partition",
        FaultAction::Slowdown { .. } => "slowdown",
        FaultAction::LinkDegrade { .. } => "link_degrade",
    }
}

/// The `[at, until)` interval during which `action` can affect a run
/// (a crash stays active to the end of time).
fn active_interval(action: &FaultAction) -> (u64, u64) {
    match action.window() {
        Some(w) => (w.at.as_micros(), w.until.as_micros()),
        None => (action.start().as_micros(), u64::MAX),
    }
}

fn overlaps(interval: (u64, u64), submit_us: u64, commit_us: u64) -> bool {
    let (at, until) = interval;
    at <= commit_us && submit_us < until
}

/// Builds the latency blame table. Returns `None` when nothing
/// committed (the post-mortem takes over).
fn blame_table(config: &RunConfig, result: &RunResult, trace: &RunTrace) -> Option<BlameTable> {
    if result.latencies.is_empty() {
        return None;
    }

    // Event streams the per-tx attribution binary-searches into.
    let mut retry_times: Vec<u64> = Vec::new();
    let mut restart_times: Vec<u64> = Vec::new();
    for timed in &trace.events {
        match timed.event {
            SimEvent::ClientRetried { .. } => retry_times.push(timed.time.as_micros()),
            SimEvent::NodeRestarted { .. } => restart_times.push(timed.time.as_micros()),
            _ => {}
        }
    }
    retry_times.sort_unstable();
    restart_times.sort_unstable();
    let any_in = |times: &[u64], lo: u64, hi: u64| {
        let start = times.partition_point(|&t| t < lo);
        start < times.len() && times[start] <= hi
    };

    let faults: Vec<(FaultDescription, (u64, u64))> = config
        .faults
        .actions()
        .iter()
        .map(|a| (FaultDescription::from_action(a), active_interval(a)))
        .collect();
    let byzantine_label = byzantine_cause(&config.byzantine);

    let mut overall = QuantileSketch::new();
    let mut causes: BTreeMap<(String, String), (u64, QuantileSketch)> = BTreeMap::new();
    let mut txs: Vec<TxBlame> = Vec::with_capacity(result.latencies.len());

    for (i, (&latency, &commit)) in result
        .latencies
        .iter()
        .zip(result.commit_times.iter())
        .enumerate()
    {
        let commit_us = commit.as_micros();
        let latency_us = (latency * 1e6).round() as u64;
        let submit_us = commit_us.saturating_sub(latency_us);
        overall.record_secs(latency);

        let mut tx_causes: Vec<(String, String)> = Vec::new();
        for (description, interval) in &faults {
            if overlaps(*interval, submit_us, commit_us) {
                tx_causes.push((description.kind.clone(), description.label()));
            }
        }
        if any_in(&retry_times, submit_us, commit_us) {
            tx_causes.push((
                "retry_backoff".to_owned(),
                "client retries in flight".to_owned(),
            ));
        }
        if any_in(&restart_times, submit_us, commit_us) {
            tx_causes.push((
                "recovery_catchup".to_owned(),
                "restarted node catching up".to_owned(),
            ));
        }
        if let Some(label) = &byzantine_label {
            tx_causes.push(("byzantine".to_owned(), label.clone()));
        }
        if tx_causes.is_empty() {
            tx_causes.push(("baseline".to_owned(), "no adverse condition".to_owned()));
        }

        for key in &tx_causes {
            let slot = causes
                .entry(key.clone())
                .or_insert_with(|| (0, QuantileSketch::new()));
            slot.0 += 1;
            slot.1.record_secs(latency);
        }
        txs.push(TxBlame {
            index: i as u64,
            submit_us,
            commit_us,
            latency_secs: latency,
            causes: tx_causes.into_iter().map(|(_, label)| label).collect(),
        });
    }

    // Slowest first; ties resolve by submission order for stable bytes.
    txs.sort_by(|a, b| {
        b.latency_secs
            .total_cmp(&a.latency_secs)
            .then(a.index.cmp(&b.index))
    });
    txs.truncate(SLOWEST_TXS);

    let mean = crate::metrics::LatencyHistogram::mean_secs;
    Some(BlameTable {
        commits: result.latencies.len() as u64,
        overall,
        stages: StageSplit {
            queueing_mean_secs: mean(&result.stages.queueing),
            consensus_mean_secs: mean(&result.stages.consensus),
            delivery_mean_secs: mean(&result.stages.delivery),
        },
        causes: causes
            .into_iter()
            .map(|((category, cause), (commits, latency))| BlameCause {
                category,
                cause,
                commits,
                latency,
            })
            .collect(),
        slowest: txs,
    })
}

fn byzantine_cause(spec: &ByzantineSpec) -> Option<String> {
    if !spec.is_active() {
        return None;
    }
    let nodes: Vec<u64> = spec.nodes().iter().map(|n| n.index() as u64).collect();
    Some(format!("byzantine nodes={nodes:?} ({:?})", spec.behavior()))
}

/// Builds the stall post-mortem. Returns `None` for runs that kept
/// committing to the end.
fn post_mortem(
    config: &RunConfig,
    result: &RunResult,
    trace: &RunTrace,
) -> Option<LivenessPostMortem> {
    if !result.lost_liveness && !result.latencies.is_empty() {
        return None;
    }

    let last_commit_us = result.commit_times.iter().map(|t| t.as_micros()).max();
    let stall_us = last_commit_us.unwrap_or(0);

    // Last phase mark per node and crash/restart balance, one pass.
    let mut last_phase: BTreeMap<u64, (u64, String)> = BTreeMap::new();
    let mut down: BTreeMap<u64, bool> = BTreeMap::new(); // node -> currently down
    for timed in &trace.events {
        match &timed.event {
            SimEvent::Phase { node, phase } => {
                last_phase.insert(
                    node.index() as u64,
                    (timed.time.as_micros(), (*phase).to_owned()),
                );
            }
            SimEvent::NodeCrashed { node } => {
                down.insert(node.index() as u64, true);
            }
            SimEvent::NodeRestarted { node } => {
                down.insert(node.index() as u64, false);
            }
            SimEvent::NodePanicked { node } => {
                down.insert(node.index() as u64, true);
            }
            _ => {}
        }
    }
    // Panics are part of the deterministic result, so they survive even
    // capture-off runs.
    for panic in &result.panics {
        down.insert(panic.node.index() as u64, true);
    }

    let stalled_phases: Vec<StalledPhase> = last_phase
        .into_iter()
        .map(|(node, (entered_us, phase))| StalledPhase {
            node,
            phase,
            entered_us,
        })
        .collect();
    let affected_nodes: Vec<u64> = down
        .into_iter()
        .filter_map(|(node, is_down)| is_down.then_some(node))
        .collect();

    let active_faults: Vec<FaultDescription> = config
        .faults
        .actions()
        .iter()
        .filter(|a| active_interval(a).1 > stall_us)
        .map(FaultDescription::from_action)
        .collect();

    let verdict = render_verdict(
        result,
        last_commit_us,
        &stalled_phases,
        &affected_nodes,
        &active_faults,
        byzantine_cause(&config.byzantine),
        stall_us,
    );

    Some(LivenessPostMortem {
        last_commit_us,
        stall_us,
        unresolved: result.unresolved as u64,
        give_ups: result.give_ups,
        stalled_phases,
        affected_nodes,
        active_faults,
        verdict,
    })
}

fn render_verdict(
    result: &RunResult,
    last_commit_us: Option<u64>,
    stalled_phases: &[StalledPhase],
    affected_nodes: &[u64],
    active_faults: &[FaultDescription],
    byzantine: Option<String>,
    stall_us: u64,
) -> String {
    let mut out = match last_commit_us {
        Some(t) => format!(
            "liveness lost: last commit at {:.3}s, {} of {} submitted transactions unresolved.",
            t as f64 / 1e6,
            result.unresolved,
            result.submitted
        ),
        None => format!(
            "liveness lost: nothing ever committed ({} transactions submitted).",
            result.submitted
        ),
    };
    if !affected_nodes.is_empty() {
        out.push_str(&format!(" Nodes down at the horizon: {affected_nodes:?}."));
    }
    if !active_faults.is_empty() {
        let labels: Vec<String> = active_faults.iter().map(FaultDescription::label).collect();
        out.push_str(&format!(
            " Fault windows active at or after the stall: {}.",
            labels.join("; ")
        ));
    }
    if let Some(label) = byzantine {
        out.push_str(&format!(" {label} throughout the run."));
    }
    // The spinning phase: the span entered latest and never left.
    if let Some(spinning) = stalled_phases
        .iter()
        .filter(|p| p.entered_us >= stall_us)
        .max_by_key(|p| (p.entered_us, p.node))
    {
        out.push_str(&format!(
            " Node {} was last seen entering phase \"{}\" at {:.3}s without progressing to a commit.",
            spinning.node,
            spinning.phase,
            spinning.entered_us as f64 / 1e6
        ));
    }
    if result.give_ups > 0 {
        out.push_str(&format!(
            " {} client submissions exhausted their retries.",
            result.give_ups
        ));
    }
    out
}

/// One diagnosed run: the compact [`Diagnosis`] verdict artifact plus
/// the bulky [`MetricsTimeline`] (exported separately as JSONL so the
/// committed diagnosis JSON stays small).
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnosedRun {
    /// Blame, post-mortem and run headline — the committed artifact.
    pub diagnosis: Diagnosis,
    /// The sampled metric frames.
    pub timeline: MetricsTimeline,
}

/// Diagnoses one run: metrics timeline, latency blame and (for stalled
/// runs) the liveness post-mortem.
///
/// Pure function of its inputs — same run artifacts, same bytes. The
/// blame and post-mortem layers degrade gracefully with the capture
/// level: below [`CaptureLevel::Events`] the event-derived signals
/// (retries, restarts, phase marks, gauges) are absent and attribution
/// falls back to the fault schedule alone.
///
/// [`CaptureLevel::Events`]: stabl_sim::CaptureLevel::Events
pub fn diagnose_run(
    label: &str,
    config: &RunConfig,
    result: &RunResult,
    trace: &RunTrace,
    cadence: SimDuration,
) -> DiagnosedRun {
    let diagnosis = Diagnosis {
        label: label.to_owned(),
        capture: trace.capture.name().to_owned(),
        horizon_us: trace.horizon.as_micros(),
        n: trace.n as u64,
        committed: result.latencies.len() as u64,
        submitted: result.submitted as u64,
        lost_liveness: result.lost_liveness,
        dropped_events: trace.dropped_events,
        dropped_trace_lines: result.stats.dropped_trace_lines,
        speculative_reexecutions: result.stats.speculative_reexecutions,
        conflict_aborts: result.stats.conflict_aborts,
        pool_evictions: result.stats.pool_evictions,
        pool_replacements: result.stats.pool_replacements,
        faults: config
            .faults
            .actions()
            .iter()
            .map(FaultDescription::from_action)
            .collect(),
        blame: blame_table(config, result, trace),
        post_mortem: post_mortem(config, result, trace),
    };
    DiagnosedRun {
        diagnosis,
        timeline: MetricsTimeline::from_trace(trace, cadence),
    }
}

/// Serialises the timeline as one frame per JSON line.
pub fn timeline_jsonl(timeline: &MetricsTimeline) -> String {
    let mut out = String::new();
    for frame in &timeline.frames {
        // stabl-lint: allow(R-002, in-memory serialisation of a derived struct is infallible and a Result signature would push an impossible branch onto every exporter caller)
        out.push_str(&serde_json::to_string(frame).expect("frame serialisation cannot fail"));
        out.push('\n');
    }
    out
}

/// Serialises the whole diagnosis as pretty-printed JSON (newline
/// terminated).
pub fn diagnosis_json(diagnosis: &Diagnosis) -> String {
    // stabl-lint: allow(R-002, in-memory serialisation of a derived struct is infallible and a Result signature would push an impossible branch onto every exporter caller)
    let mut out = serde_json::to_string_pretty(diagnosis).expect("serialisation cannot fail");
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// HTML timeline report
// ---------------------------------------------------------------------

const SVG_W: f64 = 860.0;
const SVG_H: f64 = 72.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// One `<svg>` sparkline of a metric across the timeline: per frame the
/// maximum sample over all nodes, with fault windows shaded behind it.
fn sparkline(timeline: &MetricsTimeline, metric: &str, faults: &[FaultDescription]) -> String {
    let horizon = timeline.horizon_us.max(1) as f64;
    let x_of = |t_us: u64| (t_us as f64 / horizon * SVG_W).min(SVG_W);

    let mut points: Vec<(u64, u64)> = Vec::new(); // (mid_us, value)
    let mut peak = 0u64;
    for frame in &timeline.frames {
        let frame_max = frame
            .gauges
            .iter()
            .filter(|g| g.metric == metric)
            .map(|g| g.values.max_micros)
            .max();
        if let Some(v) = frame_max {
            points.push(((frame.start_us + frame.end_us) / 2, v));
            peak = peak.max(v);
        }
    }
    let y_of = |v: u64| {
        let scale = peak.max(1) as f64;
        SVG_H - 4.0 - (v as f64 / scale) * (SVG_H - 12.0)
    };

    let mut svg = format!(
        "<svg viewBox=\"0 0 {SVG_W} {SVG_H}\" width=\"{SVG_W}\" height=\"{SVG_H}\" \
         role=\"img\" aria-label=\"{}\">\n",
        esc(metric)
    );
    for fault in faults {
        let x0 = x_of(fault.at_us);
        let x1 = x_of(fault.until_us.unwrap_or(timeline.horizon_us));
        svg.push_str(&format!(
            "  <rect x=\"{x0:.1}\" y=\"0\" width=\"{:.1}\" height=\"{SVG_H}\" \
             class=\"fault fault-{}\"><title>{}</title></rect>\n",
            (x1 - x0).max(1.0),
            esc(&fault.kind),
            esc(&fault.label()),
        ));
    }
    if points.is_empty() {
        svg.push_str(&format!(
            "  <text x=\"8\" y=\"{:.1}\" class=\"empty\">no samples</text>\n",
            SVG_H / 2.0
        ));
    } else {
        let path: Vec<String> = points
            .iter()
            .map(|&(t, v)| format!("{:.1},{:.1}", x_of(t), y_of(v)))
            .collect();
        svg.push_str(&format!(
            "  <polyline fill=\"none\" class=\"series\" points=\"{}\"/>\n",
            path.join(" ")
        ));
    }
    svg.push_str(&format!(
        "  <text x=\"{:.1}\" y=\"12\" text-anchor=\"end\" class=\"peak\">peak {peak}</text>\n",
        SVG_W - 4.0
    ));
    svg.push_str("</svg>\n");
    svg
}

/// Renders the diagnosis as a self-contained HTML page: one sparkline
/// per gauge metric (fault windows shaded), the frame-level commit /
/// retry counts, the blame table and — for stalled runs — the
/// post-mortem verdict. No external assets, deterministic bytes.
pub fn html_report(run: &DiagnosedRun) -> String {
    let diagnosis = &run.diagnosis;
    let mut metrics: Vec<&str> = Vec::new();
    for frame in &run.timeline.frames {
        for gauge in &frame.gauges {
            if !metrics.contains(&gauge.metric.as_str()) {
                metrics.push(&gauge.metric);
            }
        }
    }
    metrics.sort_unstable();

    let mut html = String::new();
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    html.push_str(&format!(
        "<title>stabl diagnosis — {}</title>\n",
        esc(&diagnosis.label)
    ));
    html.push_str(
        "<style>\n\
         body{font-family:system-ui,sans-serif;margin:2rem;max-width:60rem}\n\
         h1{font-size:1.4rem} h2{font-size:1.1rem;margin-top:2rem}\n\
         table{border-collapse:collapse;font-size:0.9rem}\n\
         td,th{border:1px solid #ccc;padding:0.25rem 0.6rem;text-align:left}\n\
         .series{stroke:#1f77b4;stroke-width:1.5}\n\
         .fault{opacity:0.18} .fault-crash{fill:#d62728} .fault-transient{fill:#ff7f0e}\n\
         .fault-partition{fill:#9467bd} .fault-slowdown{fill:#bcbd22}\n\
         .fault-link_degrade{fill:#8c564b}\n\
         .peak,.empty{font-size:10px;fill:#666}\n\
         .verdict{background:#fff3cd;border:1px solid #ffe69c;padding:0.8rem}\n\
         .warn{color:#b02a37;font-weight:600}\n\
         svg{display:block;background:#fafafa;border:1px solid #eee;margin:0.3rem 0 1rem}\n\
         </style>\n</head>\n<body>\n",
    );
    html.push_str(&format!(
        "<h1>stabl diagnosis — {}</h1>\n",
        esc(&diagnosis.label)
    ));
    html.push_str(&format!(
        "<p>{} nodes, horizon {:.1}s, capture <code>{}</code>: {} / {} submitted transactions \
         committed{}.</p>\n",
        diagnosis.n,
        diagnosis.horizon_us as f64 / 1e6,
        esc(&diagnosis.capture),
        diagnosis.committed,
        diagnosis.submitted,
        if diagnosis.lost_liveness {
            ", <strong class=\"warn\">liveness lost</strong>"
        } else {
            ""
        },
    ));
    if diagnosis.dropped_events > 0 {
        html.push_str(&format!(
            "<p class=\"warn\">warning: {} events were evicted from the recorder ring — the \
             earliest frames under-count.</p>\n",
            diagnosis.dropped_events
        ));
    }
    if diagnosis.dropped_trace_lines > 0 {
        html.push_str(&format!(
            "<p class=\"warn\">warning: {} free-text trace lines were dropped at the kernel \
             ring.</p>\n",
            diagnosis.dropped_trace_lines
        ));
    }
    let contention = diagnosis.speculative_reexecutions
        + diagnosis.conflict_aborts
        + diagnosis.pool_evictions
        + diagnosis.pool_replacements;
    if contention > 0 {
        html.push_str(&format!(
            "<h2>Contention</h2>\n<table>\n\
             <tr><th>counter</th><th>count</th></tr>\n\
             <tr><td>speculative re-executions</td><td>{}</td></tr>\n\
             <tr><td>conflict aborts</td><td>{}</td></tr>\n\
             <tr><td>pool evictions (full)</td><td>{}</td></tr>\n\
             <tr><td>pool replacements (nonce-slot conflicts)</td><td>{}</td></tr>\n\
             </table>\n",
            diagnosis.speculative_reexecutions,
            diagnosis.conflict_aborts,
            diagnosis.pool_evictions,
            diagnosis.pool_replacements,
        ));
    }

    if let Some(post_mortem) = &diagnosis.post_mortem {
        html.push_str("<h2>Liveness post-mortem</h2>\n");
        html.push_str(&format!(
            "<p class=\"verdict\">{}</p>\n",
            esc(&post_mortem.verdict)
        ));
        if !post_mortem.stalled_phases.is_empty() {
            html.push_str(
                "<table>\n<tr><th>node</th><th>last phase entered</th><th>at</th></tr>\n",
            );
            for phase in &post_mortem.stalled_phases {
                html.push_str(&format!(
                    "<tr><td>{}</td><td><code>{}</code></td><td>{:.3}s</td></tr>\n",
                    phase.node,
                    esc(&phase.phase),
                    phase.entered_us as f64 / 1e6
                ));
            }
            html.push_str("</table>\n");
        }
    }

    if let Some(blame) = &diagnosis.blame {
        html.push_str("<h2>Latency blame</h2>\n");
        html.push_str(&format!(
            "<p>{} commits; stage means: queueing {:.3}s, consensus {:.3}s, delivery \
             {:.3}s.</p>\n",
            blame.commits,
            blame.stages.queueing_mean_secs,
            blame.stages.consensus_mean_secs,
            blame.stages.delivery_mean_secs,
        ));
        html.push_str(
            "<table>\n<tr><th>cause</th><th>commits</th><th>p50</th><th>p99</th>\
             <th>max</th></tr>\n",
        );
        for cause in &blame.causes {
            html.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{:.3}s</td><td>{:.3}s</td><td>{:.3}s</td></tr>\n",
                esc(&cause.cause),
                cause.commits,
                cause.latency.quantile(0.5).unwrap_or(0.0),
                cause.latency.quantile(0.99).unwrap_or(0.0),
                cause.latency.max_secs().unwrap_or(0.0),
            ));
        }
        html.push_str("</table>\n");
        if !blame.slowest.is_empty() {
            html.push_str("<h2>Slowest transactions</h2>\n");
            html.push_str(
                "<table>\n<tr><th>#</th><th>submitted</th><th>committed</th>\
                 <th>latency</th><th>causes</th></tr>\n",
            );
            for tx in &blame.slowest {
                html.push_str(&format!(
                    "<tr><td>{}</td><td>{:.3}s</td><td>{:.3}s</td><td>{:.3}s</td>\
                     <td>{}</td></tr>\n",
                    tx.index,
                    tx.submit_us as f64 / 1e6,
                    tx.commit_us as f64 / 1e6,
                    tx.latency_secs,
                    esc(&tx.causes.join("; ")),
                ));
            }
            html.push_str("</table>\n");
        }
    }

    html.push_str("<h2>Gauge timelines</h2>\n");
    if metrics.is_empty() {
        html.push_str(
            "<p>No gauge samples were recorded (capture below <code>events</code>, \
                       or the protocol emits none).</p>\n",
        );
    }
    for metric in metrics {
        html.push_str(&format!("<h3><code>{}</code></h3>\n", esc(metric)));
        html.push_str(&sparkline(&run.timeline, metric, &diagnosis.faults));
    }

    // Commit / retry activity per frame as a final sparkline-style table.
    html.push_str("<h2>Frame activity</h2>\n");
    html.push_str(
        "<table>\n<tr><th>frame</th><th>commits</th><th>submits</th><th>retries</th>\
         <th>give-ups</th><th>crashes</th><th>restarts</th></tr>\n",
    );
    for frame in &run.timeline.frames {
        if frame.counts.total() == 0 {
            continue;
        }
        html.push_str(&format!(
            "<tr><td>{:.1}s–{:.1}s</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td></tr>\n",
            frame.start_us as f64 / 1e6,
            frame.end_us as f64 / 1e6,
            frame.counts.commits,
            frame.counts.submits,
            frame.counts.retries,
            frame.counts.give_ups,
            frame.counts.crashes,
            frame.counts.restarts,
        ));
    }
    html.push_str("</table>\n</body>\n</html>\n");
    html
}

/// Convenience: diagnose a schedule of `FaultSchedule` description
/// labels without running anything (used by reports that only have the
/// config).
pub fn describe_schedule(schedule: &FaultSchedule) -> Vec<String> {
    schedule
        .actions()
        .iter()
        .map(|a| FaultDescription::from_action(a).label())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RunTrace;
    use stabl_sim::{CaptureLevel, EventCounters, NodeId, SimTime, TimedEvent};

    fn gauge(t_ms: u64, seq: u64, node: u32, metric: &'static str, value: u64) -> TimedEvent {
        TimedEvent {
            time: SimTime::from_millis(t_ms),
            seq,
            event: SimEvent::Gauge {
                node: NodeId::new(node),
                metric,
                value,
            },
        }
    }

    fn timed(t_ms: u64, seq: u64, event: SimEvent) -> TimedEvent {
        TimedEvent {
            time: SimTime::from_millis(t_ms),
            seq,
            event,
        }
    }

    fn trace_with(events: Vec<TimedEvent>) -> RunTrace {
        RunTrace {
            capture: CaptureLevel::Events,
            n: 3,
            horizon: SimTime::from_secs(10),
            events,
            counters: EventCounters::default(),
            dropped_events: 0,
        }
    }

    #[test]
    fn timeline_buckets_events_by_cadence() {
        let trace = trace_with(vec![
            gauge(500, 0, 0, "mempool_depth", 4),
            gauge(1_500, 1, 0, "mempool_depth", 7),
            timed(
                1_600,
                2,
                SimEvent::Committed {
                    node: NodeId::new(1),
                },
            ),
        ]);
        let timeline = MetricsTimeline::from_trace(&trace, SimDuration::from_secs(1));
        assert_eq!(timeline.frames.len(), 11, "10 s horizon, 1 s cadence");
        assert_eq!(timeline.frames[0].counts.gauge_samples, 1);
        assert_eq!(timeline.frames[1].counts.gauge_samples, 1);
        assert_eq!(timeline.frames[1].counts.commits, 1);
        let series = &timeline.frames[1].gauges[0];
        assert_eq!(series.metric, "mempool_depth");
        assert_eq!(series.last_value, 7);
    }

    #[test]
    fn timeline_merge_is_associative_and_commutative() {
        let make = |seed: u64| {
            let events: Vec<TimedEvent> = (0..20)
                .map(|i| {
                    gauge(
                        (seed * 137 + i * 433) % 10_000,
                        i,
                        (i % 3) as u32,
                        if i % 2 == 0 { "round" } else { "mempool_depth" },
                        seed + i,
                    )
                })
                .collect();
            MetricsTimeline::from_trace(&trace_with(events), SimDuration::from_secs(1))
        };
        let (a, b, c) = (make(1), make(2), make(3));

        let mut ab_c = a.clone();
        ab_c.merge(&b).expect("shape");
        ab_c.merge(&c).expect("shape");
        let mut bc = b.clone();
        bc.merge(&c).expect("shape");
        let mut a_bc = a.clone();
        a_bc.merge(&bc).expect("shape");
        assert_eq!(ab_c, a_bc, "merge is associative");

        let mut ba = b.clone();
        ba.merge(&a).expect("shape");
        let mut ab = a.clone();
        ab.merge(&b).expect("shape");
        assert_eq!(ab, ba, "merge is commutative");
    }

    #[test]
    fn timeline_merge_rejects_shape_mismatch() {
        let a = MetricsTimeline::from_trace(&trace_with(vec![]), SimDuration::from_secs(1));
        let mut b = a.clone();
        b.cadence_us = 123;
        assert!(b.merge(&a).is_err());
    }

    fn stalled_result() -> RunResult {
        RunResult {
            latencies: vec![],
            commit_times: vec![],
            submitted: 40,
            unresolved: 40,
            lost_liveness: true,
            panics: vec![],
            stats: Default::default(),
            retries: 0,
            give_ups: 3,
            horizon: SimTime::from_secs(10),
            stages: Default::default(),
        }
    }

    #[test]
    fn post_mortem_names_phase_nodes_and_fault() {
        let mut config = RunConfig::quick(7);
        config.faults = FaultSchedule::new(vec![FaultAction::Crash {
            nodes: vec![NodeId::new(1), NodeId::new(2)],
            at: SimTime::from_secs(2),
        }]);
        let trace = trace_with(vec![
            timed(
                2_000,
                0,
                SimEvent::NodeCrashed {
                    node: NodeId::new(1),
                },
            ),
            timed(
                2_000,
                1,
                SimEvent::NodeCrashed {
                    node: NodeId::new(2),
                },
            ),
            timed(
                2_500,
                2,
                SimEvent::Phase {
                    node: NodeId::new(0),
                    phase: "ba-round",
                },
            ),
        ]);
        let run = diagnose_run(
            "test/crash",
            &config,
            &stalled_result(),
            &trace,
            DEFAULT_CADENCE,
        );
        let post_mortem = run.diagnosis.post_mortem.expect("stalled run");
        assert_eq!(post_mortem.affected_nodes, vec![1, 2]);
        assert_eq!(post_mortem.active_faults.len(), 1);
        assert_eq!(post_mortem.active_faults[0].kind, "crash");
        assert_eq!(post_mortem.stalled_phases.len(), 1);
        assert_eq!(post_mortem.stalled_phases[0].phase, "ba-round");
        assert!(post_mortem.verdict.contains("nothing ever committed"));
        assert!(post_mortem.verdict.contains("ba-round"));
        assert!(run.diagnosis.blame.is_none(), "no commits, no blame table");
    }

    #[test]
    fn blame_attributes_fault_overlap_and_baseline() {
        let mut config = RunConfig::quick(7);
        config.faults = FaultSchedule::new(vec![FaultAction::Partition {
            nodes: vec![NodeId::new(0)],
            at: SimTime::from_secs(4),
            heal_at: SimTime::from_secs(6),
        }]);
        let result = RunResult {
            // One tx entirely before the partition, one spanning it.
            latencies: vec![0.5, 3.0],
            commit_times: vec![SimTime::from_secs(1), SimTime::from_secs(7)],
            submitted: 2,
            unresolved: 0,
            lost_liveness: false,
            panics: vec![],
            stats: Default::default(),
            retries: 0,
            give_ups: 0,
            horizon: SimTime::from_secs(10),
            stages: Default::default(),
        };
        let trace = trace_with(vec![]);
        let run = diagnose_run("test/partition", &config, &result, &trace, DEFAULT_CADENCE);
        let blame = run.diagnosis.blame.expect("committed txs");
        assert!(
            run.diagnosis.post_mortem.is_none(),
            "live run, no post-mortem"
        );
        assert_eq!(blame.commits, 2);
        let categories: Vec<&str> = blame.causes.iter().map(|c| c.category.as_str()).collect();
        assert_eq!(categories, vec!["baseline", "partition"]);
        assert_eq!(blame.causes[0].commits, 1, "fast tx is baseline");
        assert_eq!(blame.causes[1].commits, 1, "slow tx blames the partition");
        assert_eq!(blame.slowest[0].latency_secs, 3.0, "slowest first");
        assert!(blame.slowest[0].causes[0].contains("partition"));
    }

    #[test]
    fn retry_events_become_a_blame_cause() {
        let config = RunConfig::quick(7);
        let result = RunResult {
            latencies: vec![2.0],
            commit_times: vec![SimTime::from_secs(3)],
            submitted: 1,
            unresolved: 0,
            lost_liveness: false,
            panics: vec![],
            stats: Default::default(),
            retries: 1,
            give_ups: 0,
            horizon: SimTime::from_secs(10),
            stages: Default::default(),
        };
        let trace = trace_with(vec![timed(
            2_000,
            0,
            SimEvent::ClientRetried {
                client: 0,
                node: NodeId::new(1),
            },
        )]);
        let blame = diagnose_run("test/retry", &config, &result, &trace, DEFAULT_CADENCE)
            .diagnosis
            .blame
            .expect("committed");
        assert_eq!(blame.causes.len(), 1);
        assert_eq!(blame.causes[0].category, "retry_backoff");
    }

    #[test]
    fn exporters_are_deterministic() {
        let mut config = RunConfig::quick(7);
        config.faults = FaultSchedule::new(vec![FaultAction::Transient {
            nodes: vec![NodeId::new(2)],
            at: SimTime::from_secs(3),
            recover_at: SimTime::from_secs(5),
        }]);
        let trace = trace_with(vec![
            gauge(500, 0, 0, "round", 1),
            gauge(4_500, 1, 0, "round", 3),
        ]);
        let run = diagnose_run(
            "test/deterministic",
            &config,
            &stalled_result(),
            &trace,
            DEFAULT_CADENCE,
        );
        assert_eq!(
            diagnosis_json(&run.diagnosis),
            diagnosis_json(&run.diagnosis)
        );
        let html = html_report(&run);
        assert_eq!(html, html_report(&run));
        assert!(html.contains("<svg"), "gauge sparkline rendered");
        assert!(html.contains("fault-transient"), "fault window shaded");
        assert!(html.contains("liveness lost"));
        let jsonl = timeline_jsonl(&run.timeline);
        assert_eq!(jsonl.lines().count(), run.timeline.frames.len());
    }

    #[test]
    fn diagnosis_roundtrips_through_serde() {
        let config = RunConfig::quick(7);
        let trace = trace_with(vec![gauge(500, 0, 1, "mempool_depth", 9)]);
        let run = diagnose_run(
            "test/serde",
            &config,
            &stalled_result(),
            &trace,
            DEFAULT_CADENCE,
        );
        let json = serde_json::to_string(&run.diagnosis).expect("serialise");
        let back: Diagnosis = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, run.diagnosis);
        let json = serde_json::to_string(&run.timeline).expect("serialise timeline");
        let back: MetricsTimeline = serde_json::from_str(&json).expect("deserialise timeline");
        assert_eq!(back, run.timeline);
    }
}
