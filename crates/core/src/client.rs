//! Client connection strategies.
//!
//! Blockchain SDKs typically connect an application to a *single* node
//! and trust it — which silently reduces the tolerated Byzantine nodes
//! to zero (§3). Stabl's *secure client* instead submits every
//! transaction to `t_B + 1` nodes and reports it committed only once all
//! of them responded, deduplication being left to the chain.

use stabl_sim::NodeId;

/// How clients attach to the blockchain network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ClientMode {
    /// Each client trusts one node (the common SDK default).
    #[default]
    Single,
    /// Each client submits to — and awaits commits from — `replication`
    /// distinct nodes (the paper uses 4 = max `t_B + 1` for n = 10).
    Secure {
        /// Nodes per client.
        replication: usize,
    },
    /// credence.js-style client: submit to `replication` nodes but
    /// accept as soon as `quorum` of them observed the commit. With
    /// `quorum = t + 1` this tolerates up to `replication − quorum`
    /// *withholding* Byzantine nodes without stalling — the specialised
    /// client library the paper's future work asks to evaluate (§9).
    Credence {
        /// Nodes per client.
        replication: usize,
        /// Matching observations required to accept.
        quorum: usize,
    },
}

impl ClientMode {
    /// The standard secure client of the paper's §7.
    pub fn paper_secure() -> ClientMode {
        ClientMode::Secure { replication: 4 }
    }

    /// A credence.js-style client for `t` Byzantine nodes with one spare
    /// replica: connects to `t + 2` nodes and accepts at `t + 1`
    /// matching observations.
    pub fn credence(t: usize) -> ClientMode {
        ClientMode::Credence {
            replication: t + 2,
            quorum: t + 1,
        }
    }

    /// How many nodes one client uses.
    pub fn replication(&self) -> usize {
        match self {
            ClientMode::Single => 1,
            ClientMode::Secure { replication } => *replication,
            ClientMode::Credence { replication, .. } => *replication,
        }
    }

    /// How many of those nodes must observe a commit before the client
    /// accepts it.
    ///
    /// # Panics
    ///
    /// Panics on a credence mode whose quorum is zero or exceeds its
    /// replication.
    pub fn required_quorum(&self) -> usize {
        match self {
            ClientMode::Single => 1,
            ClientMode::Secure { replication } => *replication,
            ClientMode::Credence {
                replication,
                quorum,
            } => {
                assert!(
                    *quorum >= 1 && quorum <= replication,
                    "credence quorum {quorum} out of range for replication {replication}"
                );
                *quorum
            }
        }
    }

    /// The nodes client `client` submits to, out of the `front_nodes`
    /// client-facing validators (ids `0..front_nodes`).
    ///
    /// # Panics
    ///
    /// Panics if `front_nodes` is zero or smaller than the replication
    /// factor.
    pub fn nodes_for(&self, client: usize, front_nodes: usize) -> Vec<NodeId> {
        assert!(front_nodes > 0, "need at least one client-facing node");
        let replication = self.replication();
        assert!(
            replication <= front_nodes,
            "replication {replication} exceeds the {front_nodes} client-facing nodes"
        );
        (0..replication)
            .map(|j| NodeId::new(((client + j) % front_nodes) as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pins_one_node() {
        let mode = ClientMode::Single;
        assert_eq!(mode.nodes_for(0, 5), vec![NodeId::new(0)]);
        assert_eq!(mode.nodes_for(3, 5), vec![NodeId::new(3)]);
        assert_eq!(mode.nodes_for(7, 5), vec![NodeId::new(2)], "wraps");
        assert_eq!(mode.replication(), 1);
    }

    #[test]
    fn secure_spreads_over_replicas() {
        let mode = ClientMode::paper_secure();
        assert_eq!(
            mode.nodes_for(0, 5),
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        assert_eq!(
            mode.nodes_for(4, 5),
            vec![
                NodeId::new(4),
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2)
            ]
        );
    }

    #[test]
    fn secure_balances_load() {
        // With 5 clients over 5 front nodes at replication 4, every node
        // serves exactly 4 clients.
        let mode = ClientMode::paper_secure();
        let mut load = [0u32; 5];
        for client in 0..5 {
            for node in mode.nodes_for(client, 5) {
                load[node.index()] += 1;
            }
        }
        assert_eq!(load, [4, 4, 4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn oversized_replication_rejected() {
        let _ = ClientMode::Secure { replication: 6 }.nodes_for(0, 5);
    }

    #[test]
    fn credence_quorums() {
        let mode = ClientMode::credence(3);
        assert_eq!(mode.replication(), 5);
        assert_eq!(mode.required_quorum(), 4);
        assert_eq!(ClientMode::Single.required_quorum(), 1);
        assert_eq!(ClientMode::paper_secure().required_quorum(), 4, "wait-all");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn credence_quorum_validated() {
        let _ = ClientMode::Credence {
            replication: 3,
            quorum: 4,
        }
        .required_quorum();
    }
}
