//! Client connection strategies.
//!
//! Blockchain SDKs typically connect an application to a *single* node
//! and trust it — which silently reduces the tolerated Byzantine nodes
//! to zero (§3). Stabl's *secure client* instead submits every
//! transaction to `t_B + 1` nodes and reports it committed only once all
//! of them responded, deduplication being left to the chain.
//!
//! [`RetryPolicy`] adds the robustness layer real SDKs bolt on top:
//! per-submission timeouts with bounded exponential backoff and
//! resubmission to alternate nodes, so a client pinned to a crashed or
//! withholding node eventually routes around it.

use stabl_sim::{NodeId, SimDuration};

/// How clients attach to the blockchain network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ClientMode {
    /// Each client trusts one node (the common SDK default).
    #[default]
    Single,
    /// Each client submits to — and awaits commits from — `replication`
    /// distinct nodes (the paper uses 4 = max `t_B + 1` for n = 10).
    Secure {
        /// Nodes per client.
        replication: usize,
    },
    /// credence.js-style client: submit to `replication` nodes but
    /// accept as soon as `quorum` of them observed the commit. With
    /// `quorum = t + 1` this tolerates up to `replication − quorum`
    /// *withholding* Byzantine nodes without stalling — the specialised
    /// client library the paper's future work asks to evaluate (§9).
    Credence {
        /// Nodes per client.
        replication: usize,
        /// Matching observations required to accept.
        quorum: usize,
    },
}

impl ClientMode {
    /// The standard secure client of the paper's §7.
    pub fn paper_secure() -> ClientMode {
        ClientMode::Secure { replication: 4 }
    }

    /// A credence.js-style client for `t` Byzantine nodes with one spare
    /// replica: connects to `t + 2` nodes and accepts at `t + 1`
    /// matching observations.
    pub fn credence(t: usize) -> ClientMode {
        ClientMode::Credence {
            replication: t + 2,
            quorum: t + 1,
        }
    }

    /// How many nodes one client uses.
    pub fn replication(&self) -> usize {
        match self {
            ClientMode::Single => 1,
            ClientMode::Secure { replication } => *replication,
            ClientMode::Credence { replication, .. } => *replication,
        }
    }

    /// How many of those nodes must observe a commit before the client
    /// accepts it.
    ///
    /// # Panics
    ///
    /// Panics on a credence mode whose quorum is zero or exceeds its
    /// replication.
    pub fn required_quorum(&self) -> usize {
        match self {
            ClientMode::Single => 1,
            ClientMode::Secure { replication } => *replication,
            ClientMode::Credence {
                replication,
                quorum,
            } => {
                assert!(
                    *quorum >= 1 && quorum <= replication,
                    "credence quorum {quorum} out of range for replication {replication}"
                );
                *quorum
            }
        }
    }

    /// The nodes client `client` submits to, out of the `front_nodes`
    /// client-facing validators (ids `0..front_nodes`).
    ///
    /// # Panics
    ///
    /// Panics if `front_nodes` is zero or smaller than the replication
    /// factor.
    pub fn nodes_for(&self, client: usize, front_nodes: usize) -> Vec<NodeId> {
        assert!(front_nodes > 0, "need at least one client-facing node");
        let replication = self.replication();
        assert!(
            replication <= front_nodes,
            "replication {replication} exceeds the {front_nodes} client-facing nodes"
        );
        (0..replication)
            .map(|j| NodeId::new(((client + j) % front_nodes) as u32))
            .collect()
    }
}

/// Per-submission timeout, bounded exponential backoff and
/// resubmission to alternate nodes.
///
/// After `timeout` without resolution the client waits
/// `backoff_for(attempt)` and resubmits to the *next* replica set along
/// the front-node ring, up to `max_retries` resubmissions; after that
/// the client gives up on the transaction (counted, not silently
/// dropped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long the client waits for resolution before each retry.
    pub timeout: SimDuration,
    /// Maximum resubmissions per transaction.
    pub max_retries: u32,
    /// Backoff before the first resubmission.
    pub backoff_base: SimDuration,
    /// Per-attempt backoff growth factor, in permille (2000 doubles).
    pub backoff_factor_permille: u32,
    /// Upper bound on any single backoff wait.
    pub backoff_cap: SimDuration,
}

impl RetryPolicy {
    /// A paper-plausible default: 10 s timeout, 3 retries, 1 s backoff
    /// doubling up to 8 s.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            timeout: SimDuration::from_secs(10),
            max_retries: 3,
            backoff_base: SimDuration::from_secs(1),
            backoff_factor_permille: 2000,
            backoff_cap: SimDuration::from_secs(8),
        }
    }

    /// The backoff before resubmission number `attempt` (0-based),
    /// capped at `backoff_cap`. Pure integer arithmetic on microseconds
    /// so the schedule is exactly reproducible.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        let cap = self.backoff_cap.as_micros();
        let mut wait = self.backoff_base.as_micros().min(cap);
        for _ in 0..attempt {
            wait = wait
                .saturating_mul(u64::from(self.backoff_factor_permille))
                .saturating_div(1000)
                .min(cap);
        }
        SimDuration::from_micros(wait)
    }
}

mod serde_impls {
    use serde::{Content, DeError, Deserialize, Serialize};

    use super::RetryPolicy;

    impl Serialize for RetryPolicy {
        fn to_content(&self) -> Content {
            Content::Map(vec![
                ("timeout".to_owned(), self.timeout.to_content()),
                (
                    "max_retries".to_owned(),
                    Content::U64(u64::from(self.max_retries)),
                ),
                ("backoff_base".to_owned(), self.backoff_base.to_content()),
                (
                    "backoff_factor_permille".to_owned(),
                    Content::U64(u64::from(self.backoff_factor_permille)),
                ),
                ("backoff_cap".to_owned(), self.backoff_cap.to_content()),
            ])
        }
    }

    impl Deserialize for RetryPolicy {
        fn from_content(content: &Content) -> Result<RetryPolicy, DeError> {
            Ok(RetryPolicy {
                timeout: serde::__private::field(content, "timeout")?,
                max_retries: serde::__private::field(content, "max_retries")?,
                backoff_base: serde::__private::field(content, "backoff_base")?,
                backoff_factor_permille: serde::__private::field(
                    content,
                    "backoff_factor_permille",
                )?,
                backoff_cap: serde::__private::field(content, "backoff_cap")?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pins_one_node() {
        let mode = ClientMode::Single;
        assert_eq!(mode.nodes_for(0, 5), vec![NodeId::new(0)]);
        assert_eq!(mode.nodes_for(3, 5), vec![NodeId::new(3)]);
        assert_eq!(mode.nodes_for(7, 5), vec![NodeId::new(2)], "wraps");
        assert_eq!(mode.replication(), 1);
    }

    #[test]
    fn secure_spreads_over_replicas() {
        let mode = ClientMode::paper_secure();
        assert_eq!(
            mode.nodes_for(0, 5),
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        assert_eq!(
            mode.nodes_for(4, 5),
            vec![
                NodeId::new(4),
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2)
            ]
        );
    }

    #[test]
    fn secure_balances_load() {
        // With 5 clients over 5 front nodes at replication 4, every node
        // serves exactly 4 clients.
        let mode = ClientMode::paper_secure();
        let mut load = [0u32; 5];
        for client in 0..5 {
            for node in mode.nodes_for(client, 5) {
                load[node.index()] += 1;
            }
        }
        assert_eq!(load, [4, 4, 4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn oversized_replication_rejected() {
        let _ = ClientMode::Secure { replication: 6 }.nodes_for(0, 5);
    }

    #[test]
    fn credence_quorums() {
        let mode = ClientMode::credence(3);
        assert_eq!(mode.replication(), 5);
        assert_eq!(mode.required_quorum(), 4);
        assert_eq!(ClientMode::Single.required_quorum(), 1);
        assert_eq!(ClientMode::paper_secure().required_quorum(), 4, "wait-all");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn credence_quorum_validated() {
        let _ = ClientMode::Credence {
            replication: 3,
            quorum: 4,
        }
        .required_quorum();
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy::standard();
        assert_eq!(policy.backoff_for(0), SimDuration::from_secs(1));
        assert_eq!(policy.backoff_for(1), SimDuration::from_secs(2));
        assert_eq!(policy.backoff_for(2), SimDuration::from_secs(4));
        assert_eq!(policy.backoff_for(3), SimDuration::from_secs(8));
        assert_eq!(policy.backoff_for(4), SimDuration::from_secs(8), "capped");
        assert_eq!(policy.backoff_for(100), SimDuration::from_secs(8));
    }

    #[test]
    fn backoff_base_above_cap_is_clamped() {
        let policy = RetryPolicy {
            timeout: SimDuration::from_secs(1),
            max_retries: 2,
            backoff_base: SimDuration::from_secs(20),
            backoff_factor_permille: 2000,
            backoff_cap: SimDuration::from_secs(5),
        };
        assert_eq!(policy.backoff_for(0), SimDuration::from_secs(5));
    }

    #[test]
    fn retry_policy_roundtrips_through_json() {
        let policy = RetryPolicy::standard();
        let json = serde_json::to_string(&policy).expect("serialise");
        let back: RetryPolicy = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, policy);
    }
}
