//! Result types: per-run summaries, per-scenario reports and the radar
//! synthesis of Fig. 7, serialisable for the benchmark harness.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::harness::RunResult;
use crate::metrics::{QuantileSketch, Sensitivity};
use crate::{Chain, ScenarioKind};

/// Aggregate statistics of one run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions committed (client-observed).
    pub committed: usize,
    /// Transactions never resolved.
    pub unresolved: usize,
    /// Mean latency (seconds) of committed transactions, if any.
    pub mean_latency: Option<f64>,
    /// Median latency (seconds).
    pub p50_latency: Option<f64>,
    /// 95th-percentile latency (seconds).
    pub p95_latency: Option<f64>,
    /// Maximum latency (seconds).
    pub max_latency: Option<f64>,
    /// Liveness violated (chain stopped committing).
    pub lost_liveness: bool,
    /// Validators that aborted fatally.
    pub panicked_nodes: usize,
    /// Free-text trace lines evicted from the kernel's bounded ring —
    /// non-zero means the run's textual trace is incomplete and any
    /// trace-derived analysis under-counts.
    pub dropped_trace_lines: u64,
}

impl RunSummary {
    /// Summarises a run.
    ///
    /// Latency quantiles come from the shared [`QuantileSketch`] rather
    /// than the exact eCDF so a replicated campaign can merge per-seed
    /// summaries associatively; the sketch quantises p50/p95 onto its
    /// 1/64-relative-error grid (min, max and mean stay exact).
    pub fn of(result: &RunResult) -> RunSummary {
        let ecdf = result.ecdf().ok();
        let sketch = QuantileSketch::from_secs(result.latencies.iter().copied());
        RunSummary {
            submitted: result.submitted,
            committed: result.latencies.len(),
            unresolved: result.unresolved,
            mean_latency: ecdf.as_ref().map(|e| e.mean()),
            p50_latency: sketch.quantile(0.5),
            p95_latency: sketch.quantile(0.95),
            max_latency: sketch.max_secs(),
            lost_liveness: result.lost_liveness,
            panicked_nodes: {
                let mut nodes: Vec<u32> = result.panics.iter().map(|p| p.node.as_u32()).collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes.len()
            },
            dropped_trace_lines: result.stats.dropped_trace_lines,
        }
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} committed", self.committed, self.submitted)?;
        if let (Some(mean), Some(p95)) = (self.mean_latency, self.p95_latency) {
            write!(f, ", latency mean {mean:.2}s p95 {p95:.2}s")?;
        }
        if self.lost_liveness {
            write!(f, ", LIVENESS LOST")?;
        }
        if self.panicked_nodes > 0 {
            write!(f, ", {} nodes panicked", self.panicked_nodes)?;
        }
        if self.dropped_trace_lines > 0 {
            write!(
                f,
                ", WARNING: {} trace lines dropped",
                self.dropped_trace_lines
            )?;
        }
        Ok(())
    }
}

/// The serialisable form of a [`Sensitivity`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensitivityRecord {
    /// The finite score, `None` for a liveness violation (∞).
    pub score: Option<f64>,
    /// The altered environment improved on the baseline (striped bar).
    pub improved: bool,
}

impl From<Sensitivity> for SensitivityRecord {
    fn from(s: Sensitivity) -> SensitivityRecord {
        match s {
            Sensitivity::Finite { score, improved } => SensitivityRecord {
                score: Some(score),
                improved,
            },
            Sensitivity::Infinite => SensitivityRecord {
                score: None,
                improved: false,
            },
        }
    }
}

/// Outcome of one (chain, scenario) sensitivity measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// The evaluated blockchain.
    pub chain: Chain,
    /// The adversarial scenario.
    pub kind: ScenarioKind,
    /// The sensitivity score.
    pub sensitivity: Sensitivity,
    /// Baseline statistics.
    pub baseline: RunSummary,
    /// Altered-environment statistics.
    pub altered: RunSummary,
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} {:<13} sensitivity {:>14}  [baseline: {} | altered: {}]",
            self.chain.name(),
            self.kind.name(),
            self.sensitivity.to_string(),
            self.baseline,
            self.altered
        )
    }
}

/// All four sensitivity dimensions of one chain (one radar polygon of
/// Fig. 7).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadarRow {
    /// The chain name.
    pub chain: String,
    /// Sensitivity to `f = t` crashes.
    pub crash: SensitivityRecord,
    /// Sensitivity to `f = t + 1` transient failures.
    pub transient: SensitivityRecord,
    /// Sensitivity to a transient partition of `f = t + 1` nodes.
    pub partition: SensitivityRecord,
    /// Sensitivity to the secure client.
    pub secure_client: SensitivityRecord,
}

/// Renders an ASCII bar for a score against a scale maximum.
pub fn ascii_bar(record: SensitivityRecord, scale_max: f64, width: usize) -> String {
    match record.score {
        None => format!("{} ∞", "#".repeat(width)),
        Some(score) => {
            let filled = if scale_max <= 0.0 {
                0
            } else {
                ((score / scale_max) * width as f64).round() as usize
            };
            let glyph = if record.improved { "/" } else { "#" };
            format!(
                "{} {:.3}{}",
                glyph.repeat(filled.min(width)),
                score,
                if record.improved { " (improved)" } else { "" }
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RunResult;
    use crate::metrics::StageLatencies;
    use stabl_sim::{SimStats, SimTime};

    fn result_with_latencies(latencies: &[f64]) -> RunResult {
        RunResult {
            latencies: latencies.to_vec(),
            commit_times: vec![SimTime::ZERO; latencies.len()],
            submitted: latencies.len(),
            unresolved: 0,
            lost_liveness: false,
            panics: Vec::new(),
            stats: SimStats::default(),
            retries: 0,
            give_ups: 0,
            horizon: SimTime::ZERO,
            stages: StageLatencies::new(),
        }
    }

    /// Pins the sketch-backed summary quantiles against exact
    /// sorted-order nearest-rank quantiles. The inputs sit in the
    /// sketch's exact region (< 128 µs) and on grid-aligned bucket
    /// bounds, so quantisation must not move them at all.
    #[test]
    fn summary_quantiles_match_exact_sorted_order() {
        // 5 samples, all below 128 µs: the sketch is exact here.
        let run = result_with_latencies(&[0.000_030, 0.000_010, 0.000_050, 0.000_020, 0.000_040]);
        let summary = RunSummary::of(&run);
        // Nearest-rank: p50 → rank ⌈2.5⌉ = 3, p95 → rank ⌈4.75⌉ = 5.
        assert_eq!(summary.p50_latency, Some(0.000_030));
        assert_eq!(summary.p95_latency, Some(0.000_050));
        assert_eq!(summary.max_latency, Some(0.000_050));

        // 20 samples of 1..=20 µs: p50 → rank 10, p95 → rank 19.
        let micros: Vec<f64> = (1..=20).map(|i| i as f64 * 1e-6).collect();
        let run = result_with_latencies(&micros);
        let summary = RunSummary::of(&run);
        assert_eq!(summary.p50_latency, Some(0.000_010));
        assert_eq!(summary.p95_latency, Some(0.000_019));
        assert_eq!(summary.max_latency, Some(0.000_020));

        // Grid-aligned seconds-scale values (powers of two × 1 ms are
        // exact bucket lower bounds).
        let run = result_with_latencies(&[0.128, 0.256, 0.512, 1.024]);
        let summary = RunSummary::of(&run);
        assert_eq!(summary.p50_latency, Some(0.256));
        assert_eq!(summary.p95_latency, Some(1.024));
        assert_eq!(summary.max_latency, Some(1.024));
    }

    #[test]
    fn summary_of_empty_run_has_no_latency_stats() {
        let summary = RunSummary::of(&result_with_latencies(&[]));
        assert_eq!(summary.mean_latency, None);
        assert_eq!(summary.p50_latency, None);
        assert_eq!(summary.p95_latency, None);
        assert_eq!(summary.max_latency, None);
    }

    #[test]
    fn summary_surfaces_dropped_trace_lines() {
        let mut run = result_with_latencies(&[0.5]);
        assert!(!RunSummary::of(&run).to_string().contains("WARNING"));
        run.stats.dropped_trace_lines = 7;
        let summary = RunSummary::of(&run);
        assert_eq!(summary.dropped_trace_lines, 7);
        assert!(
            summary
                .to_string()
                .contains("WARNING: 7 trace lines dropped"),
            "{summary}"
        );
    }

    #[test]
    fn sensitivity_record_roundtrip() {
        let fin: SensitivityRecord = Sensitivity::Finite {
            score: 2.5,
            improved: true,
        }
        .into();
        assert_eq!(fin.score, Some(2.5));
        assert!(fin.improved);
        let inf: SensitivityRecord = Sensitivity::Infinite.into();
        assert_eq!(inf.score, None);
    }

    #[test]
    fn serde_roundtrip() {
        let row = RadarRow {
            chain: "Redbelly".into(),
            crash: SensitivityRecord {
                score: Some(0.1),
                improved: false,
            },
            transient: SensitivityRecord {
                score: Some(1.0),
                improved: false,
            },
            partition: SensitivityRecord {
                score: Some(2.0),
                improved: false,
            },
            secure_client: SensitivityRecord {
                score: Some(0.2),
                improved: true,
            },
        };
        let json = serde_json::to_string(&row).expect("serialise");
        let back: RadarRow = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(row, back);
    }

    #[test]
    fn ascii_bars() {
        let inf = ascii_bar(
            SensitivityRecord {
                score: None,
                improved: false,
            },
            10.0,
            4,
        );
        assert_eq!(inf, "#### ∞");
        let half = ascii_bar(
            SensitivityRecord {
                score: Some(5.0),
                improved: false,
            },
            10.0,
            4,
        );
        assert!(half.starts_with("## 5.000"), "{half}");
        let improved = ascii_bar(
            SensitivityRecord {
                score: Some(10.0),
                improved: true,
            },
            10.0,
            4,
        );
        assert!(improved.starts_with("//// 10.000"), "{improved}");
    }
}
