//! The Diablo-style workload: clients submitting native transfers at a
//! constant aggregate rate.
//!
//! The generator moved to the `stabl-workload` crate when it grew the
//! production traffic model (Zipf populations, bursty arrivals); this
//! module re-exports the legacy surface so existing campaign code and
//! the paper-standard byte-identical streams are untouched. See
//! [`stabl_workload`] for the full model.

pub use stabl_workload::{Submission, WorkloadShape, WorkloadSpec};
