//! Fault plans and composable fault schedules: what Stabl's observer
//! processes inject and when.
//!
//! Terminology follows the paper's Table 1:
//!
//! * **Crash** — a node is halted and never restarted during the
//!   experiment (the observer kills the blockchain process).
//! * **Transient failure** — a node is halted and later restarted with
//!   the same identity.
//! * **Partition** — a communication failure between subsets of nodes
//!   (the observer installs netfilter drop rules, later removed).
//!
//! A [`FaultPlan`] names one such scenario; a [`FaultSchedule`] is an
//! ordered list of timed [`FaultAction`]s, so message-level degradation
//! ([`FaultAction::LinkDegrade`]), slowdowns and whole-node faults
//! compose in a single run — the combinations real outages are made of.
//! Validation returns a typed [`FaultError`] (use
//! [`FaultSchedule::apply`]); the panicking [`FaultSchedule::schedule`]
//! wrapper keeps the old call sites working.
//!
//! `f` denotes the number of failures injected; `t_B` the maximum number
//! of failures blockchain `B` claims to tolerate; `n` the network size.

use std::collections::BTreeSet;
use std::fmt;

use stabl_sim::{LinkFault, NodeId, PartitionRule, Protocol, SimDuration, SimTime, Simulation};

/// Why a fault schedule failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// A fault's end time precedes its start time. `what` is the
    /// human-readable description of the inversion.
    InvertedWindow {
        /// Which inversion (e.g. "recovery precedes the failure").
        what: &'static str,
        /// The window start.
        start: SimTime,
        /// The (inverted) window end.
        end: SimTime,
    },
    /// A victim node id does not exist in the simulated network.
    VictimOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The network size.
        n: usize,
    },
    /// The same node is targeted by more than one action (or twice by
    /// one action) — ambiguous schedules are rejected rather than
    /// silently overlapped.
    DuplicateVictim {
        /// The node named more than once.
        node: NodeId,
    },
    /// A link-fault probability lies outside `[0, 1]`.
    InvalidProbability {
        /// Which probability ("drop", "duplicate" or "reorder").
        what: &'static str,
        /// The offending value.
        p: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvertedWindow { what, start, end } => {
                write!(f, "{what} (window {start}..{end} is inverted)")
            }
            FaultError::VictimOutOfRange { node, n } => {
                write!(f, "victim {node} outside the {n}-node network")
            }
            FaultError::DuplicateVictim { node } => {
                write!(f, "victim {node} appears in more than one fault action")
            }
            FaultError::InvalidProbability { what, p } => {
                write!(f, "link-fault {what} probability {p} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A declarative failure-injection plan for one run (one named scenario
/// of the paper). Convert into a [`FaultSchedule`] to compose several.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// The baseline: no failures.
    #[default]
    None,
    /// Crash `nodes` permanently at `at`.
    Crash {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
    },
    /// Halt `nodes` at `at` and restart them at `recover_at`.
    Transient {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
        /// Restart time.
        recover_at: SimTime,
    },
    /// Disconnect `nodes` from the rest of the network between `at` and
    /// `heal_at`.
    Partition {
        /// The isolated group.
        nodes: Vec<NodeId>,
        /// Partition start.
        at: SimTime,
        /// Partition end.
        heal_at: SimTime,
    },
    /// Slow `nodes` down between `at` and `until`: every message they
    /// send gains `extra` delay. A slow-but-correct node — the paper's
    /// §4 discussion of how a single slow node affects leader-based
    /// chains but not leaderless DBFT.
    Slowdown {
        /// The slowed nodes.
        nodes: Vec<NodeId>,
        /// Extra outbound delay while slowed.
        extra: SimDuration,
        /// Slowdown start.
        at: SimTime,
        /// Slowdown end.
        until: SimTime,
    },
}

impl FaultPlan {
    /// The nodes this plan touches.
    pub fn victims(&self) -> &[NodeId] {
        match self {
            FaultPlan::None => &[],
            FaultPlan::Crash { nodes, .. }
            | FaultPlan::Transient { nodes, .. }
            | FaultPlan::Partition { nodes, .. }
            | FaultPlan::Slowdown { nodes, .. } => nodes,
        }
    }

    /// Validates and schedules the plan's events on a simulation.
    ///
    /// # Errors
    ///
    /// See [`FaultSchedule::apply`].
    pub fn apply<P: Protocol>(&self, sim: &mut Simulation<P>) -> Result<(), FaultError> {
        FaultSchedule::from(self.clone()).apply(sim)
    }

    /// Schedules the plan's events on a simulation (the role of Stabl's
    /// observer processes). Thin wrapper around [`FaultPlan::apply`].
    ///
    /// # Panics
    ///
    /// Panics if a transient/partition plan recovers before it starts,
    /// or if a victim id is outside the network.
    pub fn schedule<P: Protocol>(&self, sim: &mut Simulation<P>) {
        // stabl-lint: allow(R-003, documented panicking wrapper preserving the legacy FaultPlan::schedule message contract; apply() is the typed-error path)
        self.apply(sim).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// One timed fault injection inside a [`FaultSchedule`].
///
/// The first four variants mirror [`FaultPlan`]; `LinkDegrade` adds the
/// message-level dimension (probabilistic loss, duplication, reordering
/// and asymmetric partitions — see [`LinkFault`]).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Crash `nodes` permanently at `at`.
    Crash {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
    },
    /// Halt `nodes` at `at` and restart them at `recover_at`.
    Transient {
        /// The victims.
        nodes: Vec<NodeId>,
        /// Injection time.
        at: SimTime,
        /// Restart time.
        recover_at: SimTime,
    },
    /// Disconnect `nodes` from the rest of the network between `at` and
    /// `heal_at`.
    Partition {
        /// The isolated group.
        nodes: Vec<NodeId>,
        /// Partition start.
        at: SimTime,
        /// Partition end.
        heal_at: SimTime,
    },
    /// Slow `nodes` down between `at` and `until`.
    Slowdown {
        /// The slowed nodes.
        nodes: Vec<NodeId>,
        /// Extra outbound delay while slowed.
        extra: SimDuration,
        /// Slowdown start.
        at: SimTime,
        /// Slowdown end.
        until: SimTime,
    },
    /// Install a message-level link fault between `at` and `until`.
    LinkDegrade {
        /// The drop/duplicate/reorder rule.
        fault: LinkFault,
        /// Installation time.
        at: SimTime,
        /// Removal time.
        until: SimTime,
    },
}

impl FaultAction {
    /// The whole-node victims of this action (empty for `LinkDegrade`,
    /// whose targets are directed links, not nodes).
    pub fn victims(&self) -> &[NodeId] {
        match self {
            FaultAction::Crash { nodes, .. }
            | FaultAction::Transient { nodes, .. }
            | FaultAction::Partition { nodes, .. }
            | FaultAction::Slowdown { nodes, .. } => nodes,
            FaultAction::LinkDegrade { .. } => &[],
        }
    }

    /// Every node id this action references (victims, plus the link
    /// groups of a `LinkDegrade`) — used for range validation.
    fn referenced_nodes(&self) -> Vec<NodeId> {
        match self {
            FaultAction::LinkDegrade { fault, .. } => fault
                .from_group()
                .into_iter()
                .chain(fault.to_group())
                .flatten()
                .copied()
                .collect(),
            _ => self.victims().to_vec(),
        }
    }

    fn validate(&self, n: usize) -> Result<(), FaultError> {
        for node in self.referenced_nodes() {
            if node.index() >= n {
                return Err(FaultError::VictimOutOfRange { node, n });
            }
        }
        match self {
            FaultAction::Crash { .. } => {}
            FaultAction::Transient { at, recover_at, .. } => {
                if at > recover_at {
                    return Err(FaultError::InvertedWindow {
                        what: "recovery precedes the failure",
                        start: *at,
                        end: *recover_at,
                    });
                }
            }
            FaultAction::Partition { at, heal_at, .. } => {
                if at > heal_at {
                    return Err(FaultError::InvertedWindow {
                        what: "heal precedes the partition",
                        start: *at,
                        end: *heal_at,
                    });
                }
            }
            FaultAction::Slowdown { at, until, .. } => {
                if at > until {
                    return Err(FaultError::InvertedWindow {
                        what: "slowdown ends before it starts",
                        start: *at,
                        end: *until,
                    });
                }
            }
            FaultAction::LinkDegrade { fault, at, until } => {
                if at > until {
                    return Err(FaultError::InvertedWindow {
                        what: "link fault lifts before it starts",
                        start: *at,
                        end: *until,
                    });
                }
                for (what, p) in [
                    ("drop", fault.drop_p()),
                    ("duplicate", fault.dup_p()),
                    ("reorder", fault.reorder_p()),
                ] {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(FaultError::InvalidProbability { what, p });
                    }
                }
            }
        }
        Ok(())
    }

    fn schedule_on<P: Protocol>(&self, sim: &mut Simulation<P>) {
        let n = sim.n();
        match self {
            FaultAction::Crash { nodes, at } => {
                for node in nodes {
                    sim.schedule_crash(*at, *node);
                }
            }
            FaultAction::Transient {
                nodes,
                at,
                recover_at,
            } => {
                for node in nodes {
                    sim.schedule_crash(*at, *node);
                    sim.schedule_restart(*recover_at, *node);
                }
            }
            FaultAction::Partition { nodes, at, heal_at } => {
                let rule = PartitionRule::isolate(nodes.iter().copied(), n);
                sim.schedule_partition(*at, *heal_at, rule);
            }
            FaultAction::Slowdown {
                nodes,
                extra,
                at,
                until,
            } => {
                for node in nodes {
                    sim.schedule_slowdown(*at, *until, *node, *extra);
                }
            }
            FaultAction::LinkDegrade { fault, at, until } => {
                sim.schedule_link_fault(*at, *until, fault.clone());
            }
        }
    }
}

/// An ordered list of timed [`FaultAction`]s injected into one run.
///
/// Replaces the closed [`FaultPlan`] dispatch: any number of
/// whole-node, link-level and slowdown faults compose in one schedule.
/// The old variants remain available as constructors
/// ([`FaultSchedule::crash`], [`FaultSchedule::transient`], …) and via
/// `From<FaultPlan>`.
///
/// # Examples
///
/// ```
/// use stabl::{FaultAction, FaultSchedule};
/// use stabl_sim::{LinkFault, NodeId, SimDuration, SimTime};
///
/// // 5 % loss all run long, plus a flapping one-way partition.
/// let schedule = FaultSchedule::link_degrade(
///     LinkFault::all().with_drop(0.05),
///     SimTime::ZERO,
///     SimTime::from_secs(60),
/// )
/// .and(FaultAction::LinkDegrade {
///     fault: LinkFault::sever([NodeId::new(9)], [NodeId::new(0)]),
///     at: SimTime::from_secs(20),
///     until: SimTime::from_secs(30),
/// });
/// assert_eq!(schedule.actions().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultSchedule {
    actions: Vec<FaultAction>,
}

impl FaultSchedule {
    /// The empty schedule (the baseline).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// A schedule made of `actions`, in injection order.
    pub fn new(actions: Vec<FaultAction>) -> FaultSchedule {
        FaultSchedule { actions }
    }

    /// Crash `nodes` permanently at `at` (old `FaultPlan::Crash`).
    pub fn crash(nodes: Vec<NodeId>, at: SimTime) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::Crash { nodes, at }])
    }

    /// Halt `nodes` at `at`, restart at `recover_at` (old
    /// `FaultPlan::Transient`).
    pub fn transient(nodes: Vec<NodeId>, at: SimTime, recover_at: SimTime) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::Transient {
            nodes,
            at,
            recover_at,
        }])
    }

    /// Isolate `nodes` between `at` and `heal_at` (old
    /// `FaultPlan::Partition`).
    pub fn partition(nodes: Vec<NodeId>, at: SimTime, heal_at: SimTime) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::Partition { nodes, at, heal_at }])
    }

    /// Slow `nodes` down between `at` and `until` (old
    /// `FaultPlan::Slowdown`).
    pub fn slowdown(
        nodes: Vec<NodeId>,
        extra: SimDuration,
        at: SimTime,
        until: SimTime,
    ) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::Slowdown {
            nodes,
            extra,
            at,
            until,
        }])
    }

    /// Install a message-level link fault between `at` and `until`.
    pub fn link_degrade(fault: LinkFault, at: SimTime, until: SimTime) -> FaultSchedule {
        FaultSchedule::new(vec![FaultAction::LinkDegrade { fault, at, until }])
    }

    /// Appends `action`, builder-style.
    #[must_use]
    pub fn and(mut self, action: FaultAction) -> FaultSchedule {
        self.actions.push(action);
        self
    }

    /// Appends `action` in place.
    pub fn push(&mut self, action: FaultAction) {
        self.actions.push(action);
    }

    /// The scheduled actions, in injection order.
    pub fn actions(&self) -> &[FaultAction] {
        &self.actions
    }

    /// `true` if the schedule injects nothing (the baseline).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Every whole-node victim across all actions, in action order.
    pub fn victims(&self) -> Vec<NodeId> {
        self.actions
            .iter()
            .flat_map(|a| a.victims().iter().copied())
            .collect()
    }

    /// Checks the schedule against an `n`-node network without
    /// scheduling anything.
    ///
    /// # Errors
    ///
    /// [`FaultError::VictimOutOfRange`] for node ids ≥ `n`,
    /// [`FaultError::InvertedWindow`] for end-before-start windows,
    /// [`FaultError::InvalidProbability`] for out-of-range link-fault
    /// probabilities and [`FaultError::DuplicateVictim`] if a node is
    /// targeted by more than one action.
    pub fn validate(&self, n: usize) -> Result<(), FaultError> {
        for action in &self.actions {
            action.validate(n)?;
        }
        let mut seen = BTreeSet::new();
        for action in &self.actions {
            for node in action.victims() {
                if !seen.insert(*node) {
                    return Err(FaultError::DuplicateVictim { node: *node });
                }
            }
        }
        Ok(())
    }

    /// Validates and schedules every action on the simulation.
    ///
    /// # Errors
    ///
    /// See [`FaultSchedule::validate`]; on error nothing is scheduled.
    pub fn apply<P: Protocol>(&self, sim: &mut Simulation<P>) -> Result<(), FaultError> {
        self.validate(sim.n())?;
        for action in &self.actions {
            action.schedule_on(sim);
        }
        Ok(())
    }

    /// Panicking wrapper around [`FaultSchedule::apply`] for callers
    /// that treat an invalid schedule as a programming error.
    ///
    /// # Panics
    ///
    /// Panics with the [`FaultError`] message on an invalid schedule.
    pub fn schedule<P: Protocol>(&self, sim: &mut Simulation<P>) {
        // stabl-lint: allow(R-003, documented panicking wrapper preserving the legacy FaultPlan::schedule message contract; apply() is the typed-error path)
        self.apply(sim).unwrap_or_else(|e| panic!("{e}"));
    }
}

impl From<FaultPlan> for FaultSchedule {
    fn from(plan: FaultPlan) -> FaultSchedule {
        match plan {
            FaultPlan::None => FaultSchedule::none(),
            FaultPlan::Crash { nodes, at } => FaultSchedule::crash(nodes, at),
            FaultPlan::Transient {
                nodes,
                at,
                recover_at,
            } => FaultSchedule::transient(nodes, at, recover_at),
            FaultPlan::Partition { nodes, at, heal_at } => {
                FaultSchedule::partition(nodes, at, heal_at)
            }
            FaultPlan::Slowdown {
                nodes,
                extra,
                at,
                until,
            } => FaultSchedule::slowdown(nodes, extra, at, until),
        }
    }
}

mod serde_impls {
    //! JSON (de)serialisation so campaign cache keys and artifacts can
    //! carry the full adversity configuration.

    use serde::{Content, DeError, Deserialize, Serialize};

    use super::{FaultAction, FaultSchedule};

    impl Serialize for FaultAction {
        fn to_content(&self) -> Content {
            let mut map: Vec<(String, Content)> = Vec::new();
            let kind = match self {
                FaultAction::Crash { nodes, at } => {
                    map.push(("nodes".to_owned(), nodes.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    "crash"
                }
                FaultAction::Transient {
                    nodes,
                    at,
                    recover_at,
                } => {
                    map.push(("nodes".to_owned(), nodes.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    map.push(("recover_at".to_owned(), recover_at.to_content()));
                    "transient"
                }
                FaultAction::Partition { nodes, at, heal_at } => {
                    map.push(("nodes".to_owned(), nodes.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    map.push(("heal_at".to_owned(), heal_at.to_content()));
                    "partition"
                }
                FaultAction::Slowdown {
                    nodes,
                    extra,
                    at,
                    until,
                } => {
                    map.push(("nodes".to_owned(), nodes.to_content()));
                    map.push(("extra".to_owned(), extra.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    map.push(("until".to_owned(), until.to_content()));
                    "slowdown"
                }
                FaultAction::LinkDegrade { fault, at, until } => {
                    map.push(("fault".to_owned(), fault.to_content()));
                    map.push(("at".to_owned(), at.to_content()));
                    map.push(("until".to_owned(), until.to_content()));
                    "link-degrade"
                }
            };
            map.insert(0, ("kind".to_owned(), Content::Str(kind.to_owned())));
            Content::Map(map)
        }
    }

    impl Deserialize for FaultAction {
        fn from_content(content: &Content) -> Result<FaultAction, DeError> {
            let kind: String = serde::__private::field(content, "kind")?;
            match kind.as_str() {
                "crash" => Ok(FaultAction::Crash {
                    nodes: serde::__private::field(content, "nodes")?,
                    at: serde::__private::field(content, "at")?,
                }),
                "transient" => Ok(FaultAction::Transient {
                    nodes: serde::__private::field(content, "nodes")?,
                    at: serde::__private::field(content, "at")?,
                    recover_at: serde::__private::field(content, "recover_at")?,
                }),
                "partition" => Ok(FaultAction::Partition {
                    nodes: serde::__private::field(content, "nodes")?,
                    at: serde::__private::field(content, "at")?,
                    heal_at: serde::__private::field(content, "heal_at")?,
                }),
                "slowdown" => Ok(FaultAction::Slowdown {
                    nodes: serde::__private::field(content, "nodes")?,
                    extra: serde::__private::field(content, "extra")?,
                    at: serde::__private::field(content, "at")?,
                    until: serde::__private::field(content, "until")?,
                }),
                "link-degrade" => Ok(FaultAction::LinkDegrade {
                    fault: serde::__private::field(content, "fault")?,
                    at: serde::__private::field(content, "at")?,
                    until: serde::__private::field(content, "until")?,
                }),
                other => Err(DeError::custom(format!("unknown fault action {other:?}"))),
            }
        }
    }

    impl Serialize for FaultSchedule {
        fn to_content(&self) -> Content {
            self.actions.to_content()
        }
    }

    impl Deserialize for FaultSchedule {
        fn from_content(content: &Content) -> Result<FaultSchedule, DeError> {
            Vec::<FaultAction>::from_content(content).map(FaultSchedule::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabl_sim::{Ctx, NodeStatus};

    /// Minimal protocol for exercising fault scheduling.
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        type Request = ();
        type Commit = ();
        type Timer = ();
        type Config = ();
        fn new(_: NodeId, _: usize, _: &(), _: &mut Ctx<'_, Self>) -> Self {
            Idle
        }
        fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_timer(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_request(&mut self, _: (), _: &mut Ctx<'_, Self>) {}
        fn on_restart(&mut self, _: &mut Ctx<'_, Self>) {}
    }

    fn nodes(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn crash_plan_halts_permanently() {
        let mut sim = Simulation::<Idle>::new(4, 1, ());
        FaultPlan::Crash {
            nodes: nodes(&[2, 3]),
            at: SimTime::from_secs(1),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.status(NodeId::new(2)), NodeStatus::Crashed);
        assert_eq!(sim.status(NodeId::new(3)), NodeStatus::Crashed);
        assert_eq!(sim.status(NodeId::new(0)), NodeStatus::Running);
    }

    #[test]
    fn transient_plan_restarts() {
        let mut sim = Simulation::<Idle>::new(3, 1, ());
        FaultPlan::Transient {
            nodes: nodes(&[1]),
            at: SimTime::from_secs(1),
            recover_at: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.status(NodeId::new(1)), NodeStatus::Crashed);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.status(NodeId::new(1)), NodeStatus::Running);
    }

    #[test]
    fn partition_plan_installs_and_heals() {
        let mut sim = Simulation::<Idle>::new(4, 1, ());
        FaultPlan::Partition {
            nodes: nodes(&[0]),
            at: SimTime::from_secs(1),
            heal_at: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.network().active_rules(), 1);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.network().active_rules(), 0);
    }

    #[test]
    fn slowdown_plan_installs_and_expires() {
        let mut sim = Simulation::<Idle>::new(3, 1, ());
        FaultPlan::Slowdown {
            nodes: nodes(&[1]),
            extra: SimDuration::from_millis(200),
            at: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
        }
        .schedule(&mut sim);
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(
            sim.network().slowdown(NodeId::new(1)),
            SimDuration::from_millis(200)
        );
        sim.run_until(SimTime::from_secs(3));
        assert!(sim.network().slowdown(NodeId::new(1)).is_zero());
    }

    #[test]
    fn victims_accessor() {
        assert!(FaultPlan::None.victims().is_empty());
        let plan = FaultPlan::Crash {
            nodes: nodes(&[1]),
            at: SimTime::ZERO,
        };
        assert_eq!(plan.victims(), &[NodeId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "recovery precedes")]
    fn inverted_transient_rejected() {
        let mut sim = Simulation::<Idle>::new(2, 1, ());
        FaultPlan::Transient {
            nodes: nodes(&[1]),
            at: SimTime::from_secs(2),
            recover_at: SimTime::from_secs(1),
        }
        .schedule(&mut sim);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_victim_rejected() {
        let mut sim = Simulation::<Idle>::new(2, 1, ());
        FaultPlan::Crash {
            nodes: nodes(&[5]),
            at: SimTime::ZERO,
        }
        .schedule(&mut sim);
    }

    #[test]
    fn apply_returns_typed_errors() {
        let mut sim = Simulation::<Idle>::new(2, 1, ());
        let inverted = FaultPlan::Transient {
            nodes: nodes(&[1]),
            at: SimTime::from_secs(2),
            recover_at: SimTime::from_secs(1),
        }
        .apply(&mut sim);
        assert!(matches!(
            inverted,
            Err(FaultError::InvertedWindow {
                what: "recovery precedes the failure",
                ..
            })
        ));
        let out_of_range = FaultPlan::Crash {
            nodes: nodes(&[5]),
            at: SimTime::ZERO,
        }
        .apply(&mut sim);
        assert_eq!(
            out_of_range,
            Err(FaultError::VictimOutOfRange {
                node: NodeId::new(5),
                n: 2
            })
        );
    }

    #[test]
    fn schedule_composes_multiple_actions() {
        let mut sim = Simulation::<Idle>::new(6, 1, ());
        let schedule = FaultSchedule::crash(nodes(&[5]), SimTime::from_secs(1))
            .and(FaultAction::Slowdown {
                nodes: nodes(&[4]),
                extra: SimDuration::from_millis(100),
                at: SimTime::from_secs(1),
                until: SimTime::from_secs(3),
            })
            .and(FaultAction::LinkDegrade {
                fault: LinkFault::all().with_drop(0.1),
                at: SimTime::from_secs(1),
                until: SimTime::from_secs(3),
            });
        assert_eq!(schedule.victims(), nodes(&[5, 4]));
        schedule.apply(&mut sim).expect("valid schedule");
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.status(NodeId::new(5)), NodeStatus::Crashed);
        assert!(!sim.network().slowdown(NodeId::new(4)).is_zero());
        assert_eq!(sim.network().active_link_faults(), 1);
    }

    #[test]
    fn duplicate_victims_across_actions_rejected() {
        let mut sim = Simulation::<Idle>::new(4, 1, ());
        let schedule =
            FaultSchedule::crash(nodes(&[3]), SimTime::from_secs(1)).and(FaultAction::Slowdown {
                nodes: nodes(&[3]),
                extra: SimDuration::from_millis(100),
                at: SimTime::from_secs(2),
                until: SimTime::from_secs(3),
            });
        assert_eq!(
            schedule.apply(&mut sim),
            Err(FaultError::DuplicateVictim {
                node: NodeId::new(3)
            })
        );
        // Nothing was scheduled: the node stays up.
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.status(NodeId::new(3)), NodeStatus::Running);
    }

    #[test]
    fn duplicate_victims_within_one_action_rejected() {
        let schedule = FaultSchedule::crash(nodes(&[1, 1]), SimTime::ZERO);
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::DuplicateVictim {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn invalid_probability_rejected() {
        let schedule = FaultSchedule::link_degrade(
            LinkFault::all().with_drop(1.5),
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::InvalidProbability {
                what: "drop",
                p: 1.5
            })
        );
    }

    #[test]
    fn link_degrade_group_out_of_range_rejected() {
        let schedule = FaultSchedule::link_degrade(
            LinkFault::sever([NodeId::new(9)], [NodeId::new(0)]),
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        assert_eq!(
            schedule.validate(4),
            Err(FaultError::VictimOutOfRange {
                node: NodeId::new(9),
                n: 4
            })
        );
    }

    #[test]
    fn plan_converts_to_schedule() {
        let plan = FaultPlan::Partition {
            nodes: nodes(&[1, 2]),
            at: SimTime::from_secs(1),
            heal_at: SimTime::from_secs(2),
        };
        let schedule: FaultSchedule = plan.into();
        assert_eq!(schedule.actions().len(), 1);
        assert_eq!(schedule.victims(), nodes(&[1, 2]));
        let empty: FaultSchedule = FaultPlan::None.into();
        assert!(empty.is_empty());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = FaultError::InvertedWindow {
            what: "heal precedes the partition",
            start: SimTime::from_secs(2),
            end: SimTime::from_secs(1),
        };
        assert!(err.to_string().contains("heal precedes the partition"));
        let err = FaultError::VictimOutOfRange {
            node: NodeId::new(7),
            n: 4,
        };
        assert!(err.to_string().contains("outside the 4-node network"));
    }

    #[test]
    fn schedule_roundtrips_through_json() {
        let schedule =
            FaultSchedule::transient(nodes(&[1, 2]), SimTime::from_secs(1), SimTime::from_secs(2))
                .and(FaultAction::LinkDegrade {
                    fault: LinkFault::all()
                        .with_drop(0.25)
                        .with_reorder(0.5, SimDuration::from_millis(40)),
                    at: SimTime::from_secs(3),
                    until: SimTime::from_secs(4),
                });
        let json = serde_json::to_string(&schedule).expect("serialise");
        let back: FaultSchedule = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, schedule);
    }
}
